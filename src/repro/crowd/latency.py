"""The money-time trade-off (Section 10).

"Paying more per question often gets the crowd to answer faster. How
should we manage this money-time trade-off?" — the paper leaves this
open.  This module provides the ingredients for an answer:

* :class:`LatencyModel` — a simple empirical-shaped model of answer
  latency on microtask platforms: per-answer latency is lognormal, and
  the *arrival rate* of workers grows with the offered pay (diminishing
  returns), so doubling pay less-than-halves waiting time.
* :class:`TimedCrowd` — wraps any platform and accumulates simulated
  wall-clock time alongside the money the cost tracker already counts.
* :func:`pareto_sweep` — evaluates a grid of pay rates and reports the
  money/time frontier for a given question workload, which is exactly
  the decision table a Corleone operator needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..data.pairs import Pair
from ..exceptions import CrowdError
from .base import CrowdPlatform, WorkerAnswer


class SimulatedClock:
    """A shared simulated wall clock (seconds since the run started).

    The money-time extension (:class:`TimedCrowd`) and the resilient
    gateway (:class:`repro.crowd.gateway.ResilientCrowd`) both account
    time on the *same* clock instance — answer latency, timeout waits
    and backoff delays all advance it — so a run's elapsed time is one
    coherent number and never touches real wall time (the CL001
    determinism contract).
    """

    def __init__(self, now: float = 0.0) -> None:
        if now < 0:
            raise CrowdError("clock must not start before zero")
        self._now = float(now)

    @property
    def now(self) -> float:
        """Simulated seconds elapsed since the run started."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds``; returns the new time."""
        if seconds < 0:
            raise CrowdError("cannot advance the clock backwards")
        self._now += float(seconds)
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock to ``timestamp`` if that is later (monotonic)."""
        self._now = max(self._now, float(timestamp))
        return self._now

    def state_dict(self) -> dict:
        """The clock's state (JSON-compatible)."""
        return {"now": self._now}

    def load_state(self, state: dict) -> None:
        """Restore a state captured by :meth:`state_dict`."""
        self._now = float(state["now"])


@dataclass(frozen=True)
class LatencyModel:
    """Pay-dependent answer latency.

    Mean seconds per answer = base_seconds / (pay / reference_pay) **
    elasticity, floored at ``floor_seconds`` (a human still needs time to
    read the question).  Individual answers draw from a lognormal with
    that mean and ``sigma`` spread — microtask latencies are famously
    heavy-tailed.
    """

    base_seconds: float = 60.0
    """Mean seconds per answer at the reference pay."""

    reference_pay: float = 0.01
    """The pay rate (dollars/question) the base latency refers to."""

    elasticity: float = 0.5
    """Rate-vs-pay exponent: 0.5 means 4x pay -> 2x faster."""

    floor_seconds: float = 5.0
    sigma: float = 0.6

    def __post_init__(self) -> None:
        if self.base_seconds <= 0 or self.reference_pay <= 0:
            raise CrowdError("base_seconds and reference_pay must be > 0")
        if not 0.0 <= self.elasticity <= 2.0:
            raise CrowdError("elasticity must be in [0, 2]")
        if self.floor_seconds < 0 or self.sigma < 0:
            raise CrowdError("floor_seconds and sigma must be >= 0")

    def mean_seconds(self, pay_per_question: float) -> float:
        """Expected seconds per answer at a given pay rate."""
        if pay_per_question <= 0:
            raise CrowdError("pay_per_question must be positive")
        speedup = (pay_per_question / self.reference_pay) ** self.elasticity
        return max(self.floor_seconds, self.base_seconds / speedup)

    def sample_seconds(self, pay_per_question: float,
                       rng: np.random.Generator) -> float:
        """One answer's latency draw (lognormal around the mean)."""
        mean = self.mean_seconds(pay_per_question)
        # Parameterize the lognormal so its mean equals ``mean``.
        mu = math.log(mean) - self.sigma ** 2 / 2.0
        return max(self.floor_seconds,
                   float(rng.lognormal(mu, self.sigma)))


class TimedCrowd(CrowdPlatform):
    """A platform wrapper that accumulates simulated answer latency.

    Answers within one HIT are answered by parallel workers in reality;
    we model ``parallelism`` simultaneous workers, so elapsed time grows
    with ceil(answers / parallelism).  Without an explicit ``rng`` the
    latency draws come from a fixed-seed generator, keeping simulated
    wall-clock accounting reproducible (corlint CL001).
    """

    def __init__(self, inner: CrowdPlatform, model: LatencyModel,
                 pay_per_question: float,
                 rng: np.random.Generator | None = None,
                 parallelism: int = 5,
                 clock: SimulatedClock | None = None) -> None:
        if parallelism < 1:
            raise CrowdError("parallelism must be >= 1")
        self._inner = inner
        self.model = model
        self.pay_per_question = pay_per_question
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.parallelism = parallelism
        self._lane_clocks = [0.0] * parallelism
        self.clock = clock if clock is not None else SimulatedClock()
        self.retry_seconds = 0.0
        """Simulated time spent on attempts that produced no answer
        (worker time the platform burned before a fault); retried and
        reposted questions accrue here in addition to the normal lane
        accounting of the answers they eventually produce."""

    @property
    def elapsed_seconds(self) -> float:
        """Simulated wall-clock time consumed so far.

        The makespan over the worker lanes, merged with the shared
        clock — which a gateway above this platform advances during
        timeout waits and backoff sleeps, so retried questions are
        timed too, not only first-attempt answers.
        """
        return self.clock.advance_to(max(self._lane_clocks))

    @property
    def elapsed_hours(self) -> float:
        return self.elapsed_seconds / 3600.0

    def ask(self, pair: Pair) -> WorkerAnswer:
        latency = self.model.sample_seconds(self.pay_per_question,
                                            self._rng)
        # Greedy assignment to the least-loaded worker lane.
        lane = min(range(self.parallelism),
                   key=lambda i: self._lane_clocks[i])
        try:
            answer = self._inner.ask(pair)
        except CrowdError:
            # The worker's time was spent even though no answer arrived;
            # charge the lane and tally it as retry time so the money-time
            # report reflects what failures cost.
            self._lane_clocks[lane] += latency
            self.retry_seconds += latency
            self.clock.advance_to(max(self._lane_clocks))
            raise
        self._lane_clocks[lane] += latency
        self.clock.advance_to(max(self._lane_clocks))
        return answer

    def state_dict(self) -> dict:
        """Timing state for engine checkpoints (JSON-compatible)."""
        state: dict = {
            "rng": self._rng.bit_generator.state,
            "lanes": list(self._lane_clocks),
            "retry_seconds": self.retry_seconds,
            "clock": self.clock.state_dict(),
        }
        if hasattr(self._inner, "state_dict"):
            state["inner"] = self._inner.state_dict()
        return state

    def load_state(self, state: dict) -> None:
        """Restore timing state captured by :meth:`state_dict`."""
        self._rng.bit_generator.state = state["rng"]
        self._lane_clocks = [float(v) for v in state["lanes"]]
        self.retry_seconds = float(state["retry_seconds"])
        self.clock.load_state(state["clock"])
        if "inner" in state and hasattr(self._inner, "load_state"):
            self._inner.load_state(state["inner"])


@dataclass(frozen=True)
class PayPoint:
    """One point on the money-time frontier."""

    pay_per_question: float
    total_dollars: float
    total_hours: float


def pareto_sweep(n_answers: int, pay_rates: list[float],
                 model: LatencyModel | None = None,
                 parallelism: int = 5) -> list[PayPoint]:
    """The expected money/time frontier for a workload of answers.

    Uses the model's *mean* latency (no sampling), so the sweep is
    deterministic: cost grows linearly with pay while time shrinks with
    diminishing returns — the structure of the paper's open question.
    """
    if n_answers < 0:
        raise CrowdError("n_answers must be >= 0")
    if not pay_rates:
        raise CrowdError("need at least one pay rate")
    model = model if model is not None else LatencyModel()
    points = []
    for pay in sorted(pay_rates):
        seconds = model.mean_seconds(pay) * n_answers / parallelism
        points.append(PayPoint(
            pay_per_question=pay,
            total_dollars=pay * n_answers,
            total_hours=seconds / 3600.0,
        ))
    return points


def cheapest_within_deadline(n_answers: int, deadline_hours: float,
                             pay_rates: list[float],
                             model: LatencyModel | None = None,
                             parallelism: int = 5) -> PayPoint | None:
    """The cheapest pay rate that meets a deadline, or None if none does.

    This is the operator-facing answer to the paper's question: given
    "I need the matches by tomorrow morning", pick the pay rate.
    """
    for point in pareto_sweep(n_answers, pay_rates, model, parallelism):
        if point.total_hours <= deadline_hours:
            return point
    return None
