"""Crowd interaction transcripts for auditability.

A hands-off system's main accountability artifact is *what it asked the
crowd and what came back*.  :class:`TranscriptingPlatform` wraps any
platform and records every single-worker answer;
:func:`group_by_question` folds the raw stream into per-question entries
(answers in order, final tally), and :func:`transcript_to_jsonl` writes
the audit log in a line-per-question JSON format a compliance reviewer
or a worker-quality analysis can consume.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from ..data.pairs import Pair
from ..exceptions import DataError
from .base import CrowdPlatform, WorkerAnswer


@dataclass(frozen=True)
class QuestionTranscript:
    """Every answer one question received, in solicitation order."""

    pair: Pair
    answers: tuple[bool, ...]
    worker_ids: tuple[int, ...]

    @property
    def n_answers(self) -> int:
        return len(self.answers)

    @property
    def positives(self) -> int:
        return sum(self.answers)

    @property
    def majority(self) -> bool:
        """Majority of recorded answers (ties resolve positive)."""
        return self.positives * 2 >= self.n_answers

    @property
    def unanimous(self) -> bool:
        return self.positives in (0, self.n_answers)


@dataclass
class TranscriptingPlatform(CrowdPlatform):
    """Wraps a platform and records the full answer stream."""

    inner: CrowdPlatform
    _log: list[WorkerAnswer] = field(default_factory=list)

    def ask(self, pair: Pair) -> WorkerAnswer:
        """Forward to the wrapped platform and append to the log."""
        answer = self.inner.ask(pair)
        self._log.append(answer)
        return answer

    @property
    def log(self) -> tuple[WorkerAnswer, ...]:
        """The raw answer stream so far (chronological)."""
        return tuple(self._log)

    @property
    def n_answers(self) -> int:
        return len(self._log)

    def clear(self) -> None:
        """Drop the recorded stream (e.g. between pipeline phases)."""
        self._log.clear()


def group_by_question(
        answers: tuple[WorkerAnswer, ...] | list[WorkerAnswer],
) -> list[QuestionTranscript]:
    """Fold a raw answer stream into per-question transcripts.

    Questions appear in order of their first answer; answers within a
    question keep solicitation order.
    """
    order: list[Pair] = []
    grouped: dict[Pair, list[WorkerAnswer]] = {}
    for answer in answers:
        pair = Pair(*answer.pair)
        if pair not in grouped:
            grouped[pair] = []
            order.append(pair)
        grouped[pair].append(answer)
    return [
        QuestionTranscript(
            pair=pair,
            answers=tuple(a.label for a in grouped[pair]),
            worker_ids=tuple(a.worker_id for a in grouped[pair]),
        )
        for pair in order
    ]


def transcript_to_jsonl(transcripts: list[QuestionTranscript],
                        path: str | Path) -> None:
    """Write one JSON object per question to ``path``."""
    with Path(path).open("w", encoding="utf-8") as handle:
        for item in transcripts:
            handle.write(json.dumps({
                "a_id": item.pair.a_id,
                "b_id": item.pair.b_id,
                "answers": list(item.answers),
                "worker_ids": list(item.worker_ids),
                "majority": item.majority,
            }) + "\n")


def transcript_from_jsonl(path: str | Path) -> list[QuestionTranscript]:
    """Load an audit log written by :func:`transcript_to_jsonl`."""
    path = Path(path)
    if not path.is_file():
        raise DataError(f"{path}: no such transcript file")
    out = []
    for line_number, line in enumerate(path.read_text().splitlines(),
                                       start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
            out.append(QuestionTranscript(
                pair=Pair(data["a_id"], data["b_id"]),
                answers=tuple(bool(a) for a in data["answers"]),
                worker_ids=tuple(int(w) for w in data["worker_ids"]),
            ))
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            raise DataError(
                f"{path}:{line_number}: malformed transcript line "
                f"({error})"
            ) from None
    return out


def worker_agreement_report(
        transcripts: list[QuestionTranscript],
) -> dict[int, dict[str, float]]:
    """Per-worker agreement with the per-question majority.

    The standard first-pass spammer screen: a worker who persistently
    disagrees with majorities is either careless or adversarial.  Only
    questions with 3+ answers vote (2-answer majorities are too noisy
    to judge anyone by).
    """
    votes: Counter[int] = Counter()
    agreements: Counter[int] = Counter()
    for item in transcripts:
        if item.n_answers < 3:
            continue
        for worker, answer in zip(item.worker_ids, item.answers):
            votes[worker] += 1
            if answer == item.majority:
                agreements[worker] += 1
    return {
        worker: {
            "questions": float(votes[worker]),
            "agreement": agreements[worker] / votes[worker],
        }
        for worker in votes
    }
