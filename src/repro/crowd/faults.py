"""Deterministic fault injection for crowd platforms.

Corleone's hands-off premise is that the crowd "just answers" — real
microtask platforms do not.  HITs time out, workers abandon them,
spammers submit garbage in bursts, duplicate submissions arrive, and
the platform itself suffers transient outages: exactly the noise regime
CrowdER (Wang et al., VLDB 2012) and the noisy-oracle analysis of
Mazumdar & Saha (2017) treat as the central obstacle of crowdsourced
ER.  :class:`FaultyCrowd` wraps any platform and injects that taxonomy
*deterministically*: every fault kind draws from its own named,
seed-derived RNG stream, so a given seed replays the exact same fault
schedule — which is what lets the chaos harness assert bit-identical
recovery (see ``docs/robustness.md``).

The taxonomy and the exception each fault raises:

========== ==============================================================
kind       behaviour
========== ==============================================================
timeout    no answer arrives in time — :class:`AnswerTimeoutError`
expiry     the HIT is abandoned/expires — :class:`HitExpiredError`
spammer    a transient worker answers randomly (or adversarially) for
           ``spammer_burst`` consecutive questions
duplicate  the platform re-delivers the previous submission for the pair
outage     the platform is down for ``outage_length`` consecutive asks —
           :class:`TransientCrowdError`
========== ==============================================================

``hard_outage_after`` additionally models a *scheduled* outage: after
that many delivered answers the platform goes dark until an operator
resumes the run with a recovered platform.  The hard outage consumes no
RNG draws and no answers, so a run killed by it stays bit-identical to
the never-interrupted run up to the failure point — the property the
resume sweep in ``tests/test_chaos.py`` asserts.
"""

from __future__ import annotations

import zlib
from collections.abc import Callable
from dataclasses import dataclass, fields

import numpy as np

from ..data.pairs import Pair
from ..exceptions import (
    AnswerTimeoutError,
    ConfigurationError,
    HitExpiredError,
    TransientCrowdError,
)
from .base import CrowdPlatform, WorkerAnswer

FAULT_TIMEOUT = "timeout"
FAULT_EXPIRY = "expiry"
FAULT_SPAMMER = "spammer"
FAULT_DUPLICATE = "duplicate"
FAULT_OUTAGE = "outage"

FAULT_KINDS = (
    FAULT_TIMEOUT,
    FAULT_EXPIRY,
    FAULT_SPAMMER,
    FAULT_DUPLICATE,
    FAULT_OUTAGE,
)
"""Every fault kind, in the order ``ask`` evaluates them."""

FaultObserver = Callable[[str, Pair], None]
"""Callback fired as ``on_fault(kind, pair)`` for every injected fault
(the engine's ``fault_injected`` event hook)."""


@dataclass(frozen=True)
class FaultSpec:
    """Per-kind fault rates and shape parameters (all independent).

    Rates are per-``ask`` probabilities in [0, 1]; each kind draws from
    its own RNG stream, so raising one rate never perturbs another
    kind's schedule (the same stream-independence contract the engine's
    :meth:`~repro.engine.context.RunContext.rng` gives the stages).
    """

    timeout_rate: float = 0.0
    """Probability an answer never arrives (no answer consumed)."""

    expiry_rate: float = 0.0
    """Probability the HIT is abandoned/expires (no answer consumed)."""

    spammer_rate: float = 0.0
    """Probability a spammer burst starts on this question."""

    spammer_burst: int = 3
    """Consecutive answers a spammer produces once triggered."""

    adversarial_spam: bool = False
    """True: the spammer inverts the real answer; False: answers
    uniformly at random (the Ipeirotis-style random spammer)."""

    duplicate_rate: float = 0.0
    """Probability the platform re-delivers the pair's last submission."""

    outage_rate: float = 0.0
    """Probability a transient platform outage starts on this ask."""

    outage_length: int = 3
    """Consecutive asks a transient outage rejects once started."""

    hard_outage_after: int | None = None
    """Go dark permanently after this many delivered answers (None:
    never).  Models a scheduled platform failure for the chaos sweep's
    kill points; deliberately consumes no randomness."""

    def __post_init__(self) -> None:
        for name in ("timeout_rate", "expiry_rate", "spammer_rate",
                     "duplicate_rate", "outage_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        if self.spammer_burst < 1:
            raise ConfigurationError("spammer_burst must be >= 1")
        if self.outage_length < 1:
            raise ConfigurationError("outage_length must be >= 1")
        if self.hard_outage_after is not None and self.hard_outage_after < 0:
            raise ConfigurationError("hard_outage_after must be >= 0")

    @classmethod
    def uniform(cls, rate: float, **overrides: object) -> "FaultSpec":
        """A spec with every per-ask fault kind at the same ``rate``."""
        values: dict[str, object] = {
            "timeout_rate": rate,
            "expiry_rate": rate,
            "spammer_rate": rate,
            "duplicate_rate": rate,
            "outage_rate": rate,
        }
        values.update(overrides)
        return cls(**values)  # type: ignore[arg-type]

    def to_dict(self) -> dict[str, object]:
        """A JSON-compatible representation of the spec."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


def fault_stream_seed(root: int | np.random.SeedSequence,
                      kind: str) -> np.random.SeedSequence:
    """The named seed sequence for one fault kind's stream.

    Mirrors :meth:`repro.engine.context.RunContext.rng`'s scheme: the
    stream is a deterministic function of the root seed and the stream
    *name* only, so adding a fault kind never shifts another's draws.
    """
    if not isinstance(root, np.random.SeedSequence):
        root = np.random.SeedSequence(root)
    key = zlib.crc32(f"fault.{kind}".encode("utf-8"))
    return np.random.SeedSequence(
        entropy=root.entropy,
        spawn_key=(*root.spawn_key, key),
    )


class FaultyCrowd(CrowdPlatform):
    """A platform wrapper injecting the configured fault taxonomy.

    Sits *below* the gateway and the labelling service, so every answer
    it does deliver is still metered normally; faults that deliver no
    answer charge nothing (the accounting invariant: answers delivered
    == answers charged).  Exposes ``state_dict``/``load_state`` so the
    engine's checkpoints capture the fault schedule mid-run and a
    resumed run replays the exact same faults.
    """

    def __init__(self, inner: CrowdPlatform, spec: FaultSpec,
                 seed: int | np.random.SeedSequence = 0,
                 on_fault: FaultObserver | None = None) -> None:
        self._inner = inner
        self.spec = spec
        self._rngs = {
            kind: np.random.default_rng(fault_stream_seed(seed, kind))
            for kind in FAULT_KINDS
        }
        self.on_fault = on_fault
        self.counts: dict[str, int] = dict.fromkeys(FAULT_KINDS, 0)
        """Faults injected so far, by kind."""
        self._delivered = 0
        self._outage_remaining = 0
        self._spam_remaining = 0
        self._spam_answers = 0
        self._last: dict[Pair, WorkerAnswer] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def inner(self) -> CrowdPlatform:
        """The wrapped platform."""
        return self._inner

    @property
    def answers_delivered(self) -> int:
        """Answers this platform actually handed to its caller."""
        return self._delivered

    @property
    def faults_injected(self) -> int:
        """Total faults injected so far, over all kinds."""
        return sum(self.counts.values())

    # ------------------------------------------------------------------
    # The answer path
    # ------------------------------------------------------------------

    def ask(self, pair: Pair) -> WorkerAnswer:
        """One answer — or one injected fault — for ``pair``."""
        spec = self.spec
        if (spec.hard_outage_after is not None
                and self._delivered >= spec.hard_outage_after):
            self._fault(FAULT_OUTAGE, pair)
            raise TransientCrowdError(
                f"platform outage (scheduled after "
                f"{spec.hard_outage_after} answers)"
            )
        if self._outage_remaining > 0:
            self._outage_remaining -= 1
            self._fault(FAULT_OUTAGE, pair)
            raise TransientCrowdError("platform outage in progress")
        if spec.outage_rate and self._draw(FAULT_OUTAGE) < spec.outage_rate:
            # This ask is the first rejection of the outage window.
            self._outage_remaining = spec.outage_length - 1
            self._fault(FAULT_OUTAGE, pair)
            raise TransientCrowdError("transient platform outage")
        if spec.timeout_rate and self._draw(FAULT_TIMEOUT) < spec.timeout_rate:
            self._fault(FAULT_TIMEOUT, pair)
            raise AnswerTimeoutError(f"no answer arrived for {pair}")
        if spec.expiry_rate and self._draw(FAULT_EXPIRY) < spec.expiry_rate:
            self._fault(FAULT_EXPIRY, pair)
            raise HitExpiredError(f"HIT abandoned/expired for {pair}")
        if spec.duplicate_rate and pair in self._last \
                and self._draw(FAULT_DUPLICATE) < spec.duplicate_rate:
            # The platform re-delivers (and bills) the last submission.
            self._fault(FAULT_DUPLICATE, pair)
            self._delivered += 1
            return self._last[pair]
        spamming = self._spam_remaining > 0
        if not spamming and spec.spammer_rate \
                and self._draw(FAULT_SPAMMER) < spec.spammer_rate:
            spamming = True
            self._spam_remaining = spec.spammer_burst
        if spamming:
            self._spam_remaining -= 1
            return self._spam_answer(pair)
        answer = self._inner.ask(pair)
        self._delivered += 1
        self._last[pair] = answer
        return answer

    def _spam_answer(self, pair: Pair) -> WorkerAnswer:
        """One garbage answer from the transient spammer worker.

        The real worker's slot is consumed (the platform billed the
        question), but the label is noise: adversarial spam inverts the
        real answer, random spam flips a fair coin.  Spammer answers
        carry negative worker ids so transcripts can tell them apart.
        """
        answer = self._inner.ask(pair)
        if self.spec.adversarial_spam:
            label = not answer.label
        else:
            label = bool(self._rngs[FAULT_SPAMMER].random() < 0.5)
        self._spam_answers += 1
        self._fault(FAULT_SPAMMER, pair)
        self._delivered += 1
        spam = WorkerAnswer(answer.pair, label,
                            worker_id=-self._spam_answers)
        self._last[pair] = spam
        return spam

    def _draw(self, kind: str) -> float:
        """One uniform draw from the kind's own stream."""
        return float(self._rngs[kind].random())

    def _fault(self, kind: str, pair: Pair) -> None:
        """Count one injected fault and notify the observer."""
        self.counts[kind] += 1
        if self.on_fault is not None:
            self.on_fault(kind, pair)

    # ------------------------------------------------------------------
    # Checkpoint support (duck-typed by the engine's Checkpointer)
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """The fault schedule's full state (JSON-compatible)."""
        state: dict = {
            "rngs": {kind: self._rngs[kind].bit_generator.state
                     for kind in FAULT_KINDS},
            "counts": dict(self.counts),
            "delivered": self._delivered,
            "outage_remaining": self._outage_remaining,
            "spam_remaining": self._spam_remaining,
            "spam_answers": self._spam_answers,
            "last": [
                [pair.a_id, pair.b_id, bool(answer.label),
                 int(answer.worker_id)]
                for pair, answer in self._last.items()
            ],
        }
        if hasattr(self._inner, "state_dict"):
            state["inner"] = self._inner.state_dict()
        return state

    def load_state(self, state: dict) -> None:
        """Restore a schedule captured by :meth:`state_dict`."""
        for kind in FAULT_KINDS:
            self._rngs[kind].bit_generator.state = state["rngs"][kind]
        self.counts = dict(state["counts"])
        self._delivered = int(state["delivered"])
        self._outage_remaining = int(state["outage_remaining"])
        self._spam_remaining = int(state["spam_remaining"])
        self._spam_answers = int(state["spam_answers"])
        self._last = {}
        for a_id, b_id, label, worker_id in state["last"]:
            pair = Pair(str(a_id), str(b_id))
            self._last[pair] = WorkerAnswer(pair, bool(label),
                                            worker_id=int(worker_id))
        if "inner" in state and hasattr(self._inner, "load_state"):
            self._inner.load_state(state["inner"])
