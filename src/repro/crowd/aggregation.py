"""Noisy-answer aggregation schemes (Section 8, item 2).

Three schemes, all returning ``(label, answers_used)``:

* :func:`majority_2plus1` — solicit two answers; if they agree, done,
  otherwise solicit a third and take the majority.
* :func:`strong_majority` — solicit answers until the majority label leads
  the minority by at least ``gap`` (default 3), or ``max_answers``
  (default 7) have been solicited; return the majority.
* :func:`asymmetric_majority` — the paper's refined scheme: run 2+1, and
  only when the provisional majority is *positive* (a potential false
  positive, which is the expensive error for recall estimation) escalate
  to strong majority, reusing the answers already collected.
"""

from __future__ import annotations

import enum
from collections.abc import Callable

from ..data.pairs import Pair
from ..exceptions import CrowdError
from .base import CrowdPlatform


class VoteScheme(enum.Enum):
    """Which aggregation scheme a label was produced with."""

    MAJORITY_2PLUS1 = "2+1"
    STRONG_MAJORITY = "strong"
    ASYMMETRIC = "asymmetric"


AskFn = Callable[[], bool]
"""Solicits one fresh answer for the question under aggregation."""


def majority_2plus1(ask: AskFn) -> tuple[bool, int]:
    """2+1 majority vote; uses 2 answers on agreement, 3 otherwise."""
    first, second = ask(), ask()
    if first == second:
        return first, 2
    third = ask()
    # first != second, so the third answer is the tie-breaker.
    return third, 3


def strong_majority(ask: AskFn, gap: int = 3,
                    max_answers: int = 7,
                    positives: int = 0, negatives: int = 0) -> tuple[bool, int]:
    """Solicit until |majority - minority| >= gap or max_answers reached.

    ``positives``/``negatives`` seed the tally with answers already
    collected (used by the asymmetric scheme to reuse its 2+1 answers);
    only *new* answers are counted in the returned answer count.
    """
    if gap < 1:
        raise CrowdError("gap must be >= 1")
    if max_answers < gap:
        raise CrowdError("max_answers must be >= gap")
    used = 0
    while abs(positives - negatives) < gap and positives + negatives < max_answers:
        if ask():
            positives += 1
        else:
            negatives += 1
        used += 1
    return positives >= negatives, used


def asymmetric_majority(ask: AskFn, gap: int = 3,
                        max_answers: int = 7) -> tuple[bool, int]:
    """2+1 for provisional negatives, strong majority for positives.

    False positives distort the actual-positive count that sits in the
    denominator of the recall estimate (Section 8), so positive labels are
    held to the stronger standard while negatives keep the cheap scheme.
    """
    first, second = ask(), ask()
    used = 2
    positives = int(first) + int(second)
    negatives = used - positives
    if positives == 0:
        return False, used  # unanimous negative: cheap path
    if positives == 1:
        third = ask()
        used += 1
        positives += int(third)
        negatives += int(not third)
        if positives < negatives:
            return False, used  # majority negative after the tie-break
    # Provisional positive: escalate, reusing the answers collected so far.
    label, extra = strong_majority(
        ask, gap=gap, max_answers=max_answers,
        positives=positives, negatives=negatives,
    )
    return label, used + extra


def aggregate(platform: CrowdPlatform, pair: Pair, scheme: VoteScheme,
              gap: int = 3, max_answers: int = 7) -> tuple[bool, int]:
    """Run ``scheme`` against ``platform`` for one pair."""
    ask: AskFn = lambda: platform.ask(pair).label
    if scheme is VoteScheme.MAJORITY_2PLUS1:
        return majority_2plus1(ask)
    if scheme is VoteScheme.STRONG_MAJORITY:
        return strong_majority(ask, gap=gap, max_answers=max_answers)
    if scheme is VoteScheme.ASYMMETRIC:
        return asymmetric_majority(ask, gap=gap, max_answers=max_answers)
    raise CrowdError(f"unknown vote scheme: {scheme!r}")
