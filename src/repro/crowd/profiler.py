"""Crowd profiling and adaptive voting (Section 10 future work).

The paper suggests profiling the crowd during the blocking step, then
using the estimated crowd model to guide the rest of the run.  This
module implements that idea:

* :class:`ErrorRateEstimator` infers the pool's per-answer error rate
  from *answer disagreement* — for independent workers with error rate
  e, two answers to the same question disagree with probability
  2 e (1 - e), which can be inverted without knowing any true labels.
* :class:`ProfilingLabelingService` is a drop-in
  :class:`~repro.crowd.service.LabelingService` that records every
  answer, keeps the estimate current, and (optionally) *adapts* the
  voting scheme: a demonstrably careful crowd is downgraded to the cheap
  2+1 scheme, a demonstrably sloppy one escalated to full strong
  majority, with the paper's asymmetric scheme in between.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import CrowdConfig
from ..crowd.aggregation import VoteScheme
from ..crowd.base import CrowdPlatform, WorkerAnswer
from ..crowd.cost import CostTracker
from ..crowd.service import LabelingService
from ..data.pairs import Pair
from ..exceptions import CrowdError
from ..rules.statistics import fpc_error_margin


class ErrorRateEstimator:
    """Estimates the crowd's per-answer error rate from disagreement.

    Each question contributes one Bernoulli observation: whether its
    first two answers disagree.  With disagreement fraction d, the
    error-rate estimate is the smaller root of 2 e (1 - e) = d:

        e = (1 - sqrt(1 - 2 d)) / 2        (d clipped to < 0.5)

    The estimator is conservative when evidence is thin: below
    ``min_questions`` observations it reports ``None``.
    """

    def __init__(self, min_questions: int = 30) -> None:
        if min_questions < 1:
            raise CrowdError("min_questions must be >= 1")
        self.min_questions = min_questions
        self._disagreements = 0
        self._questions = 0

    @property
    def n_questions(self) -> int:
        return self._questions

    @property
    def disagreement(self) -> float:
        """Observed fraction of questions whose first 2 answers differ."""
        if self._questions == 0:
            return 0.0
        return self._disagreements / self._questions

    def record(self, first: bool, second: bool) -> None:
        """Feed the first two answers collected for one question."""
        self._questions += 1
        if first != second:
            self._disagreements += 1

    @property
    def error_rate(self) -> float | None:
        """The point estimate, or None while evidence is insufficient."""
        if self._questions < self.min_questions:
            return None
        d = min(self.disagreement, 0.4999)
        return (1.0 - math.sqrt(1.0 - 2.0 * d)) / 2.0

    def error_rate_interval(self, confidence: float = 0.95,
                            population: int = 10**9) -> tuple[float, float] | None:
        """A confidence interval for the error rate, or None if thin."""
        if self._questions < self.min_questions:
            return None
        margin = fpc_error_margin(self.disagreement, self._questions,
                                  population, confidence)
        low_d = max(0.0, self.disagreement - margin)
        high_d = min(0.4999, self.disagreement + margin)
        to_rate = lambda d: (1.0 - math.sqrt(1.0 - 2.0 * d)) / 2.0
        return to_rate(low_d), to_rate(high_d)


@dataclass(frozen=True)
class AdaptivePolicy:
    """Thresholds for scheme adaptation based on the estimated error.

    Below ``careful_below`` every request is downgraded to 2+1 (the
    crowd has earned trust — save money); above ``sloppy_above`` every
    request is escalated to full strong majority (protect all labels,
    not only positives).  In between, the caller's scheme stands.
    """

    careful_below: float = 0.03
    sloppy_above: float = 0.15

    def __post_init__(self) -> None:
        if not 0.0 <= self.careful_below <= self.sloppy_above <= 0.5:
            raise CrowdError(
                "require 0 <= careful_below <= sloppy_above <= 0.5"
            )

    def adapt(self, requested: VoteScheme,
              error_rate: float | None) -> VoteScheme:
        """The scheme to actually use for the next question."""
        if error_rate is None:
            return requested
        if error_rate < self.careful_below:
            return VoteScheme.MAJORITY_2PLUS1
        if error_rate > self.sloppy_above:
            return VoteScheme.STRONG_MAJORITY
        return requested


class _RecordingPlatform(CrowdPlatform):
    """Proxy that feeds each question's first two answers to the estimator.

    Only the first two answers per question are used: every scheme
    collects those unconditionally, whereas later answers exist *because*
    earlier ones disagreed (vote escalation is a stopping time), so
    pairing them would oversample disagreement and bias the error-rate
    estimate upward.
    """

    def __init__(self, inner: CrowdPlatform,
                 estimator: ErrorRateEstimator) -> None:
        self._inner = inner
        self._estimator = estimator
        self._pending: dict[Pair, bool] = {}
        self._done: set[Pair] = set()

    def ask(self, pair: Pair) -> WorkerAnswer:
        answer = self._inner.ask(pair)
        if pair in self._done:
            return answer
        if pair in self._pending:
            self._estimator.record(self._pending.pop(pair), answer.label)
            self._done.add(pair)
        else:
            self._pending[pair] = answer.label
        return answer


class ProfilingLabelingService(LabelingService):
    """A labelling service that profiles the crowd and adapts voting.

    Drop-in replacement for :class:`LabelingService`; pass
    ``policy=None`` to profile without adapting (pure observation).
    """

    def __init__(self, platform: CrowdPlatform, config: CrowdConfig,
                 tracker: CostTracker | None = None,
                 policy: AdaptivePolicy | None = None,
                 min_questions: int = 30) -> None:
        self.estimator = ErrorRateEstimator(min_questions=min_questions)
        self.policy = policy
        recording = _RecordingPlatform(platform, self.estimator)
        super().__init__(recording, config, tracker)

    @property
    def profile(self) -> dict[str, float | int | None]:
        """A snapshot of what the service believes about its crowd."""
        interval = self.estimator.error_rate_interval()
        return {
            "questions_observed": self.estimator.n_questions,
            "disagreement": self.estimator.disagreement,
            "error_rate": self.estimator.error_rate,
            "error_rate_low": interval[0] if interval else None,
            "error_rate_high": interval[1] if interval else None,
        }

    def _label_one(self, pair: Pair, scheme: VoteScheme) -> bool:
        if self.policy is not None:
            scheme = self.policy.adapt(scheme, self.estimator.error_rate)
        return super()._label_one(pair, scheme)
