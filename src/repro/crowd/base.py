"""Platform abstraction: a crowd is anything that answers match questions.

A :class:`CrowdPlatform` answers one question — "does pair (a, b) match?" —
with one worker's (possibly wrong) boolean answer.  Vote aggregation,
caching and budgeting are layered on top by
:class:`repro.crowd.service.LabelingService`.
"""

from __future__ import annotations

import abc
from typing import NamedTuple

from ..data.pairs import Pair


class WorkerAnswer(NamedTuple):
    """One worker's answer to one question."""

    pair: Pair
    label: bool
    worker_id: int


class CrowdPlatform(abc.ABC):
    """Source of single-worker answers to match questions."""

    @abc.abstractmethod
    def ask(self, pair: Pair) -> WorkerAnswer:
        """Solicit one fresh answer for ``pair`` from some worker.

        Successive calls for the same pair simulate posting the question
        to additional workers (as the 2+1 / strong-majority schemes do).
        """

    def ask_many(self, pair: Pair, n: int) -> list[WorkerAnswer]:
        """Solicit ``n`` independent answers for ``pair``."""
        return [self.ask(pair) for _ in range(n)]
