"""Rendering pairs as crowd questions and HITs (Section 8, Figure 4).

A real deployment must show workers something: the paper's Figure 4
renders the two records side by side under "Do these products match?"
with Yes / No / Not sure buttons.  This module produces that artifact in
two formats — plain text (for logs, CLIs, terminal-based labelling) and
minimal self-contained HTML (what would be uploaded as an AMT HIT
layout) — and packs questions into HITs of the configured size.
"""

from __future__ import annotations

import html
from collections.abc import Sequence
from dataclasses import dataclass

from ..config import CrowdConfig
from ..data.pairs import Pair
from ..data.table import Table
from ..exceptions import DataError


@dataclass(frozen=True)
class Question:
    """One "does x match y?" question, fully rendered."""

    pair: Pair
    prompt: str
    rows: tuple[tuple[str, str, str], ...]
    """(attribute, value_a, value_b) per schema attribute."""


@dataclass(frozen=True)
class Hit:
    """A batch of questions posted as one Human Intelligence Task."""

    hit_id: str
    instruction: str
    questions: tuple[Question, ...]

    def __len__(self) -> int:
        return len(self.questions)


def render_question(table_a: Table, table_b: Table, pair: Pair,
                    prompt: str = "Do these records match?") -> Question:
    """Build the Figure 4 side-by-side comparison for one pair."""
    record_a = table_a[pair.a_id]
    record_b = table_b[pair.b_id]
    if table_a.schema != table_b.schema:
        raise DataError("question rendering requires a shared schema")
    rows = tuple(
        (
            attr.name,
            _display(record_a.get(attr.name)),
            _display(record_b.get(attr.name)),
        )
        for attr in table_a.schema
    )
    return Question(pair=Pair(*pair), prompt=prompt, rows=rows)


def question_to_text(question: Question) -> str:
    """A monospace side-by-side rendering of one question."""
    name_width = max(len(row[0]) for row in question.rows)
    a_width = max(max((len(row[1]) for row in question.rows), default=0),
                  len("Record 1"))
    lines = [question.prompt, ""]
    header = (f"{'':{name_width}}  {'Record 1':{a_width}}  Record 2")
    lines.append(header)
    lines.append("-" * len(header))
    for name, value_a, value_b in question.rows:
        lines.append(f"{name:{name_width}}  {value_a:{a_width}}  {value_b}")
    lines.append("")
    lines.append("[ Yes ]  [ No ]  [ Not sure ]")
    return "\n".join(lines)


def question_to_html(question: Question) -> str:
    """A self-contained HTML fragment for one question (an AMT layout)."""
    pair_id = html.escape(f"{question.pair.a_id}|{question.pair.b_id}")
    parts = [
        f'<div class="corleone-question" data-pair="{pair_id}">',
        f"<h3>{html.escape(question.prompt)}</h3>",
        "<table border='1' cellpadding='4'>",
        "<tr><th></th><th>Record 1</th><th>Record 2</th></tr>",
    ]
    for name, value_a, value_b in question.rows:
        parts.append(
            "<tr>"
            f"<th>{html.escape(name)}</th>"
            f"<td>{html.escape(value_a)}</td>"
            f"<td>{html.escape(value_b)}</td>"
            "</tr>"
        )
    parts.append("</table>")
    parts.append(
        f'<label><input type="radio" name="{pair_id}" value="yes"> Yes'
        "</label> "
        f'<label><input type="radio" name="{pair_id}" value="no"> No'
        "</label> "
        f'<label><input type="radio" name="{pair_id}" value="unsure"> '
        "Not sure</label>"
    )
    parts.append("</div>")
    return "\n".join(parts)


def pack_hits(table_a: Table, table_b: Table, pairs: Sequence[Pair],
              instruction: str, config: CrowdConfig,
              prompt: str = "Do these records match?") -> list[Hit]:
    """Pack rendered questions into HITs of ``questions_per_hit``.

    The final HIT may be partial; the :class:`LabelingService` decides
    separately whether a partial HIT is worth posting (§8 item 3) — this
    function only renders.
    """
    questions = [
        render_question(table_a, table_b, pair, prompt=prompt)
        for pair in pairs
    ]
    per_hit = config.questions_per_hit
    hits = []
    for start in range(0, len(questions), per_hit):
        batch = tuple(questions[start:start + per_hit])
        hits.append(Hit(
            hit_id=f"hit{start // per_hit}",
            instruction=instruction,
            questions=batch,
        ))
    return hits


def hit_to_html(hit: Hit) -> str:
    """One HIT as a self-contained HTML document."""
    body = "\n<hr>\n".join(
        question_to_html(question) for question in hit.questions
    )
    return (
        "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
        f"<title>{html.escape(hit.hit_id)}</title></head>\n<body>\n"
        f"<p>{html.escape(hit.instruction)}</p>\n{body}\n"
        "</body></html>"
    )


def _display(value: object) -> str:
    if value is None:
        return "(missing)"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)
