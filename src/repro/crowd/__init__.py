"""Crowdsourcing substrate (Section 8).

Corleone was evaluated on Amazon Mechanical Turk; offline we replace the
worker pool with the random-worker simulation model that the paper itself
uses for its sensitivity analysis (Section 9.3): each answer is flipped
independently with a configurable error rate.  Everything above the worker
pool — HIT packing, 2+1 and strong-majority vote aggregation, label
caching, and cost accounting — is implemented exactly as described in the
paper and is platform-agnostic.
"""

from .base import CrowdPlatform, WorkerAnswer
from .simulated import (
    BiasedCrowd,
    HeterogeneousCrowd,
    PerfectCrowd,
    SimulatedCrowd,
)
from .aggregation import (
    VoteScheme,
    majority_2plus1,
    strong_majority,
    asymmetric_majority,
)
from .cost import CostTracker
from .service import CachedLabel, LabelingService
from .profiler import (
    AdaptivePolicy,
    ErrorRateEstimator,
    ProfilingLabelingService,
)
from .latency import (
    LatencyModel,
    PayPoint,
    SimulatedClock,
    TimedCrowd,
    cheapest_within_deadline,
    pareto_sweep,
)
from .faults import (
    FAULT_DUPLICATE,
    FAULT_EXPIRY,
    FAULT_KINDS,
    FAULT_OUTAGE,
    FAULT_SPAMMER,
    FAULT_TIMEOUT,
    FaultSpec,
    FaultyCrowd,
    fault_stream_seed,
)
from .gateway import (
    CIRCUIT_CLOSED,
    CIRCUIT_HALF_OPEN,
    CIRCUIT_OPEN,
    CircuitBreaker,
    ResilientCrowd,
    RetryPolicy,
    find_clock,
)
from .transcript import (
    QuestionTranscript,
    TranscriptingPlatform,
    group_by_question,
    transcript_from_jsonl,
    transcript_to_jsonl,
    worker_agreement_report,
)
from .questions import (
    Hit,
    Question,
    hit_to_html,
    pack_hits,
    question_to_html,
    question_to_text,
    render_question,
)

__all__ = [
    "CrowdPlatform",
    "WorkerAnswer",
    "SimulatedCrowd",
    "PerfectCrowd",
    "HeterogeneousCrowd",
    "BiasedCrowd",
    "VoteScheme",
    "majority_2plus1",
    "strong_majority",
    "asymmetric_majority",
    "CostTracker",
    "CachedLabel",
    "LabelingService",
    "AdaptivePolicy",
    "ErrorRateEstimator",
    "ProfilingLabelingService",
    "LatencyModel",
    "PayPoint",
    "SimulatedClock",
    "TimedCrowd",
    "cheapest_within_deadline",
    "pareto_sweep",
    "FAULT_DUPLICATE",
    "FAULT_EXPIRY",
    "FAULT_KINDS",
    "FAULT_OUTAGE",
    "FAULT_SPAMMER",
    "FAULT_TIMEOUT",
    "FaultSpec",
    "FaultyCrowd",
    "fault_stream_seed",
    "CIRCUIT_CLOSED",
    "CIRCUIT_HALF_OPEN",
    "CIRCUIT_OPEN",
    "CircuitBreaker",
    "ResilientCrowd",
    "RetryPolicy",
    "find_clock",
    "Hit",
    "Question",
    "hit_to_html",
    "pack_hits",
    "question_to_html",
    "question_to_text",
    "render_question",
    "QuestionTranscript",
    "TranscriptingPlatform",
    "group_by_question",
    "transcript_from_jsonl",
    "transcript_to_jsonl",
    "worker_agreement_report",
]
