"""JSON persistence for rules, forests and run reports.

A production EM deployment wants to keep what a run learned: the
certified blocking rules (reusable on the next data refresh), the
trained forest (apply without re-crowdsourcing), and a machine-readable
run report.  Everything round-trips through plain JSON-compatible dicts
— no pickling, so artifacts are inspectable and portable.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

from .config import (
    BlockerConfig,
    CorleoneConfig,
    CrowdConfig,
    EstimatorConfig,
    ForestConfig,
    GatewayConfig,
    LocatorConfig,
    MatcherConfig,
    PlanConfig,
)
from .core.blocker import BlockerResult
from .core.budgeting import BudgetPlan
from .core.estimator import AccuracyEstimate
from .core.locator import LocatorResult
from .core.matcher import MatcherResult, MatcherTrainState
from .core.results import CorleoneResult, IterationRecord
from .data.pairs import CandidateSet, Pair
from .data.table import AttrType, Record, Schema, Table
from .exceptions import DataError
from .forest.forest import RandomForest
from .forest.tree import DecisionTree, Node
from .obs import timing as _timing
from .rules.evaluation import RuleEvaluation
from .rules.predicates import Predicate
from .rules.rule import Rule

__all__ = [
    "FORMAT_VERSION",
    "blocker_result_from_dict",
    "blocker_result_to_dict",
    "budget_plan_from_dict",
    "budget_plan_to_dict",
    "config_from_dict",
    "config_to_dict",
    "estimate_from_dict",
    "estimate_to_dict",
    "forest_from_dict",
    "forest_to_dict",
    "iteration_record_from_dict",
    "iteration_record_to_dict",
    "load_candidates",
    "load_forest",
    "load_report",
    "load_rules",
    "locator_result_from_dict",
    "locator_result_to_dict",
    "matcher_result_from_dict",
    "matcher_result_to_dict",
    "matcher_train_state_from_dict",
    "matcher_train_state_to_dict",
    "platform_timing",
    "result_report",
    "rule_evaluation_from_dict",
    "rule_evaluation_to_dict",
    "rule_from_dict",
    "rule_to_dict",
    "save_candidates",
    "save_forest",
    "save_report",
    "save_rules",
    "table_from_dict",
    "table_to_dict",
    "tree_from_dict",
    "tree_to_dict",
]

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------

def rule_to_dict(rule: Rule) -> dict[str, Any]:
    """A JSON-compatible representation of one rule."""
    return {
        "predicts_match": rule.predicts_match,
        "cost": rule.cost,
        "source": rule.source,
        "predicates": [
            {
                "feature_index": p.feature_index,
                "feature_name": p.feature_name,
                "le": p.le,
                "threshold": p.threshold,
                "nan_satisfies": p.nan_satisfies,
            }
            for p in rule.predicates
        ],
    }


def rule_from_dict(data: dict[str, Any]) -> Rule:
    """Rebuild a rule saved with :func:`rule_to_dict`."""
    try:
        predicates = [
            Predicate(
                feature_index=p["feature_index"],
                feature_name=p["feature_name"],
                le=p["le"],
                threshold=p["threshold"],
                nan_satisfies=p.get("nan_satisfies", False),
            )
            for p in data["predicates"]
        ]
        return Rule(
            predicates,
            predicts_match=data["predicts_match"],
            cost=data.get("cost", 0.0),
            source=data.get("source", ""),
        )
    except (KeyError, TypeError) as error:
        raise DataError(f"malformed rule document: {error}") from None


def save_rules(rules: list[Rule], path: str | Path) -> None:
    """Write a rule set to a JSON file."""
    document = {
        "format": "corleone-rules",
        "version": FORMAT_VERSION,
        "rules": [rule_to_dict(rule) for rule in rules],
    }
    Path(path).write_text(json.dumps(document, indent=2))


def load_rules(path: str | Path) -> list[Rule]:
    """Load a rule set saved by :func:`save_rules`."""
    document = _load_document(path, "corleone-rules")
    return [rule_from_dict(item) for item in document["rules"]]


# ----------------------------------------------------------------------
# Forests
# ----------------------------------------------------------------------

def tree_to_dict(tree: DecisionTree) -> dict[str, Any]:
    """A JSON-compatible representation of one fitted tree."""
    return {
        "n_features": tree.n_features_,
        "max_depth": tree.max_depth,
        "min_samples_split": tree.min_samples_split,
        "min_samples_leaf": tree.min_samples_leaf,
        "max_features": tree.max_features,
        "nodes": [
            [node.feature, node.threshold, node.left, node.right,
             node.nan_left, node.label, node.n_total, node.n_positive]
            for node in tree.nodes
        ],
    }


def tree_from_dict(data: dict[str, Any]) -> DecisionTree:
    """Rebuild a tree saved with :func:`tree_to_dict`."""
    try:
        tree = DecisionTree(
            max_depth=data["max_depth"],
            min_samples_split=data["min_samples_split"],
            min_samples_leaf=data["min_samples_leaf"],
            max_features=data["max_features"],
        )
        tree.n_features_ = data["n_features"]
        tree.nodes = [
            Node(feature=f, threshold=t, left=l, right=r, nan_left=nl,
                 label=lab, n_total=nt, n_positive=np_)
            for f, t, l, r, nl, lab, nt, np_ in data["nodes"]
        ]
        return tree
    except (KeyError, TypeError, ValueError) as error:
        raise DataError(f"malformed tree document: {error}") from None


def forest_to_dict(forest: RandomForest,
                   feature_names: list[str] | None = None) -> dict[str, Any]:
    """A JSON-compatible representation of a trained forest."""
    return {
        "format": "corleone-forest",
        "version": FORMAT_VERSION,
        "feature_names": feature_names,
        "trees": [tree_to_dict(tree) for tree in forest.trees],
    }


def forest_from_dict(data: dict[str, Any]) -> RandomForest:
    """Rebuild a forest saved with :func:`forest_to_dict`."""
    if data.get("format") != "corleone-forest":
        raise DataError("not a corleone-forest document")
    trees = [tree_from_dict(item) for item in data["trees"]]
    if not trees:
        raise DataError("forest document contains no trees")
    return RandomForest(trees)


def save_forest(forest: RandomForest, path: str | Path,
                feature_names: list[str] | None = None) -> None:
    """Write a trained forest to a JSON file."""
    Path(path).write_text(
        json.dumps(forest_to_dict(forest, feature_names))
    )


def load_forest(path: str | Path) -> RandomForest:
    """Load a forest saved by :func:`save_forest`."""
    return forest_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Candidate sets
# ----------------------------------------------------------------------

def save_candidates(candidates: CandidateSet, path: str | Path,
                    external_features: str | None = None,
                    writer: Any = None) -> str:
    """Persist a vectorized candidate set as a compressed ``.npz``.

    Vectorization dominates experiment start-up time; saving the matrix
    lets repeated experiments on the same umbrella set skip it.  The
    write is durable (:func:`repro.storage.writer.atomic_write_npz`:
    tmp, fsync, atomic replace, directory fsync) and returns the
    file's sha256.  Pass the run's
    :class:`~repro.storage.writer.ArtifactWriter` as ``writer`` to
    record the artifact — and any referenced spill file — in the run
    manifest, which is what lets a resume detect bit rot.

    ``external_features`` is the spill hook: the relative path (from
    ``path``'s directory) of a memory-mapped ``.npy`` file already
    holding the feature matrix.  The ``.npz`` then stores only a
    reference plus the matrix's shape/dtype fingerprint — the spill
    file *is* the canonical bytes, so a multi-gigabyte matrix is never
    re-serialized into the checkpoint, and :func:`load_candidates`
    reopens it read-only without materializing it in RAM.  Callers
    must flush the spill file first (:meth:`repro.plan.SpillManager.
    flush` — the engine's checkpointer does).
    """
    import numpy as np

    from .storage.writer import atomic_write_npz

    path = Path(path)
    arrays = {
        "a_ids": np.array([pair.a_id for pair in candidates.pairs]),
        "b_ids": np.array([pair.b_id for pair in candidates.pairs]),
        "feature_names": np.array(candidates.feature_names),
    }
    if external_features is None:
        arrays["features"] = candidates.features
    else:
        arrays["features_file"] = np.array([external_features])
        arrays["features_shape"] = np.array(candidates.features.shape,
                                            dtype=np.int64)
        arrays["features_dtype"] = np.array(
            [str(candidates.features.dtype)])
    if writer is not None:
        writer.atomic_write_npz(path, arrays, compressed=True)
        if external_features is not None:
            # The spill .npy is the matrix's canonical serialization;
            # hashing it into the manifest closes the verification gap
            # a bit-flipped spill file would otherwise slip through.
            writer.record_file(path.parent / external_features)
        return writer.entry(path)["sha256"]
    return atomic_write_npz(path, arrays, compressed=True)


def load_candidates(path: str | Path) -> CandidateSet:
    """Load a candidate set saved by :func:`save_candidates`.

    A candidate file whose matrix was spilled (``external_features``)
    resolves the referenced ``.npy`` relative to its own directory and
    memory-maps it read-only — the working set never has to fit in
    RAM, and the mapped bytes are exactly the checkpointed ones, so
    resume stays bit-identical.
    """
    import numpy as np

    from .data.pairs import Pair

    import zipfile

    path = Path(path)
    if not path.is_file():
        raise DataError(f"{path}: no such candidate file")
    try:
        with np.load(path, allow_pickle=False) as data:
            pairs = [
                Pair(str(a), str(b))
                for a, b in zip(data["a_ids"], data["b_ids"])
            ]
            if "features_file" in data:
                features = _load_spilled_features(path, data)
            else:
                features = data["features"]
            return CandidateSet(
                pairs,
                features,
                [str(name) for name in data["feature_names"]],
            )
    except (KeyError, ValueError, EOFError, OSError,
            zipfile.BadZipFile) as error:
        # BadZipFile/EOFError/OSError cover torn or bit-rotted archives:
        # resume must see a typed error naming the file, never a raw
        # zipfile or numpy traceback.
        raise DataError(f"{path}: malformed candidate file "
                        f"({error})") from None


def _load_spilled_features(path: Path, data) -> "Any":
    """Memory-map the spill file a candidate ``.npz`` references.

    The stored shape/dtype fingerprint is verified against the mapped
    file — a spill file swapped or truncated after the checkpoint was
    written must fail loudly, not feed wrong features to a resumed run.
    ``open_readonly`` additionally checks the file's sha256 against the
    run manifest (the candidate file's directory is the manifest root),
    so single-bit rot that preserves shape and dtype is caught too.
    """
    from .plan.spill import open_readonly

    name = str(data["features_file"][0])
    spill_file = path.parent / name
    if not spill_file.is_file():
        raise DataError(
            f"{path}: references spill file {name!r}, which does not "
            f"exist next to it")
    features = open_readonly(spill_file, manifest_root=path.parent)
    shape = tuple(int(n) for n in data["features_shape"])
    dtype = str(data["features_dtype"][0])
    if features.shape != shape or str(features.dtype) != dtype:
        raise DataError(
            f"{path}: spill file {name!r} holds {features.dtype} "
            f"{features.shape}, checkpoint recorded {dtype} {shape}")
    return features


# ----------------------------------------------------------------------
# Configuration and budget plans
# ----------------------------------------------------------------------

def config_to_dict(config: CorleoneConfig) -> dict[str, Any]:
    """A JSON-compatible representation of a full configuration."""
    return dataclasses.asdict(config)


def config_from_dict(data: dict[str, Any]) -> CorleoneConfig:
    """Rebuild a configuration saved with :func:`config_to_dict`."""
    try:
        return CorleoneConfig(
            forest=ForestConfig(**data["forest"]),
            blocker=BlockerConfig(**data["blocker"]),
            matcher=MatcherConfig(**data["matcher"]),
            estimator=EstimatorConfig(**data["estimator"]),
            locator=LocatorConfig(**data["locator"]),
            crowd=CrowdConfig(**data["crowd"]),
            # Documents written before the gateway/plan existed omit
            # their keys.
            gateway=GatewayConfig(**data.get("gateway", {})),
            plan=PlanConfig(**data.get("plan", {})),
            max_pipeline_iterations=data["max_pipeline_iterations"],
            budget=data["budget"],
            seed=data["seed"],
        )
    except (KeyError, TypeError) as error:
        raise DataError(f"malformed config document: {error}") from None


def budget_plan_to_dict(plan: BudgetPlan) -> dict[str, Any]:
    """A JSON-compatible representation of a phase budget plan."""
    return dataclasses.asdict(plan)


def budget_plan_from_dict(data: dict[str, Any]) -> BudgetPlan:
    """Rebuild a plan saved with :func:`budget_plan_to_dict`."""
    try:
        return BudgetPlan(**data)
    except TypeError as error:
        raise DataError(f"malformed budget plan: {error}") from None


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------

def table_to_dict(table: Table) -> dict[str, Any]:
    """A JSON-compatible representation of one input table."""
    return {
        "name": table.name,
        "schema": [
            [attr.name, attr.attr_type.value]
            for attr in table.schema.attributes
        ],
        "records": [
            [record.record_id, dict(record.values)] for record in table
        ],
    }


def table_from_dict(data: dict[str, Any]) -> Table:
    """Rebuild a table saved with :func:`table_to_dict`."""
    try:
        schema = Schema.from_pairs(
            (name, AttrType(kind)) for name, kind in data["schema"]
        )
        return Table(
            data["name"], schema,
            (Record(rid, values) for rid, values in data["records"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise DataError(f"malformed table document: {error}") from None


# ----------------------------------------------------------------------
# Stage results (checkpointing)
# ----------------------------------------------------------------------

def _pair_rows(pairs: Any) -> list[list[str]]:
    """Pairs as ``[a_id, b_id]`` rows, preserving order."""
    return [[pair.a_id, pair.b_id] for pair in pairs]


def _pairs_from_rows(rows: Any) -> list[Pair]:
    """Inverse of :func:`_pair_rows`."""
    return [Pair(str(a), str(b)) for a, b in rows]


def rule_evaluation_to_dict(evaluation: RuleEvaluation) -> dict[str, Any]:
    """A JSON-compatible representation of one rule evaluation."""
    return {
        "rule": rule_to_dict(evaluation.rule),
        "accepted": evaluation.accepted,
        "precision": evaluation.precision,
        "error_margin": evaluation.error_margin,
        "coverage": evaluation.coverage,
        "n_labeled": evaluation.n_labeled,
        "reason": evaluation.reason,
    }


def rule_evaluation_from_dict(data: dict[str, Any]) -> RuleEvaluation:
    """Rebuild an evaluation saved with :func:`rule_evaluation_to_dict`."""
    try:
        return RuleEvaluation(
            rule=rule_from_dict(data["rule"]),
            accepted=data["accepted"],
            precision=data["precision"],
            error_margin=data["error_margin"],
            coverage=data["coverage"],
            n_labeled=data["n_labeled"],
            reason=data["reason"],
        )
    except (KeyError, TypeError) as error:
        raise DataError(f"malformed rule evaluation: {error}") from None


def estimate_to_dict(estimate: AccuracyEstimate) -> dict[str, Any]:
    """A JSON-compatible representation of an accuracy estimate."""
    return {
        "precision": estimate.precision,
        "recall": estimate.recall,
        "eps_precision": estimate.eps_precision,
        "eps_recall": estimate.eps_recall,
        "n_labeled": estimate.n_labeled,
        "n_probes": estimate.n_probes,
        "density": estimate.density,
        "converged": estimate.converged,
        "applied_rules": [rule_to_dict(r) for r in estimate.applied_rules],
        "rule_evaluations": [
            rule_evaluation_to_dict(e) for e in estimate.rule_evaluations
        ],
    }


def estimate_from_dict(data: dict[str, Any]) -> AccuracyEstimate:
    """Rebuild an estimate saved with :func:`estimate_to_dict`."""
    try:
        return AccuracyEstimate(
            precision=data["precision"],
            recall=data["recall"],
            eps_precision=data["eps_precision"],
            eps_recall=data["eps_recall"],
            n_labeled=data["n_labeled"],
            n_probes=data["n_probes"],
            density=data["density"],
            converged=data["converged"],
            applied_rules=[rule_from_dict(r) for r in data["applied_rules"]],
            rule_evaluations=[
                rule_evaluation_from_dict(e)
                for e in data["rule_evaluations"]
            ],
        )
    except (KeyError, TypeError) as error:
        raise DataError(f"malformed estimate document: {error}") from None


def matcher_result_to_dict(result: MatcherResult) -> dict[str, Any]:
    """A JSON-compatible representation of a matcher training outcome.

    Predictions are stored as a 0/1 list aligned to the candidate rows
    the matcher was trained on.
    """
    import numpy as np

    return {
        "forest": forest_to_dict(result.forest),
        "predictions": np.asarray(result.predictions, dtype=int).tolist(),
        "labeled_rows": [
            [int(row), bool(label)]
            for row, label in result.labeled_rows.items()
        ],
        "confidence_history": [float(v) for v in result.confidence_history],
        "stop_reason": result.stop_reason,
        "n_iterations": result.n_iterations,
        "pairs_labeled": result.pairs_labeled,
        "extra_labels": [
            [pair.a_id, pair.b_id, bool(label)]
            for pair, label in result.extra_labels.items()
        ],
    }


def matcher_result_from_dict(data: dict[str, Any]) -> MatcherResult:
    """Rebuild a matcher result saved with :func:`matcher_result_to_dict`."""
    import numpy as np

    try:
        return MatcherResult(
            forest=forest_from_dict(data["forest"]),
            predictions=np.asarray(data["predictions"], dtype=bool),
            labeled_rows={
                int(row): bool(label) for row, label in data["labeled_rows"]
            },
            confidence_history=[float(v) for v in data["confidence_history"]],
            stop_reason=data["stop_reason"],
            n_iterations=data["n_iterations"],
            pairs_labeled=data["pairs_labeled"],
            extra_labels={
                Pair(str(a), str(b)): bool(label)
                for a, b, label in data["extra_labels"]
            },
        )
    except (KeyError, TypeError) as error:
        raise DataError(f"malformed matcher result: {error}") from None


def matcher_train_state_to_dict(state: MatcherTrainState) -> dict[str, Any]:
    """A JSON-compatible snapshot of an in-progress matcher training."""
    return {
        "labeled_rows": [
            [int(row), bool(label)]
            for row, label in state.labeled_rows.items()
        ],
        "monitor_rows": [int(row) for row in state.monitor_rows],
        "confidences": [float(v) for v in state.confidences],
        "forests": [forest_to_dict(forest) for forest in state.forests],
        "pairs_before": state.pairs_before,
        "stop_reason": state.stop_reason,
        "rollback_index": state.rollback_index,
    }


def matcher_train_state_from_dict(data: dict[str, Any]) -> MatcherTrainState:
    """Rebuild a snapshot from :func:`matcher_train_state_to_dict`."""
    try:
        return MatcherTrainState(
            labeled_rows={
                int(row): bool(label) for row, label in data["labeled_rows"]
            },
            monitor_rows=[int(row) for row in data["monitor_rows"]],
            confidences=[float(v) for v in data["confidences"]],
            forests=[forest_from_dict(f) for f in data["forests"]],
            pairs_before=data["pairs_before"],
            stop_reason=data["stop_reason"],
            rollback_index=data["rollback_index"],
        )
    except (KeyError, TypeError) as error:
        raise DataError(f"malformed matcher train state: {error}") from None


def blocker_result_to_dict(result: BlockerResult) -> dict[str, Any]:
    """A JSON-compatible representation of the blocker's outcome.

    The internal ``matcher_result`` (the forest the blocker trained to
    derive rules from) is deliberately dropped: nothing downstream of
    the blocking stage reads it, and it would double checkpoint size.
    A restored result carries ``matcher_result=None``.
    """
    return {
        "triggered": result.triggered,
        "candidate_pairs": _pair_rows(result.candidate_pairs),
        "cartesian": result.cartesian,
        "sample_size": result.sample_size,
        "applied_rules": [rule_to_dict(r) for r in result.applied_rules],
        "evaluations": [
            rule_evaluation_to_dict(e) for e in result.evaluations
        ],
        "n_candidate_rules": result.n_candidate_rules,
        "pairs_labeled": result.pairs_labeled,
        "dollars": result.dollars,
    }


def blocker_result_from_dict(data: dict[str, Any]) -> BlockerResult:
    """Rebuild a blocker result saved with :func:`blocker_result_to_dict`."""
    try:
        return BlockerResult(
            triggered=data["triggered"],
            candidate_pairs=_pairs_from_rows(data["candidate_pairs"]),
            cartesian=data["cartesian"],
            sample_size=data["sample_size"],
            applied_rules=[rule_from_dict(r) for r in data["applied_rules"]],
            evaluations=[
                rule_evaluation_from_dict(e) for e in data["evaluations"]
            ],
            n_candidate_rules=data["n_candidate_rules"],
            pairs_labeled=data["pairs_labeled"],
            dollars=data["dollars"],
        )
    except (KeyError, TypeError) as error:
        raise DataError(f"malformed blocker result: {error}") from None


def locator_result_to_dict(result: LocatorResult,
                           candidates: CandidateSet) -> dict[str, Any]:
    """A JSON-compatible representation of a locator verdict.

    The difficult set is stored as row indices into ``candidates`` (the
    full candidate set it was carved from), not as a second copy of the
    feature matrix.
    """
    difficult = None
    if result.difficult is not None:
        difficult = [
            candidates.index_of(pair) for pair in result.difficult.pairs
        ]
    return {
        "difficult_rows": difficult,
        "stop_reason": result.stop_reason,
        "accepted_rules": [rule_to_dict(r) for r in result.accepted_rules],
        "evaluations": [
            rule_evaluation_to_dict(e) for e in result.evaluations
        ],
        "pairs_labeled": result.pairs_labeled,
    }


def locator_result_from_dict(data: dict[str, Any],
                             candidates: CandidateSet) -> LocatorResult:
    """Rebuild a verdict saved with :func:`locator_result_to_dict`."""
    try:
        difficult = None
        if data["difficult_rows"] is not None:
            difficult = candidates.subset(
                [int(row) for row in data["difficult_rows"]]
            )
        return LocatorResult(
            difficult=difficult,
            stop_reason=data["stop_reason"],
            accepted_rules=[
                rule_from_dict(r) for r in data["accepted_rules"]
            ],
            evaluations=[
                rule_evaluation_from_dict(e) for e in data["evaluations"]
            ],
            pairs_labeled=data["pairs_labeled"],
        )
    except (KeyError, TypeError) as error:
        raise DataError(f"malformed locator result: {error}") from None


def iteration_record_to_dict(record: IterationRecord,
                             candidates: CandidateSet) -> dict[str, Any]:
    """A JSON-compatible representation of one pipeline iteration."""
    return {
        "index": record.index,
        "matcher": matcher_result_to_dict(record.matcher),
        "matcher_pairs_labeled": record.matcher_pairs_labeled,
        "predicted_pairs": _pair_rows(sorted(record.predicted_pairs)),
        "estimate": (None if record.estimate is None
                     else estimate_to_dict(record.estimate)),
        "estimation_pairs_labeled": record.estimation_pairs_labeled,
        "locator": (None if record.locator is None
                    else locator_result_to_dict(record.locator, candidates)),
        "reduction_pairs_labeled": record.reduction_pairs_labeled,
        "difficult_size": record.difficult_size,
    }


def iteration_record_from_dict(data: dict[str, Any],
                               candidates: CandidateSet) -> IterationRecord:
    """Rebuild a record saved with :func:`iteration_record_to_dict`."""
    try:
        return IterationRecord(
            index=data["index"],
            matcher=matcher_result_from_dict(data["matcher"]),
            matcher_pairs_labeled=data["matcher_pairs_labeled"],
            predicted_pairs=frozenset(
                _pairs_from_rows(data["predicted_pairs"])
            ),
            estimate=(None if data["estimate"] is None
                      else estimate_from_dict(data["estimate"])),
            estimation_pairs_labeled=data["estimation_pairs_labeled"],
            locator=(None if data["locator"] is None
                     else locator_result_from_dict(data["locator"],
                                                   candidates)),
            reduction_pairs_labeled=data["reduction_pairs_labeled"],
            difficult_size=data["difficult_size"],
        )
    except (KeyError, TypeError) as error:
        raise DataError(f"malformed iteration record: {error}") from None


# ----------------------------------------------------------------------
# Run reports
# ----------------------------------------------------------------------

def result_report(result: CorleoneResult, platform: Any = None,
                  telemetry: Any = None) -> dict[str, Any]:
    """A machine-readable summary of a pipeline run.

    Predicted matches are included as sorted (a_id, b_id) pairs;
    everything else is telemetry a monitoring system would want.  Pass
    the run's platform stack to add a ``timing`` section: simulated
    elapsed time plus the retry-time totals the gateway and the timed
    wrapper accrued (timeout waits, backoff sleeps, worker time burned
    by faults) — omitted when no wrapper in the stack tracks time, so
    reports from plain platforms are unchanged.  Pass the run's
    :class:`~repro.obs.telemetry.RunTelemetry` to source the section
    through its :meth:`~repro.obs.telemetry.RunTelemetry.timing_snapshot`
    instead; both routes resolve to the same single implementation
    (:func:`repro.obs.timing.platform_timing`), so the numbers cannot
    drift.
    """
    report: dict[str, Any] = {
        "format": "corleone-report",
        "version": FORMAT_VERSION,
        "stop_reason": result.stop_reason,
        "predicted_matches": [
            [pair.a_id, pair.b_id]
            for pair in sorted(result.predicted_matches)
        ],
        "cost": {
            "dollars": result.cost.dollars,
            "answers": result.cost.answers,
            "pairs_labeled": result.cost.pairs_labeled,
            "hits": result.cost.hits,
        },
        "blocking": {
            "triggered": result.blocker.triggered,
            "cartesian": result.blocker.cartesian,
            "umbrella": result.blocker.umbrella_size,
            "rules": [rule_to_dict(rule)
                      for rule in result.blocker.applied_rules],
        },
        "iterations": [
            {
                "index": record.index,
                "matcher_pairs_labeled": record.matcher_pairs_labeled,
                "matcher_stop_reason": record.matcher.stop_reason,
                "matcher_al_iterations": record.matcher.n_iterations,
                "confidence_history": record.matcher.confidence_history,
                "estimation_pairs_labeled": record.estimation_pairs_labeled,
                "reduction_pairs_labeled": record.reduction_pairs_labeled,
                "difficult_size": record.difficult_size,
                "estimate": None if record.estimate is None else {
                    "precision": record.estimate.precision,
                    "recall": record.estimate.recall,
                    "f1": record.estimate.f1,
                    "eps_precision": record.estimate.eps_precision,
                    "eps_recall": record.estimate.eps_recall,
                    "converged": record.estimate.converged,
                    "n_labeled": record.estimate.n_labeled,
                },
            }
            for record in result.iterations
        ],
    }
    if result.estimate is not None:
        report["estimate"] = {
            "precision": result.estimate.precision,
            "recall": result.estimate.recall,
            "f1": result.estimate.f1,
            "eps_precision": result.estimate.eps_precision,
            "eps_recall": result.estimate.eps_recall,
            "converged": result.estimate.converged,
        }
    timing = None
    if telemetry is not None:
        timing = telemetry.timing_snapshot(platform)
    elif platform is not None:
        timing = platform_timing(platform)
    if timing is not None:
        report["timing"] = timing
    return report


def platform_timing(platform: Any) -> dict[str, Any] | None:
    """Timing telemetry scraped from a platform decorator stack.

    Thin alias for :func:`repro.obs.timing.platform_timing` — the
    observability package owns the one implementation of elapsed/retry
    bookkeeping; this name survives for report-era callers.
    """
    return _timing.platform_timing(platform)


def save_report(result: CorleoneResult, path: str | Path) -> None:
    """Write a run report to a JSON file."""
    Path(path).write_text(json.dumps(result_report(result), indent=2))


def load_report(path: str | Path) -> dict[str, Any]:
    """Load and validate a report saved by :func:`save_report`."""
    return _load_document(path, "corleone-report")


def _load_document(path: str | Path, expected_format: str) -> dict[str, Any]:
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise DataError(f"{path}: invalid JSON ({error})") from None
    if document.get("format") != expected_format:
        raise DataError(
            f"{path}: expected a {expected_format} document, got "
            f"{document.get('format')!r}"
        )
    return document
