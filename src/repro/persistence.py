"""JSON persistence for rules, forests and run reports.

A production EM deployment wants to keep what a run learned: the
certified blocking rules (reusable on the next data refresh), the
trained forest (apply without re-crowdsourcing), and a machine-readable
run report.  Everything round-trips through plain JSON-compatible dicts
— no pickling, so artifacts are inspectable and portable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .core.pipeline import CorleoneResult
from .data.pairs import CandidateSet
from .exceptions import DataError
from .forest.forest import RandomForest
from .forest.tree import DecisionTree, Node
from .rules.predicates import Predicate
from .rules.rule import Rule

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------

def rule_to_dict(rule: Rule) -> dict[str, Any]:
    """A JSON-compatible representation of one rule."""
    return {
        "predicts_match": rule.predicts_match,
        "cost": rule.cost,
        "source": rule.source,
        "predicates": [
            {
                "feature_index": p.feature_index,
                "feature_name": p.feature_name,
                "le": p.le,
                "threshold": p.threshold,
                "nan_satisfies": p.nan_satisfies,
            }
            for p in rule.predicates
        ],
    }


def rule_from_dict(data: dict[str, Any]) -> Rule:
    """Rebuild a rule saved with :func:`rule_to_dict`."""
    try:
        predicates = [
            Predicate(
                feature_index=p["feature_index"],
                feature_name=p["feature_name"],
                le=p["le"],
                threshold=p["threshold"],
                nan_satisfies=p.get("nan_satisfies", False),
            )
            for p in data["predicates"]
        ]
        return Rule(
            predicates,
            predicts_match=data["predicts_match"],
            cost=data.get("cost", 0.0),
            source=data.get("source", ""),
        )
    except (KeyError, TypeError) as error:
        raise DataError(f"malformed rule document: {error}") from None


def save_rules(rules: list[Rule], path: str | Path) -> None:
    """Write a rule set to a JSON file."""
    document = {
        "format": "corleone-rules",
        "version": FORMAT_VERSION,
        "rules": [rule_to_dict(rule) for rule in rules],
    }
    Path(path).write_text(json.dumps(document, indent=2))


def load_rules(path: str | Path) -> list[Rule]:
    """Load a rule set saved by :func:`save_rules`."""
    document = _load_document(path, "corleone-rules")
    return [rule_from_dict(item) for item in document["rules"]]


# ----------------------------------------------------------------------
# Forests
# ----------------------------------------------------------------------

def tree_to_dict(tree: DecisionTree) -> dict[str, Any]:
    """A JSON-compatible representation of one fitted tree."""
    return {
        "n_features": tree.n_features_,
        "max_depth": tree.max_depth,
        "min_samples_split": tree.min_samples_split,
        "min_samples_leaf": tree.min_samples_leaf,
        "max_features": tree.max_features,
        "nodes": [
            [node.feature, node.threshold, node.left, node.right,
             node.nan_left, node.label, node.n_total, node.n_positive]
            for node in tree.nodes
        ],
    }


def tree_from_dict(data: dict[str, Any]) -> DecisionTree:
    """Rebuild a tree saved with :func:`tree_to_dict`."""
    try:
        tree = DecisionTree(
            max_depth=data["max_depth"],
            min_samples_split=data["min_samples_split"],
            min_samples_leaf=data["min_samples_leaf"],
            max_features=data["max_features"],
        )
        tree.n_features_ = data["n_features"]
        tree.nodes = [
            Node(feature=f, threshold=t, left=l, right=r, nan_left=nl,
                 label=lab, n_total=nt, n_positive=np_)
            for f, t, l, r, nl, lab, nt, np_ in data["nodes"]
        ]
        return tree
    except (KeyError, TypeError, ValueError) as error:
        raise DataError(f"malformed tree document: {error}") from None


def forest_to_dict(forest: RandomForest,
                   feature_names: list[str] | None = None) -> dict[str, Any]:
    """A JSON-compatible representation of a trained forest."""
    return {
        "format": "corleone-forest",
        "version": FORMAT_VERSION,
        "feature_names": feature_names,
        "trees": [tree_to_dict(tree) for tree in forest.trees],
    }


def forest_from_dict(data: dict[str, Any]) -> RandomForest:
    """Rebuild a forest saved with :func:`forest_to_dict`."""
    if data.get("format") != "corleone-forest":
        raise DataError("not a corleone-forest document")
    trees = [tree_from_dict(item) for item in data["trees"]]
    if not trees:
        raise DataError("forest document contains no trees")
    return RandomForest(trees)


def save_forest(forest: RandomForest, path: str | Path,
                feature_names: list[str] | None = None) -> None:
    """Write a trained forest to a JSON file."""
    Path(path).write_text(
        json.dumps(forest_to_dict(forest, feature_names))
    )


def load_forest(path: str | Path) -> RandomForest:
    """Load a forest saved by :func:`save_forest`."""
    return forest_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Candidate sets
# ----------------------------------------------------------------------

def save_candidates(candidates: CandidateSet, path: str | Path) -> None:
    """Persist a vectorized candidate set as a compressed ``.npz``.

    Vectorization dominates experiment start-up time; saving the matrix
    lets repeated experiments on the same umbrella set skip it.
    """
    import numpy as np

    np.savez_compressed(
        Path(path),
        a_ids=np.array([pair.a_id for pair in candidates.pairs]),
        b_ids=np.array([pair.b_id for pair in candidates.pairs]),
        features=candidates.features,
        feature_names=np.array(candidates.feature_names),
    )


def load_candidates(path: str | Path) -> CandidateSet:
    """Load a candidate set saved by :func:`save_candidates`."""
    import numpy as np

    from .data.pairs import Pair

    path = Path(path)
    if not path.is_file():
        raise DataError(f"{path}: no such candidate file")
    try:
        with np.load(path, allow_pickle=False) as data:
            pairs = [
                Pair(str(a), str(b))
                for a, b in zip(data["a_ids"], data["b_ids"])
            ]
            return CandidateSet(
                pairs,
                data["features"],
                [str(name) for name in data["feature_names"]],
            )
    except (KeyError, ValueError) as error:
        raise DataError(f"{path}: malformed candidate file "
                        f"({error})") from None


# ----------------------------------------------------------------------
# Run reports
# ----------------------------------------------------------------------

def result_report(result: CorleoneResult) -> dict[str, Any]:
    """A machine-readable summary of a pipeline run.

    Predicted matches are included as sorted (a_id, b_id) pairs;
    everything else is telemetry a monitoring system would want.
    """
    report: dict[str, Any] = {
        "format": "corleone-report",
        "version": FORMAT_VERSION,
        "stop_reason": result.stop_reason,
        "predicted_matches": [
            [pair.a_id, pair.b_id]
            for pair in sorted(result.predicted_matches)
        ],
        "cost": {
            "dollars": result.cost.dollars,
            "answers": result.cost.answers,
            "pairs_labeled": result.cost.pairs_labeled,
            "hits": result.cost.hits,
        },
        "blocking": {
            "triggered": result.blocker.triggered,
            "cartesian": result.blocker.cartesian,
            "umbrella": result.blocker.umbrella_size,
            "rules": [rule_to_dict(rule)
                      for rule in result.blocker.applied_rules],
        },
        "iterations": [
            {
                "index": record.index,
                "matcher_pairs_labeled": record.matcher_pairs_labeled,
                "matcher_stop_reason": record.matcher.stop_reason,
                "matcher_al_iterations": record.matcher.n_iterations,
                "confidence_history": record.matcher.confidence_history,
                "estimation_pairs_labeled": record.estimation_pairs_labeled,
                "reduction_pairs_labeled": record.reduction_pairs_labeled,
                "difficult_size": record.difficult_size,
                "estimate": None if record.estimate is None else {
                    "precision": record.estimate.precision,
                    "recall": record.estimate.recall,
                    "f1": record.estimate.f1,
                    "eps_precision": record.estimate.eps_precision,
                    "eps_recall": record.estimate.eps_recall,
                    "converged": record.estimate.converged,
                    "n_labeled": record.estimate.n_labeled,
                },
            }
            for record in result.iterations
        ],
    }
    if result.estimate is not None:
        report["estimate"] = {
            "precision": result.estimate.precision,
            "recall": result.estimate.recall,
            "f1": result.estimate.f1,
            "eps_precision": result.estimate.eps_precision,
            "eps_recall": result.estimate.eps_recall,
            "converged": result.estimate.converged,
        }
    return report


def save_report(result: CorleoneResult, path: str | Path) -> None:
    """Write a run report to a JSON file."""
    Path(path).write_text(json.dumps(result_report(result), indent=2))


def load_report(path: str | Path) -> dict[str, Any]:
    """Load and validate a report saved by :func:`save_report`."""
    return _load_document(path, "corleone-report")


def _load_document(path: str | Path, expected_format: str) -> dict[str, Any]:
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise DataError(f"{path}: invalid JSON ({error})") from None
    if document.get("format") != expected_format:
        raise DataError(
            f"{path}: expected a {expected_format} document, got "
            f"{document.get('format')!r}"
        )
    return document
