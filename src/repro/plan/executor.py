"""Fused evaluate-then-filter execution of compiled blocking plans.

:class:`PlanExecutor` is the plan-driven successor of the full-matrix
:class:`~repro.core.blocker.ChunkEvaluator` (which it subclasses, so
every executor that speaks the evaluator interface — streaming,
sharded, the fork prewarmer — can run either engine).  Instead of
materializing every needed feature for every pair of a chunk, it walks
the compiled :class:`~repro.plan.compiler.BlockingPlan` node by node,
keeping an *active row set* per node and computing each feature column
lazily, only at rows that are still undecided:

* a pair blocked by an earlier (cheaper) rule never reaches a later
  rule's kernels at all;
* within a rule, a pair failing an earlier (cheaper) predicate never
  reaches the later predicates' columns;
* a column computed once — for any subset of rows — is remembered, so
  overlapping rules share it instead of recomputing.

Bit-exactness: all batch kernels are element-wise per pair, blocking
is a monotone OR of AND-rules, and the NaN-never-blocks guard of the
chunk evaluator is a provable no-op (``Predicate.evaluate_column``
returns False on NaN absent ``nan_satisfies``, so no rule outside the
``nan_can_block`` case can block an all-missing row) — therefore the
survivor set is bit-identical to :func:`apply_rules_streaming` for any
rule order and any chunk geometry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.blocker import _STREAM_CHUNK, ChunkEvaluator
from ..data.pairs import Pair
from ..data.sampling import iter_cartesian
from ..data.table import Table
from ..features.library import FeatureLibrary
from ..obs.profiling import profile_section
from ..rules.rule import Rule
from .compiler import BlockingPlan, compile_blocking_plan


@dataclass
class PlanStats:
    """Deterministic work accounting for one plan-executed blocking run.

    Feature-*cell* counts (one cell = one feature value for one pair)
    are a pure function of tables, rules and plan order, so they are
    safe to fold into the checkpointed metrics registry — unlike cache
    hit/miss counts, which depend on process-lifetime cache warmth and
    stay out of it (see :func:`repro.features.batch.cache_stats`).
    """

    pairs: int = 0
    """Pairs scanned through the plan."""
    cells_computed: int = 0
    """Feature cells actually evaluated by a kernel."""
    needed_width: int = 0
    """Distinct feature columns the plan references."""

    @property
    def cells_budget(self) -> int:
        """Cells the full-matrix chunk evaluator would have computed."""
        return self.pairs * self.needed_width

    @property
    def cells_pruned(self) -> int:
        """Cells the fused evaluate-then-filter never had to compute."""
        return max(0, self.cells_budget - self.cells_computed)

    def merge_counts(self, pairs: int, cells_computed: int) -> None:
        """Fold one shard's (pairs, computed-cells) contribution in."""
        self.pairs += int(pairs)
        self.cells_computed += int(cells_computed)

    def as_dict(self) -> dict[str, int]:
        """JSON-compatible snapshot of the accounting figures."""
        return {
            "pairs": self.pairs,
            "needed_width": self.needed_width,
            "cells_computed": self.cells_computed,
            "cells_pruned": self.cells_pruned,
        }


class PlanExecutor(ChunkEvaluator):
    """A ChunkEvaluator that runs a compiled plan over each chunk.

    Construction compiles the plan from the rule set and cost model;
    the inherited surface (``needed``/``needed_features``/``cache_a``/
    ``cache_b``/``survivors``) is unchanged, so the sharded executor's
    fork prewarm and shard streaming work against it untouched.
    """

    def __init__(self, table_a: Table, table_b: Table,
                 rules: list[Rule], library: FeatureLibrary,
                 stats: PlanStats | None = None) -> None:
        super().__init__(table_a, table_b, rules, library)
        self.plan: BlockingPlan = compile_blocking_plan(rules, library)
        self._features_by_index = {
            index: feature
            for index, feature in zip(self.needed, self.needed_features)
        }
        self.stats = stats if stats is not None else PlanStats()
        self.stats.needed_width = len(self.needed)

    def blocked_mask(self, records_a: list, records_b: list) -> np.ndarray:
        """Plan-ordered, row-pruned equivalent of the chunk evaluator.

        The explicit all-missing guard of the base class is skipped:
        with ``nan_can_block`` False it is a provable no-op (see module
        docstring), and when some rule *can* block on NaN the guard
        never applied in the base class either.
        """
        n = len(records_a)
        blocked = np.zeros(n, dtype=bool)
        columns: dict[int, np.ndarray] = {}
        have: dict[int, np.ndarray] = {}
        for node in self.plan.nodes:
            rows = np.flatnonzero(~blocked)
            if rows.size == 0:
                break
            # Per-node sections are parameterized by plan position on
            # purpose: the plan shape varies per rule set, so the
            # closed SECTION_NAMES registry cannot enumerate them.
            # corlint: disable-next-line=CL017 — computed plan.node.N section
            with profile_section(f"plan.node.{node.position}"):
                for step in node.steps:
                    if rows.size == 0:
                        break
                    column = self._column(
                        step.predicate.feature_index, rows,
                        records_a, records_b, columns, have,
                    )
                    rows = rows[step.predicate.evaluate_column(column[rows])]
            if rows.size:
                blocked[rows] = True
        self.stats.pairs += n
        return blocked

    def _column(self, index: int, rows: np.ndarray, records_a: list,
                records_b: list, columns: dict[int, np.ndarray],
                have: dict[int, np.ndarray]) -> np.ndarray:
        """The feature column for ``index``, filled at least at ``rows``.

        Lazily allocated full-length so earlier fills are reusable;
        only rows without a value yet are handed to the kernel.  The
        kernels are element-wise per pair, so subset evaluation is
        bit-identical to the full pass.
        """
        column = columns.get(index)
        if column is None:
            column = np.full(len(records_a), np.nan)
            columns[index] = column
            have[index] = np.zeros(len(records_a), dtype=bool)
        pending = rows[~have[index][rows]]
        if pending.size:
            feature = self._features_by_index[index]
            column[pending] = feature.batch_value(
                [records_a[i] for i in pending],
                [records_b[i] for i in pending],
                self.cache_a, self.cache_b,
            )
            have[index][pending] = True
            self.stats.cells_computed += int(pending.size)
        return column


def apply_rules_plan(table_a: Table, table_b: Table, rules: list[Rule],
                     library: FeatureLibrary,
                     chunk_size: int = _STREAM_CHUNK,
                     stats: PlanStats | None = None) -> list[Pair]:
    """Apply blocking rules over A x B through the plan executor.

    The plan-engine twin of
    :func:`~repro.core.blocker.apply_rules_streaming`: same A x B
    stream order, same chunking, bit-identical survivors — only the
    per-chunk evaluation strategy differs.  ``stats`` (optional)
    accumulates the deterministic cell-count accounting.
    """
    evaluator = PlanExecutor(table_a, table_b, rules, library, stats=stats)
    survivors: list[Pair] = []
    chunk: list[Pair] = []

    def flush() -> None:
        if not chunk:
            return
        with profile_section("blocker.plan_flush"):
            survivors.extend(evaluator.survivors(chunk))
            chunk.clear()

    for pair in iter_cartesian(table_a, table_b):
        chunk.append(pair)
        if len(chunk) >= chunk_size:
            flush()
    flush()
    return survivors
