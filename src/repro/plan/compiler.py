"""Columnar plan compilation for blocking rules and pair features.

The blocker's output is a disjunction of conjunction-of-predicate
rules, and the feature library carries a per-measure cost model
(``features/library.py``).  Both stream paths so far evaluated them
naively: every needed feature for every pair, then every rule over the
full matrix.  This module compiles the same inputs into an ordered
execution plan instead:

* **cheapest-rule-first** — rules are ordered greedily by marginal
  feature cost (features an earlier rule already materialized are
  free), so the cheap, high-coverage rules run first and shrink the
  active pair set before any expensive kernel fires;
* **predicate pushdown** — within a rule, predicates are ordered by
  ascending feature cost (shared columns first), and each predicate
  filters the candidate rows handed to the next one;
* **fused evaluate-then-filter** — the executor
  (:mod:`repro.plan.executor`) computes a feature column only at the
  rows that are still undecided, so losing pairs never reach later,
  more expensive kernels.

Correctness rests on two structural facts, both load-bearing for the
bit-exactness contract: blocking is a *monotone* OR over rules and AND
within a rule (evaluation order cannot change the outcome), and every
batch kernel is element-wise per pair ("bit-exact regardless of chunk
boundaries" — the documented :mod:`repro.features.batch` contract), so
evaluating a feature on a row subset yields the exact values the full
pass would have produced.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..features.library import Feature, FeatureLibrary
from ..rules.predicates import Predicate
from ..rules.rule import Rule


@dataclass(frozen=True)
class PredicateStep:
    """One pushed-down predicate: project a column, filter the rows."""

    predicate: Predicate
    cost: float
    """Compile-time marginal cost: 0.0 when the column is shared."""
    shared: bool
    """True when an earlier step of the plan already pays for the column."""


@dataclass(frozen=True)
class RuleNode:
    """One rule of the disjunction, with its ordered predicate steps."""

    rule: Rule
    position: int
    """Execution position in the compiled plan (0-based)."""
    source_index: int
    """The rule's index in the input rule list (for provenance)."""
    steps: tuple[PredicateStep, ...]
    marginal_cost: float
    """Summed cost of the features this node newly materializes."""


@dataclass(frozen=True)
class BlockingPlan:
    """A compiled blocking plan: ordered rule nodes over shared columns."""

    nodes: tuple[RuleNode, ...]
    needed: tuple[int, ...]
    """Sorted union of feature indices any node touches."""
    total_cost: float
    """Worst-case cost: every needed column computed exactly once."""

    def describe(self) -> str:
        """A compact human-readable rendering (for logs and docs)."""
        lines = []
        for node in self.nodes:
            steps = ", ".join(
                f"{step.predicate}"
                + (" [shared]" if step.shared else f" [{step.cost:g}]")
                for step in node.steps
            )
            lines.append(
                f"node {node.position} (rule {node.source_index}, "
                f"marginal {node.marginal_cost:g}): {steps}"
            )
        return "\n".join(lines)


def compile_blocking_plan(rules: list[Rule],
                          library: FeatureLibrary) -> BlockingPlan:
    """Order rules cheapest-marginal-first and push predicates down.

    Greedy: repeatedly pick the remaining rule whose *marginal* cost —
    the summed cost of features no earlier node materialized — is
    smallest, tie-broken by input position (stable, deterministic).
    Within a rule, predicate steps are grouped by feature and ordered
    shared-columns-first then by ascending feature cost; a predicate
    whose column an earlier step (of any node) already pays for is
    marked ``shared`` with marginal cost 0.
    """
    features = library.features
    computed: set[int] = set()
    remaining = list(enumerate(rules))
    nodes: list[RuleNode] = []
    while remaining:
        best_key: tuple[float, int] | None = None
        best_slot = 0
        for slot, (source_index, rule) in enumerate(remaining):
            marginal = sum(
                features[index].cost
                for index in rule.feature_indices
                if index not in computed
            )
            key = (marginal, source_index)
            if best_key is None or key < best_key:
                best_key, best_slot = key, slot
        source_index, rule = remaining.pop(best_slot)
        steps = _order_steps(rule, features, computed)
        nodes.append(RuleNode(
            rule=rule,
            position=len(nodes),
            source_index=source_index,
            steps=steps,
            marginal_cost=best_key[0],
        ))
        computed.update(rule.feature_indices)
    needed = tuple(sorted(computed))
    return BlockingPlan(
        nodes=tuple(nodes),
        needed=needed,
        total_cost=sum(features[index].cost for index in needed),
    )


def _order_steps(rule: Rule, features: list[Feature],
                 computed: set[int]) -> tuple[PredicateStep, ...]:
    """Push a rule's predicates down in ascending-cost order.

    Feature groups already materialized by earlier nodes sort first
    (their marginal cost is zero); the rest sort by ascending feature
    cost, then feature index for determinism.  Multiple predicates on
    the same feature stay adjacent in their original relative order —
    only the first one pays the column's cost.
    """
    def group_key(index: int) -> tuple[int, float, int]:
        already = index in computed
        return (0 if already else 1,
                0.0 if already else features[index].cost, index)

    groups = sorted({p.feature_index for p in rule.predicates},
                    key=group_key)
    steps: list[PredicateStep] = []
    seen = set(computed)
    for index in groups:
        for predicate in rule.predicates:
            if predicate.feature_index != index:
                continue
            shared = index in seen
            steps.append(PredicateStep(
                predicate=predicate,
                cost=0.0 if shared else features[index].cost,
                shared=shared,
            ))
            seen.add(index)
    return tuple(steps)


@dataclass(frozen=True)
class VectorizeStep:
    """One feature column of the vectorization plan."""

    column: int
    """Destination column in the (pairs x features) output matrix."""
    feature: Feature


@dataclass(frozen=True)
class VectorizePlan:
    """Column evaluation order for full feature-matrix construction.

    Vectorization computes *every* column (the matcher needs the full
    matrix), so there is nothing to prune — the win is ordering:
    columns are grouped by attribute so all measures over one attribute
    run back-to-back against warm prepared-column caches, cheapest
    measure first (the cheap kernel's accessor materialization warms
    the cache the expensive kernels then reuse).
    """

    steps: tuple[VectorizeStep, ...]


def compile_vectorize_plan(library: FeatureLibrary) -> VectorizePlan:
    """Group the library's columns by attribute, ascending cost within."""
    order: list[str] = []
    by_attribute: dict[str, list[int]] = {}
    for column, feature in enumerate(library.features):
        if feature.attribute not in by_attribute:
            order.append(feature.attribute)
            by_attribute[feature.attribute] = []
        by_attribute[feature.attribute].append(column)
    steps: list[VectorizeStep] = []
    for attribute in order:
        columns = sorted(
            by_attribute[attribute],
            key=lambda column: (library.features[column].cost, column),
        )
        steps.extend(
            VectorizeStep(column=column, feature=library.features[column])
            for column in columns
        )
    return VectorizePlan(steps=tuple(steps))
