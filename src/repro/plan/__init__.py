"""repro.plan — the columnar plan compiler and its execution engine.

Compiles conjunction-of-predicate blocking rules plus the feature
library's cost model into a single ordered execution plan (predicate
pushdown, cheapest-rule-first, shared columns), executes it with fused
evaluate-then-filter so losing pairs never reach expensive kernels,
and spills oversized candidate/feature matrices to memory-mapped
``.npy`` files under the run directory.  See "The plan compiler" in
docs/architecture.md.
"""

from .compiler import (
    BlockingPlan,
    PredicateStep,
    RuleNode,
    VectorizePlan,
    VectorizeStep,
    compile_blocking_plan,
    compile_vectorize_plan,
)
from .executor import PlanExecutor, PlanStats, apply_rules_plan
from .spill import (
    SPILL_DIR_NAME,
    SpillManager,
    open_readonly,
    spill_path,
)

__all__ = [
    "BlockingPlan",
    "PlanExecutor",
    "PlanStats",
    "PredicateStep",
    "RuleNode",
    "SPILL_DIR_NAME",
    "SpillManager",
    "VectorizePlan",
    "VectorizeStep",
    "apply_rules_plan",
    "compile_blocking_plan",
    "compile_vectorize_plan",
    "open_readonly",
    "spill_path",
]
