"""Disk-backed candidate/feature matrices: the spill-file lifecycle.

Large A x B workloads produce feature matrices that outgrow RAM.  When
:class:`~repro.config.PlanConfig` sets a spill threshold, the engine
allocates those matrices as memory-mapped ``.npy`` files under the run
directory (``<run_dir>/spill/``) instead of heap arrays: the OS pages
the working set, peak RSS stays bounded, and — because the file *is*
the canonical ``.npy`` serialization — checkpoints can reference the
spill file instead of re-serializing the matrix, keeping kill/resume
bit-identical (``repro.persistence`` reopens it read-only on load).

Ownership contract (enforced by corlint rule CL015): every writable
memmap in the tree is created here, through :class:`SpillManager`,
which tracks the handle, flushes it before any checkpoint references
the file, and releases it on ``close()``; read-side handles come from
:func:`open_readonly`.  Spill files live under the run directory, so
the run directory's cleanup (deleting the directory) is their cleanup
— nothing outlives the run.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

SPILL_DIR_NAME = "spill"
"""Subdirectory of the run directory holding spill ``.npy`` files."""


class SpillManager:
    """Allocates matrices on heap or disk by size, and owns the handles.

    ``threshold_bytes <= 0`` disables spilling (every allocation is a
    normal heap array).  Otherwise any allocation of at least that many
    bytes becomes a writable ``np.lib.format.open_memmap`` under
    ``directory``, tracked so :meth:`flush` / :meth:`close` can make
    the bytes durable before a checkpoint references the file.
    """

    def __init__(self, directory: Path | str,
                 threshold_bytes: int = 0) -> None:
        self.directory = Path(directory)
        self.threshold_bytes = int(threshold_bytes)
        self._spilled: dict[str, np.ndarray] = {}

    @staticmethod
    def matrix_bytes(shape: tuple[int, ...],
                     dtype=np.float64) -> int:
        """Heap footprint of an array before deciding where it lives."""
        cells = 1
        for extent in shape:
            cells *= int(extent)
        return cells * np.dtype(dtype).itemsize

    def allocate(self, name: str, shape: tuple[int, ...],
                 dtype=np.float64) -> np.ndarray:
        """A writable array of ``shape``: heap below threshold, else disk."""
        nbytes = self.matrix_bytes(shape, dtype)
        if self.threshold_bytes <= 0 or nbytes < self.threshold_bytes:
            return np.empty(shape, dtype=dtype)
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / f"{name}.npy"
        array = np.lib.format.open_memmap(
            path, mode="w+", dtype=np.dtype(dtype), shape=shape
        )
        self._spilled[name] = array
        return array

    @property
    def bytes_spilled(self) -> int:
        """Total bytes currently backed by spill files."""
        return sum(array.nbytes for array in self._spilled.values())

    def manifest(self) -> dict[str, str]:
        """Allocation name -> spill filename, for telemetry/debugging."""
        return {
            name: Path(array.filename).name
            for name, array in self._spilled.items()
        }

    def flush(self) -> None:
        """Force every spilled array's bytes to disk.

        Must run before a checkpoint stores a reference to a spill
        file — the file on disk is then byte-complete even if the
        process dies immediately after.
        """
        for array in self._spilled.values():
            array.flush()

    def close(self) -> None:
        """Flush and release every tracked handle.

        Views handed out by :meth:`allocate` stay valid while their
        holders keep them alive (numpy memmaps close with their last
        reference); the manager simply stops owning them.
        """
        self.flush()
        self._spilled.clear()


def spill_path(array: np.ndarray) -> Path | None:
    """The backing ``.npy`` file of an array, chasing the view chain.

    ``CandidateSet`` wraps matrices in ``np.asarray`` views, so the
    memmap (which carries ``filename``) may sit one or more ``.base``
    hops below the array a caller holds.  Returns None for pure heap
    arrays.
    """
    node = array
    while node is not None:
        filename = getattr(node, "filename", None)
        if filename:
            return Path(filename)
        node = getattr(node, "base", None)
    return None


def open_readonly(path: Path | str,
                  manifest_root: Path | str | None = None) -> np.ndarray:
    """Reopen a spill ``.npy`` file as a read-only memmap.

    The read side of the lifecycle: resume paths map the checkpointed
    spill file instead of loading it into RAM.  Read-only maps carry no
    dirty pages, so they need no flush; the handle closes with the last
    array reference and the file itself belongs to the run directory.

    ``manifest_root`` (normally the run directory) enables content
    verification: when the storage manifest there records a sha256 for
    this file, the on-disk bytes are hashed and compared *before*
    mapping — shape/dtype fingerprints alone cannot catch a flipped
    bit inside the matrix, which would otherwise feed silently corrupt
    features to a resumed run.  A mismatch raises a typed
    :class:`~repro.exceptions.DataError` naming the file and both
    checksums; a file the manifest never recorded (pre-durability run
    directories) is mapped unverified, as before.
    """
    from ..exceptions import DataError
    from ..storage.recovery import verify_artifact

    path = Path(path)
    if manifest_root is not None:
        verdict, actual, expected = verify_artifact(manifest_root, path)
        if verdict is False:
            raise DataError(
                f"{path}: spill file is corrupt — sha256 {actual} does "
                f"not match the manifest's recorded {expected}")
    return np.load(path, mmap_mode="r")
