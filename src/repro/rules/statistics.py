"""Sampling statistics: confidence intervals with finite-population
correction (Wasserman [32]), used by rule evaluation (§4.2) and accuracy
estimation (§6, Eqs. 2-3).

The error margin for an estimated proportion P from n of m population
items is

    epsilon = Z_{1-delta/2} * sqrt( (P (1-P) / n) * ((m - n) / (m - 1)) )

and :func:`required_sample_size` inverts the formula to answer "how many
labels until the margin is at most epsilon_max?".
"""

from __future__ import annotations

import math

from ..exceptions import EstimationError


def z_value(confidence: float) -> float:
    """The (1 - delta/2) standard-normal percentile for a confidence level.

    E.g. ``z_value(0.95) == 1.959...``.  Computed from the exact inverse
    error function relationship Z = sqrt(2) * erfinv(confidence), with
    erfinv evaluated by Newton refinement of an initial rational
    approximation — accurate to ~1e-12 without a SciPy dependency.
    """
    if not 0.0 < confidence < 1.0:
        raise EstimationError("confidence must be in (0, 1)")
    return math.sqrt(2.0) * _erfinv(confidence)


def _erfinv(y: float) -> float:
    """Inverse error function on (-1, 1)."""
    if not -1.0 < y < 1.0:
        raise EstimationError("erfinv argument must be in (-1, 1)")
    # corlint: disable-next-line=CL004 — exact-zero division guard
    if y == 0.0:
        return 0.0
    # Initial guess: Winitzki's approximation.
    a = 0.147
    ln_term = math.log(1.0 - y * y)
    first = 2.0 / (math.pi * a) + ln_term / 2.0
    guess = math.copysign(
        math.sqrt(math.sqrt(first * first - ln_term / a) - first), y
    )
    # Newton iterations: f(x) = erf(x) - y, f'(x) = 2/sqrt(pi) e^{-x^2}.
    x = guess
    two_over_sqrt_pi = 2.0 / math.sqrt(math.pi)
    for _ in range(4):
        error = math.erf(x) - y
        derivative = two_over_sqrt_pi * math.exp(-x * x)
        # corlint: disable-next-line=CL004 — exact-zero Newton-step guard
        if derivative == 0.0:
            break
        x -= error / derivative
    return x


def fpc_error_margin(p: float, n: int, population: int,
                     confidence: float = 0.95) -> float:
    """Margin of error for proportion ``p`` from ``n`` of ``population``.

    Returns 0.0 when the whole population was sampled (n >= population) or
    the population has a single member.  Raises for a non-positive sample.
    """
    if n <= 0:
        raise EstimationError("sample size must be positive")
    if population < n:
        raise EstimationError("population must be >= sample size")
    if not 0.0 <= p <= 1.0:
        raise EstimationError("p must be in [0, 1]")
    if population <= 1 or n == population:
        return 0.0
    fpc = (population - n) / (population - 1)
    return z_value(confidence) * math.sqrt(p * (1.0 - p) / n * fpc)


def proportion_interval(p: float, n: int, population: int,
                        confidence: float = 0.95) -> tuple[float, float]:
    """The confidence interval [P - eps, P + eps], clipped to [0, 1]."""
    eps = fpc_error_margin(p, n, population, confidence)
    return max(0.0, p - eps), min(1.0, p + eps)


def required_sample_size(p: float, epsilon: float, population: int,
                         confidence: float = 0.95) -> int:
    """Smallest n with margin <= epsilon for an anticipated proportion p.

    Uses the worst case p=0.5 if ``p`` is None-like (call with 0.5).  The
    closed-form solution of the FPC margin equation:

        n0 = Z^2 p (1-p) / epsilon^2          (infinite population)
        n  = n0 / (1 + (n0 - 1) / population) (finite correction)
    """
    if not 0.0 <= p <= 1.0:
        raise EstimationError("p must be in [0, 1]")
    if epsilon <= 0.0:
        raise EstimationError("epsilon must be positive")
    if population <= 0:
        raise EstimationError("population must be positive")
    variance = p * (1.0 - p)
    # corlint: disable-next-line=CL004 — exact-zero variance guard
    if variance == 0.0:
        return 1
    z = z_value(confidence)
    n0 = z * z * variance / (epsilon * epsilon)
    n = n0 * population / (n0 + population - 1.0)
    # The tolerance keeps an exactly-invertible epsilon from being bumped
    # one unit up by floating-point noise before the ceiling.
    return min(population, max(1, math.ceil(n - 1e-9)))
