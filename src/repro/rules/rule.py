"""Rules: conjunctions of predicates that predict match / no-match.

A *negative* rule (``predicts_match=False``) identifies pairs that do not
match — the blocking and reduction rules of Sections 4 and 6.  A
*positive* rule identifies matches — used by the difficult-pairs locator
of Section 7.  Applying a rule to a feature matrix yields its *coverage*:
the rows for which every predicate holds.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from ..exceptions import RuleError
from .predicates import Predicate


@dataclass(frozen=True)
class RuleStats:
    """Coverage/precision statistics of a rule over a labelled sample."""

    coverage: int
    """|cov(R, S)|: number of sample rows the rule covers."""

    precision_upper_bound: float
    """Upper bound on prec(R, S) from crowd-known contrary labels (§4.2)."""


class Rule:
    """An immutable conjunction of predicates with a predicted label."""

    def __init__(self, predicates: Sequence[Predicate], predicts_match: bool,
                 cost: float = 0.0, source: str = "") -> None:
        if not predicates:
            raise RuleError("a rule needs at least one predicate")
        self.predicates = tuple(predicates)
        self.predicts_match = bool(predicts_match)
        self.cost = float(cost)
        self.source = source
        self._signature = (
            self.predicts_match,
            tuple(sorted(
                (p.feature_index, p.le, p.threshold, p.nan_satisfies)
                for p in self.predicates
            )),
        )

    @property
    def is_negative(self) -> bool:
        """True for blocking/reduction rules (predict "no match")."""
        return not self.predicts_match

    @property
    def feature_indices(self) -> frozenset[int]:
        """Distinct features this rule reads (cost = sum of their costs)."""
        return frozenset(p.feature_index for p in self.predicates)

    def applies(self, features: np.ndarray) -> np.ndarray:
        """Boolean mask of rows covered by this rule."""
        features = np.asarray(features, dtype=np.float64)
        mask = np.ones(features.shape[0], dtype=bool)
        for predicate in self.predicates:
            mask &= predicate.evaluate(features)
            if not mask.any():
                break
        return mask

    def coverage_indices(self, features: np.ndarray) -> np.ndarray:
        """Row indices of cov(R, S)."""
        return np.flatnonzero(self.applies(features))

    def stats(self, features: np.ndarray,
              contrary_rows: Iterable[int]) -> RuleStats:
        """Coverage and the §4.2 precision upper bound.

        ``contrary_rows`` are sample rows whose crowd label contradicts
        this rule's prediction (for a negative rule: the crowd-positive
        rows, the set T of the paper).
        """
        mask = self.applies(features)
        covered = int(mask.sum())
        if covered == 0:
            return RuleStats(coverage=0, precision_upper_bound=0.0)
        contrary_in_cov = sum(
            1 for row in contrary_rows if 0 <= row < mask.size and mask[row]
        )
        bound = (covered - contrary_in_cov) / covered
        return RuleStats(coverage=covered, precision_upper_bound=bound)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rule):
            return NotImplemented
        return self._signature == other._signature

    def __hash__(self) -> int:
        return hash(self._signature)

    def __str__(self) -> str:
        verdict = "MATCH" if self.predicts_match else "NO MATCH"
        body = " AND ".join(str(p) for p in self.predicates)
        return f"IF {body} THEN {verdict}"

    def __repr__(self) -> str:
        return f"Rule({str(self)!r})"


def simplify_predicates(predicates: Sequence[Predicate]) -> tuple[Predicate, ...]:
    """Merge redundant conditions on the same feature and direction.

    A tree path can test the same feature repeatedly (e.g. ``f <= 0.8``
    then ``f <= 0.5``); only the tightest bound matters.  NaN routing is
    AND-ed: the merged predicate admits NaN only if every merged condition
    did.
    """
    by_key: dict[tuple[int, bool], Predicate] = {}
    order: list[tuple[int, bool]] = []
    for predicate in predicates:
        key = (predicate.feature_index, predicate.le)
        existing = by_key.get(key)
        if existing is None:
            by_key[key] = predicate
            order.append(key)
            continue
        if predicate.le:
            threshold = min(existing.threshold, predicate.threshold)
        else:
            threshold = max(existing.threshold, predicate.threshold)
        by_key[key] = Predicate(
            feature_index=existing.feature_index,
            feature_name=existing.feature_name,
            le=existing.le,
            threshold=threshold,
            nan_satisfies=existing.nan_satisfies and predicate.nan_satisfies,
        )
    return tuple(by_key[key] for key in order)
