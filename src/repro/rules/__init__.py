"""Machine-readable rules extracted from random forests.

Blocking rules (Section 4), reduction rules (Section 6) and the locator's
positive/negative rules (Section 7) are all the same object: a conjunction
of threshold predicates over features, extracted from a root-to-leaf tree
path, that predicts "match" or "no match" for any pair it covers.
"""

from .predicates import Predicate
from .rule import Rule, RuleStats
from .extraction import extract_rules, extract_negative_rules, extract_positive_rules
from .statistics import (
    z_value,
    fpc_error_margin,
    required_sample_size,
    proportion_interval,
)
from .selection import RankedRule, select_top_k
from .evaluation import RuleEvaluation, evaluate_rules

__all__ = [
    "Predicate",
    "Rule",
    "RuleStats",
    "extract_rules",
    "extract_negative_rules",
    "extract_positive_rules",
    "z_value",
    "fpc_error_margin",
    "required_sample_size",
    "proportion_interval",
    "RankedRule",
    "select_top_k",
    "RuleEvaluation",
    "evaluate_rules",
]
