"""Extracting candidate rules from a random forest (Figure 2).

Every root-to-leaf path of every tree is a conjunction of threshold
conditions; a path ending in a "no" leaf is a candidate negative
(blocking/reduction) rule, a path ending in a "yes" leaf a candidate
positive rule.  Paths are simplified (redundant conditions on a feature
merged) and de-duplicated across trees.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..exceptions import RuleError
from ..forest.forest import RandomForest
from .predicates import Predicate
from .rule import Rule, simplify_predicates


def extract_rules(forest: RandomForest, feature_names: Sequence[str],
                  feature_costs: Sequence[float] | None = None,
                  predicts_match: bool | None = None) -> list[Rule]:
    """All candidate rules from ``forest``'s tree paths.

    ``predicts_match`` filters to negative rules (False), positive rules
    (True), or both (None).  ``feature_costs`` gives per-feature compute
    costs; a rule's cost is the sum over its *distinct* features (§4.3's
    tuple pair cost).  Duplicates (same predicate set and label, possibly
    from different trees) are removed, keeping the first occurrence.
    """
    n_features = forest.n_features_ or 0
    if len(feature_names) != n_features:
        raise RuleError(
            f"forest has {n_features} features but "
            f"{len(feature_names)} names were given"
        )
    if feature_costs is not None and len(feature_costs) != n_features:
        raise RuleError("feature_costs length must match feature count")

    rules: list[Rule] = []
    seen: set[Rule] = set()
    for tree_index, tree in enumerate(forest.trees):
        for path in tree.paths():
            if predicts_match is not None and path.label != predicts_match:
                continue
            predicates = simplify_predicates([
                Predicate(
                    feature_index=c.feature,
                    feature_name=feature_names[c.feature],
                    le=c.le,
                    threshold=c.threshold,
                    nan_satisfies=c.nan_satisfies,
                )
                for c in path.conditions
            ])
            if not predicates:
                # A root-only leaf (unsplit tree) yields no conditions and
                # therefore no usable rule.
                continue
            rule = Rule(
                predicates,
                predicts_match=path.label,
                cost=_rule_cost(predicates, feature_costs),
                source=f"tree{tree_index}",
            )
            if rule not in seen:
                seen.add(rule)
                rules.append(rule)
    return rules


def extract_negative_rules(forest: RandomForest, feature_names: Sequence[str],
                           feature_costs: Sequence[float] | None = None) -> list[Rule]:
    """Candidate blocking/reduction rules: paths to "no" leaves."""
    return extract_rules(forest, feature_names, feature_costs,
                         predicts_match=False)


def extract_positive_rules(forest: RandomForest, feature_names: Sequence[str],
                           feature_costs: Sequence[float] | None = None) -> list[Rule]:
    """Candidate positive rules: paths to "yes" leaves (Section 7)."""
    return extract_rules(forest, feature_names, feature_costs,
                         predicts_match=True)


def _rule_cost(predicates: Sequence[Predicate],
               feature_costs: Sequence[float] | None) -> float:
    if feature_costs is None:
        return float(len({p.feature_index for p in predicates}))
    return sum(
        feature_costs[index]
        for index in {p.feature_index for p in predicates}
    )
