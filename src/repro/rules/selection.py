"""Top-k rule selection by precision upper bound (§4.2, step 1).

Evaluating every extracted rule with the crowd would be prohibitively
expensive (the paper saw up to 8943 candidates), so only the k most
promising rules are forwarded: ranked by the upper bound on prec(R, S)
computable from the crowd labels already collected during active
learning, breaking ties by coverage.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from .rule import Rule


@dataclass(frozen=True)
class RankedRule:
    """A rule with the sample statistics used to rank it."""

    rule: Rule
    coverage: int
    precision_upper_bound: float


def select_top_k(rules: Sequence[Rule], features: np.ndarray,
                 known_labels: dict[int, bool], k: int,
                 min_coverage: int = 1) -> list[RankedRule]:
    """Pick the k most promising rules over sample feature matrix ``S``.

    ``known_labels`` maps sample row index -> crowd label for the examples
    labelled during active learning.  For each rule, rows whose known
    label *contradicts* the rule's prediction lower the precision upper
    bound:  bound = |cov - contrary| / |cov| (for negative rules the
    contrary set is T, the crowd-positives, exactly as in the paper).

    Rules covering fewer than ``min_coverage`` rows are skipped (a rule
    that never fires on the sample cannot be assessed or useful).
    """
    if k < 1:
        return []
    ranked: list[RankedRule] = []
    for rule in rules:
        # A row contradicts a rule when its crowd label differs from the
        # rule's prediction (for negative rules: the crowd-positives T).
        contrary_rows = [
            row for row, label in known_labels.items()
            if label != rule.predicts_match
        ]
        stats = rule.stats(features, contrary_rows)
        if stats.coverage < min_coverage:
            continue
        ranked.append(RankedRule(
            rule=rule,
            coverage=stats.coverage,
            precision_upper_bound=stats.precision_upper_bound,
        ))
    ranked.sort(
        key=lambda r: (r.precision_upper_bound, r.coverage), reverse=True
    )
    return ranked[:k]
