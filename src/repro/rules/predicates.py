"""Threshold predicates over pair features.

A predicate is one condition of a rule: ``feature <= threshold`` or
``feature > threshold``, with explicit routing for missing (NaN) values so
that a rule extracted from a tree path behaves exactly like the tree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import RuleError


@dataclass(frozen=True)
class Predicate:
    """One threshold test on a single feature column."""

    feature_index: int
    feature_name: str
    le: bool
    """True for ``<= threshold``, False for ``> threshold``."""
    threshold: float
    nan_satisfies: bool = False
    """Whether a missing feature value satisfies this predicate."""

    def __post_init__(self) -> None:
        if self.feature_index < 0:
            raise RuleError("feature_index must be >= 0")
        if not np.isfinite(self.threshold):
            raise RuleError("threshold must be finite")

    def evaluate(self, features: np.ndarray) -> np.ndarray:
        """Boolean satisfaction mask over the rows of ``features``."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise RuleError("features must be a 2-d matrix")
        if self.feature_index >= features.shape[1]:
            raise RuleError(
                f"predicate refers to feature {self.feature_index} but the "
                f"matrix has only {features.shape[1]} columns"
            )
        return self.evaluate_column(features[:, self.feature_index])

    def evaluate_column(self, column: np.ndarray) -> np.ndarray:
        """Satisfaction mask over one already-projected feature column.

        The columnar form of :meth:`evaluate`: the plan executor keeps
        per-feature columns rather than a full-width matrix, so it
        hands the projected column straight in.  Missing values (NaN)
        evaluate falsy unless ``nan_satisfies`` — both comparison
        directions are NaN-false in IEEE terms, and the explicit masks
        keep the contract independent of that detail.
        """
        nan = np.isnan(column)
        if self.le:
            satisfied = column <= self.threshold
        else:
            satisfied = column > self.threshold
        if self.nan_satisfies:
            return satisfied | nan
        return satisfied & ~nan

    def implies(self, other: "Predicate") -> bool:
        """True if any value satisfying self also satisfies ``other``.

        Only defined for predicates on the same feature and direction;
        used to drop redundant conditions when simplifying a rule.
        """
        if (self.feature_index != other.feature_index
                or self.le != other.le):
            return False
        if self.nan_satisfies and not other.nan_satisfies:
            return False
        if self.le:
            return self.threshold <= other.threshold
        return self.threshold >= other.threshold

    def __str__(self) -> str:
        op = "<=" if self.le else ">"
        return f"{self.feature_name} {op} {self.threshold:.4g}"
