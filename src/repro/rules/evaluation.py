"""Crowd-based rule evaluation (§4.2, step 2 — joint variant).

Each candidate rule's precision over the sample S is estimated by labelling
randomly drawn examples from its coverage.  All rules are evaluated
*jointly*: each round draws a batch from the union of the coverages of the
still-undecided rules, so one labelled example can advance the estimate of
every rule that covers it.  A rule is kept once its estimated precision P
meets the threshold with a tight-enough margin, and dropped as soon as it
provably (or too-expensively) cannot.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..crowd.aggregation import VoteScheme
from ..crowd.service import LabelingService
from ..exceptions import BudgetExhaustedError
from ..data.pairs import CandidateSet
from .rule import Rule
from .statistics import fpc_error_margin


@dataclass(frozen=True)
class RuleEvaluation:
    """The outcome of evaluating one rule with the crowd."""

    rule: Rule
    accepted: bool
    precision: float
    """Estimated precision P = consistent / labelled over the coverage."""
    error_margin: float
    coverage: int
    n_labeled: int
    reason: str
    """Why evaluation stopped: accepted / bound_below_min / margin_met_low /
    exhausted / empty_coverage / label_cap."""


def evaluate_rules(rules: Sequence[Rule], sample: CandidateSet,
                   service: LabelingService, rng: np.random.Generator,
                   batch_size: int = 20, min_precision: float = 0.95,
                   max_error_margin: float = 0.05,
                   confidence: float = 0.95,
                   max_labels_per_rule: int = 200,
                   scheme: VoteScheme = VoteScheme.ASYMMETRIC) -> list[RuleEvaluation]:
    """Jointly evaluate ``rules`` over ``sample`` using the crowd.

    Returns one :class:`RuleEvaluation` per input rule, in input order.
    Rule evaluation is label-sensitive, so the asymmetric strong-majority
    scheme is the default (Section 8).
    """
    features = sample.features
    coverages = [rule.coverage_indices(features) for rule in rules]
    coverage_sets = [set(int(i) for i in cov) for cov in coverages]

    # Row -> crowd label for every sample row labelled so far.  Seed with
    # what the cache knows *at the required strength* (§8 item 3: reuse
    # only labels "labeled the way we want") — seeding weak 2+1 positives
    # here would let a mislabeled training example circularly certify the
    # very rule the forest overfit to it.
    row_labels: dict[int, bool] = {}
    cached = service.reliable_labels(scheme)
    for row, pair in enumerate(sample.pairs):
        if pair in cached:
            row_labels[row] = cached[pair]

    results: dict[int, RuleEvaluation] = {}
    undecided = [
        i for i in range(len(rules)) if not _decide_empty(i, rules, coverage_sets, results)
    ]
    labels_spent = {i: 0 for i in undecided}

    while undecided:
        # Re-assess every undecided rule against the labels known so far.
        still: list[int] = []
        for i in undecided:
            verdict = _assess(
                rules[i], coverage_sets[i], row_labels, labels_spent[i],
                min_precision, max_error_margin, confidence,
                max_labels_per_rule,
            )
            if verdict is None:
                still.append(i)
            else:
                results[i] = verdict
        undecided = still
        if not undecided:
            break

        pool = sorted(
            set().union(*(coverage_sets[i] for i in undecided))
            - row_labels.keys()
        )
        if not pool:
            # Every coverage row is labelled; force final decisions.
            for i in undecided:
                results[i] = _final_decision(
                    rules[i], coverage_sets[i], row_labels,
                    min_precision, confidence, "exhausted",
                )
            break

        take = min(batch_size, len(pool))
        chosen = rng.choice(len(pool), size=take, replace=False)
        batch_rows = [pool[int(c)] for c in chosen]
        try:
            labeled = service.label_all(
                [sample.pairs[row] for row in batch_rows], scheme=scheme
            )
        except BudgetExhaustedError:
            # Out of money: decide the remaining rules on current
            # evidence rather than aborting the whole run.
            for i in undecided:
                results[i] = _final_decision(
                    rules[i], coverage_sets[i], row_labels,
                    min_precision, confidence, "budget_exhausted",
                )
            break
        for row in batch_rows:
            row_labels[row] = labeled[sample.pairs[row]]
            for i in undecided:
                if row in coverage_sets[i]:
                    labels_spent[i] += 1

    return [results[i] for i in range(len(rules))]


def _decide_empty(i: int, rules: Sequence[Rule],
                  coverage_sets: Sequence[set[int]],
                  results: dict[int, RuleEvaluation]) -> bool:
    """Immediately reject rules with empty coverage; returns True if decided."""
    if coverage_sets[i]:
        return False
    results[i] = RuleEvaluation(
        rule=rules[i], accepted=False, precision=0.0, error_margin=0.0,
        coverage=0, n_labeled=0, reason="empty_coverage",
    )
    return True


def _rule_precision(rule: Rule, coverage: set[int],
                    row_labels: dict[int, bool]) -> tuple[float, int]:
    """(P, n): estimated precision from the labelled coverage rows."""
    labelled = [row for row in coverage if row in row_labels]
    n = len(labelled)
    if n == 0:
        return 0.0, 0
    consistent = sum(
        1 for row in labelled if row_labels[row] == rule.predicts_match
    )
    return consistent / n, n


def _assess(rule: Rule, coverage: set[int], row_labels: dict[int, bool],
            labels_spent: int, min_precision: float, max_error_margin: float,
            confidence: float, max_labels_per_rule: int) -> RuleEvaluation | None:
    """Apply the paper's keep/drop conditions; None means keep sampling."""
    p, n = _rule_precision(rule, coverage, row_labels)
    if n == 0:
        return None
    m = len(coverage)
    eps = fpc_error_margin(p, n, m, confidence)

    if p >= min_precision and eps <= max_error_margin:
        return RuleEvaluation(rule, True, p, eps, m, n, "accepted")
    if p + eps < min_precision:
        return RuleEvaluation(rule, False, p, eps, m, n, "bound_below_min")
    if eps <= max_error_margin and p < min_precision:
        return RuleEvaluation(rule, False, p, eps, m, n, "margin_met_low")
    if labels_spent >= max_labels_per_rule:
        accepted = p >= min_precision
        return RuleEvaluation(rule, accepted, p, eps, m, n, "label_cap")
    return None


def _final_decision(rule: Rule, coverage: set[int],
                    row_labels: dict[int, bool], min_precision: float,
                    confidence: float, reason: str) -> RuleEvaluation:
    """Decide a rule once no more labels can be drawn from its coverage."""
    p, n = _rule_precision(rule, coverage, row_labels)
    m = len(coverage)
    eps = fpc_error_margin(p, n, m, confidence) if n else 0.0
    return RuleEvaluation(rule, n > 0 and p >= min_precision, p, eps, m, n,
                          reason)
