"""Command-line interface: ``python -m repro <command>``.

Three commands cover the library's main entry points:

* ``datasets`` — list / generate the synthetic datasets and write them
  (plus gold matches) to CSV, so external tools can consume them.
* ``match`` — run the hands-off pipeline on two CSV tables with a
  simulated crowd driven by a gold-matches CSV (offline stand-in for a
  real crowd), writing predicted matches and a JSON run report.
* ``bench-info`` — print the experiment index (which benchmark
  regenerates which table/figure).

The CLI is deliberately thin: every option maps 1:1 onto a library
parameter, and all heavy lifting stays in the importable API.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from pathlib import Path

import numpy as np

from . import __version__
from .config import scaled_config
from .core.pipeline import Corleone
from .crowd.simulated import SimulatedCrowd
from .data.io import read_csv_table, write_csv_table
from .data.pairs import Pair
from .data.table import AttrType, Schema
from .exceptions import CorleoneError, DataError
from .persistence import result_report
from .synth import load_dataset
from .synth.registry import DATASET_NAMES

EXPERIMENT_INDEX = [
    ("Table 1", "dataset statistics", "bench_table1_datasets.py"),
    ("Table 2", "Corleone vs baselines", "bench_table2_overall.py"),
    ("Table 3", "blocking results", "bench_table3_blocking.py"),
    ("Table 4", "per-iteration performance", "bench_table4_iterations.py"),
    ("Figure 2", "rule extraction from forests",
     "bench_figure2_rule_extraction.py"),
    ("Figure 3", "confidence stopping patterns",
     "bench_figure3_confidence.py"),
    ("Sec 9.3", "estimator label savings",
     "bench_sec93_estimator_savings.py"),
    ("Sec 9.3", "reduction effectiveness", "bench_sec93_reduction.py"),
    ("Sec 9.3", "rule-evaluation precision",
     "bench_sec93_rule_precision.py"),
    ("Sec 9.3", "crowd error sensitivity + voting ablation",
     "bench_sec93_sensitivity.py"),
    ("Sec 9.4", "parameter sweeps + ablations",
     "bench_sec94_parameters.py"),
    ("Sec 10", "extensions: profiler / budget / money-time / sampler",
     "bench_ext_extensions.py"),
]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Corleone: hands-off crowdsourced entity matching "
                    "(SIGMOD 2014 reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    datasets = sub.add_parser(
        "datasets", help="generate a synthetic dataset as CSV files"
    )
    datasets.add_argument("name", choices=(*DATASET_NAMES, "list"))
    datasets.add_argument("--out", type=Path, default=Path("."),
                          help="output directory (default: cwd)")
    datasets.add_argument("--scale", choices=("bench", "paper"),
                          default="bench")
    datasets.add_argument("--seed", type=int, default=0)

    match = sub.add_parser(
        "match", help="run the hands-off pipeline on two CSV tables"
    )
    match.add_argument("table_a", type=Path)
    match.add_argument("table_b", type=Path)
    match.add_argument("--schema", required=True,
                       help="comma-separated name:type columns, e.g. "
                            "'title:text,year:numeric,venue:string'")
    match.add_argument("--gold", type=Path, required=True,
                       help="CSV of true matches (a_id,b_id) used to "
                            "drive the simulated crowd")
    match.add_argument("--seeds", type=Path, required=True,
                       help="CSV of seed examples (a_id,b_id,label) "
                            "with label in {0,1}; needs >=1 of each")
    match.add_argument("--out", type=Path, default=Path("matches.csv"))
    match.add_argument("--report", type=Path, default=None,
                       help="also write a JSON run report here")
    match.add_argument("--error-rate", type=float, default=0.0)
    match.add_argument("--budget", type=float, default=None)
    match.add_argument("--t-b", type=int, default=3_000_000,
                       help="blocking threshold t_B (pairs)")
    match.add_argument("--mode", default="full",
                       choices=("full", "one_iteration", "blocker_matcher"))
    match.add_argument("--seed", type=int, default=0)

    dedup = sub.add_parser(
        "dedup", help="deduplicate one CSV table with a simulated crowd"
    )
    dedup.add_argument("table", type=Path)
    dedup.add_argument("--schema", required=True,
                       help="comma-separated name:type columns")
    dedup.add_argument("--gold", type=Path, required=True,
                       help="CSV of true duplicate pairs (id_a,id_b)")
    dedup.add_argument("--seeds", type=Path, required=True,
                       help="CSV of seed examples (id_a,id_b,label)")
    dedup.add_argument("--out", type=Path, default=Path("duplicates.csv"))
    dedup.add_argument("--error-rate", type=float, default=0.0)
    dedup.add_argument("--t-b", type=int, default=3_000_000)
    dedup.add_argument("--mode", default="full",
                       choices=("full", "one_iteration", "blocker_matcher"))
    dedup.add_argument("--seed", type=int, default=0)

    sub.add_parser("bench-info",
                   help="print the table/figure -> benchmark index")
    return parser


def parse_schema(spec: str) -> Schema:
    """Parse 'name:type,...' into a Schema (types: string/text/numeric)."""
    pairs = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, _, type_name = chunk.partition(":")
        type_name = (type_name or "string").strip().lower()
        try:
            attr_type = AttrType(type_name)
        except ValueError:
            raise DataError(
                f"unknown attribute type {type_name!r} in schema spec "
                f"(use string/text/numeric)"
            ) from None
        pairs.append((name.strip(), attr_type))
    if not pairs:
        raise DataError("schema spec must declare at least one column")
    return Schema.from_pairs(pairs)


def _read_pairs_csv(path: Path, with_label: bool):
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        rows = [row for row in reader if row and not row[0].startswith("#")]
    # Tolerate a header row.
    if rows and rows[0][:2] == ["a_id", "b_id"]:
        rows = rows[1:]
    out = []
    for row in rows:
        if with_label:
            if len(row) < 3:
                raise DataError(f"{path}: expected a_id,b_id,label rows")
            out.append((Pair(row[0], row[1]), row[2].strip() in
                        ("1", "true", "True", "yes")))
        else:
            if len(row) < 2:
                raise DataError(f"{path}: expected a_id,b_id rows")
            out.append(Pair(row[0], row[1]))
    return out


def cmd_datasets(args: argparse.Namespace) -> int:
    """Handle ``repro datasets``: list or export a synthetic dataset."""
    if args.name == "list":
        for name in DATASET_NAMES:
            print(name)
        return 0
    dataset = load_dataset(args.name, scale=args.scale, seed=args.seed)
    args.out.mkdir(parents=True, exist_ok=True)
    write_csv_table(dataset.table_a, args.out / f"{args.name}_a.csv")
    write_csv_table(dataset.table_b, args.out / f"{args.name}_b.csv")
    with (args.out / f"{args.name}_gold.csv").open("w", newline="",
                                                   encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["a_id", "b_id"])
        writer.writerows(sorted(dataset.matches))
    with (args.out / f"{args.name}_seeds.csv").open("w", newline="",
                                                    encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["a_id", "b_id", "label"])
        for pair, label in sorted(dataset.seed_labels.items()):
            writer.writerow([pair.a_id, pair.b_id, int(label)])
    stats = dataset.stats()
    print(f"wrote {args.name} to {args.out}/ "
          f"(|A|={stats.size_a}, |B|={stats.size_b}, "
          f"matches={stats.n_matches})")
    return 0


def cmd_match(args: argparse.Namespace) -> int:
    """Handle ``repro match``: run the pipeline on two CSV tables."""
    schema = parse_schema(args.schema)
    table_a = read_csv_table(args.table_a, args.table_a.stem, schema)
    table_b = read_csv_table(args.table_b, args.table_b.stem, schema)
    gold = set(_read_pairs_csv(args.gold, with_label=False))
    seeds = dict(_read_pairs_csv(args.seeds, with_label=True))

    config = scaled_config(t_b=args.t_b, seed=args.seed)
    if args.budget is not None:
        config = config.replace(budget=args.budget)
    crowd = SimulatedCrowd(gold, error_rate=args.error_rate,
                           rng=np.random.default_rng(args.seed + 99))
    pipeline = Corleone(config, crowd, rng=np.random.default_rng(args.seed))
    result = pipeline.run(table_a, table_b, seeds, mode=args.mode)

    with args.out.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["a_id", "b_id"])
        writer.writerows(sorted(result.predicted_matches))
    print(f"{len(result.predicted_matches)} matches -> {args.out}")
    print(f"cost ${result.cost.dollars:.2f}, "
          f"{result.cost.pairs_labeled} pairs labelled, "
          f"stop: {result.stop_reason}")

    if args.report is not None:
        report = result_report(result, platform=crowd,
                               telemetry=pipeline.context.telemetry)
        report["n_predicted_matches"] = len(result.predicted_matches)
        report["repro_version"] = __version__
        args.report.write_text(json.dumps(report, indent=2))
        print(f"report -> {args.report}")
    return 0


def cmd_dedup(args: argparse.Namespace) -> int:
    """Handle ``repro dedup``: deduplicate one CSV table."""
    from .core.dedup import Deduplicator, canonical_pair

    schema = parse_schema(args.schema)
    table = read_csv_table(args.table, args.table.stem, schema)
    gold = {
        canonical_pair(pair.a_id, pair.b_id)
        for pair in _read_pairs_csv(args.gold, with_label=False)
    }
    seeds = {
        canonical_pair(pair.a_id, pair.b_id): label
        for pair, label in _read_pairs_csv(args.seeds, with_label=True)
    }

    config = scaled_config(t_b=args.t_b, seed=args.seed)
    crowd = SimulatedCrowd(gold, error_rate=args.error_rate,
                           rng=np.random.default_rng(args.seed + 99))
    dedup = Deduplicator(config, crowd, rng=np.random.default_rng(args.seed))
    result = dedup.run(table, seeds, mode=args.mode)

    with args.out.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["id_a", "id_b", "cluster"])
        cluster_of = {
            record_id: index
            for index, cluster in enumerate(result.clusters)
            for record_id in cluster
        }
        for pair in sorted(result.duplicate_pairs):
            writer.writerow([pair.a_id, pair.b_id,
                             cluster_of.get(pair.a_id, "")])
    print(f"{len(result.duplicate_pairs)} duplicate pairs in "
          f"{len(result.clusters)} clusters -> {args.out}")
    print(f"cost ${result.cost.dollars:.2f}, "
          f"{result.cost.pairs_labeled} pairs labelled")
    return 0


def cmd_bench_info(_args: argparse.Namespace) -> int:
    """Handle ``repro bench-info``: print the experiment index."""
    width = max(len(exp) for exp, _, _ in EXPERIMENT_INDEX)
    for experiment, what, module in EXPERIMENT_INDEX:
        print(f"{experiment:<{width}}  {what:<42} benchmarks/{module}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": cmd_datasets,
        "match": cmd_match,
        "dedup": cmd_dedup,
        "bench-info": cmd_bench_info,
    }
    try:
        return handlers[args.command](args)
    except CorleoneError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
