"""The sharded multi-core A x B rule executor.

This is the laptop-scale replacement for the paper's Hadoop job and for
the legacy :func:`~repro.core.blocker.apply_rules_parallel`, which
pickled a subset of A *and all of B* into every worker job and made each
worker rebuild the feature library from scratch.  Here the expensive
state crosses the process boundary exactly once, for free:

* the parent builds one :class:`~repro.core.blocker.ChunkEvaluator`
  and **pre-warms** the per-record prepared-column caches
  (:mod:`repro.features.batch`) for every feature the rules read —
  normalized strings, token/q-gram sets, interned word-id arrays,
  TF/IDF weight vectors, numeric columns;
* workers are *forked*, so tables, rules, the feature library (closures
  included — corpus-dependent TF/IDF features shard safely here, unlike
  the legacy pool) and the warmed caches are all inherited through
  copy-on-write pages — no pickling, no rebuild, no per-job payload
  beyond a shard index.  CPython's refcounting does touch the shared
  pages, so residency is not perfectly zero-copy, but nothing is ever
  serialized or recomputed;
* each worker streams its shard (a contiguous slice of A's rows crossed
  with all of B) through the same batch kernels as the sequential path,
  in :data:`~repro.core.blocker._STREAM_CHUNK`-sized chunks.

Determinism: shards partition A's row range in order, every kernel is
bit-exact regardless of chunk boundaries (the documented
``repro.features.batch`` contract), and survivors are merged in shard
order — so the merged list is bit-identical to
:func:`~repro.core.blocker.apply_rules_streaming`, worker count and
shard size notwithstanding.  With a ``shard_dir``, completed shards
persist (:class:`~repro.exec.sharding.ShardStore`) and a killed run
resumes by loading them — still bit-identical, because loaded and
recomputed shards carry the same bytes and the merge order is fixed.

On platforms without ``fork`` (or with ``n_workers <= 1``) the same
shard loop runs in-process; the fork-unavailable case additionally
reports a ``blocker_parallel_fallback`` event so lost parallelism is
visible in ``python -m repro.obs report``.
"""

from __future__ import annotations

from typing import Any

from ..core.blocker import _STREAM_CHUNK, ChunkEvaluator
from ..data.pairs import Pair
from ..data.table import AttrType, Table
from ..engine.events import (
    EVENT_BLOCKER_FALLBACK,
    EVENT_SHARD_COMPLETED,
    EVENT_SHARD_STARTED,
)
from ..features.library import FeatureLibrary
from ..obs.profiling import profile_section
from ..obs.workers import (
    capture_worker_sections,
    merge_worker_sections,
    worker_slot,
)
from ..rules.rule import Rule
from .sharding import Shard, ShardStore, auto_shard_size, plan_shards, \
    shard_fingerprint

_ShardResult = tuple[
    list[tuple[str, str]], int, int, dict[str, dict[str, float]]]
"""Per-shard outcome: (survivors, pairs_scanned, cells_computed,
worker wall-clock sections).  The first three are deterministic and
feed metrics/spans; the sections dict is wall-clock noise and flows
only to ``profile.json`` (see :mod:`repro.obs.workers`)."""

_SHARED: "dict[str, Any] | None" = None
"""Fork-inherited worker state: set in the parent immediately before the
pool is created, read by :func:`_run_shard` in the children, cleared
afterwards.  Never pickled — this only works because workers are forked.
"""

_ACCESSOR_WARMERS: dict[str, tuple[str, ...]] = {
    "abs_diff": ("numbers",),
    "rel_diff": ("numbers",),
    "jaccard_word": ("token_sets",),
    "overlap": ("token_sets",),
    "containment": ("token_sets",),
    "jaccard_qgram": ("qgram_sets",),
    "levenshtein": ("norms",),
    "jaro_winkler": ("norms",),
    "smith_waterman": ("norms",),
    "prefix": ("norms",),
    "monge_elkan": ("word_id_arrays",),
    "soundex": ("soundex_sets",),
}
"""Measure -> the PreparedColumn accessors its batch kernel reads.
Warming these in the parent is what turns the per-record caches into
*shared* read-only state for the forked workers."""


def apply_rules_sharded(table_a: Table, table_b: Table,
                        rules: list[Rule], library: FeatureLibrary,
                        n_workers: int = 1, shard_size: int = 0,
                        chunk_size: int = _STREAM_CHUNK,
                        shard_dir: Any = None,
                        bus: Any = None,
                        engine: str = "chunk",
                        stats: Any = None) -> list[Pair]:
    """Apply blocking rules over A x B via sharded workers; return survivors.

    ``shard_size`` of 0 picks :func:`~repro.exec.sharding.
    auto_shard_size` (about four shards per worker).  ``shard_dir``
    enables per-shard durability and resume.  ``bus`` (an
    :class:`~repro.engine.events.EventBus` or compatible) receives
    ``shard_started`` / ``shard_completed`` events per shard, in shard
    order, and a ``blocker_parallel_fallback`` event when requested
    parallelism could not be used; event order is deterministic, so
    traces stay byte-identical across replays.

    ``engine`` selects the per-shard evaluator: ``"chunk"`` is the
    full-matrix :class:`ChunkEvaluator`, ``"plan"`` runs each shard's
    slice through the compiled plan (:class:`repro.plan.PlanExecutor`)
    against the same fork-shared caches.  Survivors are bit-identical
    either way — the shard fingerprint deliberately excludes the
    engine, so shard files written by one engine resume under the
    other.  With ``engine="plan"``, ``stats`` (a
    :class:`repro.plan.PlanStats`) accumulates the deterministic
    cell accounting; loaded shards re-contribute their persisted cell
    counts so resumed metrics converge to the uninterrupted run's.

    The returned survivor list is bit-identical to
    :func:`~repro.core.blocker.apply_rules_streaming` on the same
    inputs, for every worker count, shard size and kill/resume history.
    """
    if engine not in ("chunk", "plan"):
        raise ValueError(f"unknown shard engine {engine!r}")
    if shard_size <= 0:
        shard_size = auto_shard_size(len(table_a), n_workers)
    shards = plan_shards(len(table_a), shard_size)
    if engine == "plan":
        from ..plan import PlanExecutor

        evaluator: ChunkEvaluator = PlanExecutor(table_a, table_b, rules,
                                                 library)
    else:
        evaluator = ChunkEvaluator(table_a, table_b, rules, library)
    if stats is not None:
        stats.needed_width = len(evaluator.needed)
    with profile_section("blocker.shard_prewarm"):
        _prewarm(table_a, evaluator.cache_a, evaluator.needed_features)
        _prewarm(table_b, evaluator.cache_b, evaluator.needed_features)

    store: ShardStore | None = None
    completed: set[int] = set()
    if shard_dir is not None:
        fingerprint = shard_fingerprint(table_a, table_b, rules, library,
                                        shard_size, chunk_size)
        store = ShardStore(shard_dir, fingerprint)
        completed = store.prepare(len(shards))
    pending = [shard for shard in shards if shard.index not in completed]

    use_pool = n_workers > 1 and len(pending) > 1
    if use_pool and not _fork_available():
        use_pool = False
        _emit(bus, EVENT_BLOCKER_FALLBACK, reason="fork_unavailable",
              detail="platform has no fork start method; sharded "
                     "blocking running in-process")

    results: dict[int, _ShardResult] = {}
    for index in sorted(completed):
        results[index] = store.load(index)
        shard = shards[index]
        _emit_shard_span(bus, shard, results[index], n_workers, cached=True)

    if use_pool:
        _run_pool(evaluator, shards, pending, chunk_size,
                  n_workers, store, results, bus)
    else:
        for shard in pending:
            slot = worker_slot(shard.index, n_workers)
            _emit(bus, EVENT_SHARD_STARTED, shard=shard.index,
                  start=shard.start, stop=shard.stop, worker=slot,
                  cached=False)
            with capture_worker_sections() as sections:
                survivors, scanned, cells = _shard_survivors(
                    evaluator, shard, chunk_size)
            results[shard.index] = (survivors, scanned, cells, sections)
            if store is not None:
                _store_shard(store, shard.index, survivors, scanned,
                             cells, sections)
            _emit(bus, EVENT_SHARD_COMPLETED, shard=shard.index,
                  survivors=len(survivors), pairs_scanned=scanned,
                  worker=slot, cached=False)

    # Deterministic merge: shards partition A's row range, so survivors
    # concatenated in shard order equal the sequential A-major stream.
    # Worker wall-clock sections fold into the run profiler here, in
    # shard order, keyed by logical worker slot — the keys are stable
    # across replay/resume even though the seconds are wall-clock noise.
    merged: list[Pair] = []
    for shard in shards:
        survivors, scanned, cells, sections = results[shard.index]
        merged.extend(Pair(a_id, b_id) for a_id, b_id in survivors)
        merge_worker_sections(worker_slot(shard.index, n_workers), sections)
        if stats is not None:
            # A shard file from the chunk engine (or a pre-plan store)
            # carries no cell count; it computed every needed cell.
            if cells < 0:
                cells = scanned * len(evaluator.needed)
            stats.merge_counts(scanned, cells)
    return merged


def _run_pool(evaluator: ChunkEvaluator, shards: list[Shard],
              pending: list[Shard], chunk_size: int, n_workers: int,
              store: ShardStore | None,
              results: dict[int, _ShardResult],
              bus: Any) -> None:
    """Fan pending shards out to a forked worker pool.

    ``imap`` yields results in submission (= shard) order, so shard
    files land on disk and events hit the bus in the same deterministic
    order the in-process path produces — out-of-order completions just
    buffer inside the pool.
    """
    import multiprocessing

    global _SHARED
    for shard in pending:
        _emit(bus, EVENT_SHARD_STARTED, shard=shard.index,
              start=shard.start, stop=shard.stop,
              worker=worker_slot(shard.index, n_workers), cached=False)
    context = multiprocessing.get_context("fork")
    _SHARED = {"evaluator": evaluator,
               "shards": {shard.index: shard for shard in shards},
               "chunk_size": chunk_size}
    try:
        with context.Pool(processes=min(n_workers, len(pending))) as pool:
            indices = [shard.index for shard in pending]
            for index, survivors, scanned, cells, sections in pool.imap(
                    _run_shard, indices, chunksize=1):
                results[index] = (survivors, scanned, cells, sections)
                if store is not None:
                    _store_shard(store, index, survivors, scanned,
                                 cells, sections)
                _emit(bus, EVENT_SHARD_COMPLETED, shard=index,
                      survivors=len(survivors), pairs_scanned=scanned,
                      worker=worker_slot(index, n_workers), cached=False)
    finally:
        _SHARED = None


def _store_shard(store: ShardStore, index: int,
                 survivors: list[tuple[str, str]], scanned: int,
                 cells: int,
                 sections: dict[str, dict[str, float]]) -> None:
    """Persist one shard, keeping the legacy 3-argument write signature
    for the chunk engine (which has no cell accounting to store)."""
    if cells < 0:
        store.write(index, survivors, scanned, sections=sections)
    else:
        store.write(index, survivors, scanned, cells, sections=sections)


def _run_shard(index: int) -> tuple[int, list[tuple[str, str]], int, int,
                                    dict[str, dict[str, float]]]:
    """Worker body: evaluate one shard against fork-inherited state.

    Module-level by necessity (pool callables must pickle; corlint
    CL005) — but its *state* arrives through :data:`_SHARED`, not
    through the job payload.  The forked child inherits the parent's
    profiler activation stack, so it captures its ``profile_section``
    calls on a fresh local profiler and ships the sections back in the
    result tuple instead of recording into a doomed copy.
    """
    job = _SHARED
    shard = job["shards"][index]
    with capture_worker_sections() as sections:
        survivors, scanned, cells = _shard_survivors(
            job["evaluator"], shard, job["chunk_size"])
    return index, survivors, scanned, cells, sections


def _shard_survivors(
        evaluator: ChunkEvaluator, shard: Shard,
        chunk_size: int) -> tuple[list[tuple[str, str]], int, int]:
    """Stream one shard's slice of A x B through the rule evaluator.

    Enumeration order within the shard matches ``iter_cartesian`` (A
    rows in table order, each crossed with all of B in table order);
    chunk boundaries differ from the global sequential stream, which is
    immaterial because every batch kernel is bit-exact regardless of
    chunking.  The third return value is the plan engine's per-shard
    computed-cell delta (-1 under the chunk engine, which keeps no
    cell accounting).
    """
    table_a, table_b = evaluator.table_a, evaluator.table_b
    plan_stats = getattr(evaluator, "stats", None)
    cells_before = plan_stats.cells_computed if plan_stats else 0
    records_b = list(table_b)
    survivors: list[tuple[str, str]] = []
    scanned = 0
    chunk_a: list[Any] = []
    chunk_b: list[Any] = []

    def flush() -> None:
        nonlocal scanned
        if not chunk_a:
            return
        with profile_section("blocker.shard_flush"):
            blocked = evaluator.blocked_mask(chunk_a, chunk_b)
            survivors.extend(
                (record_a.record_id, record_b.record_id)
                for record_a, record_b, is_blocked
                in zip(chunk_a, chunk_b, blocked)
                if not is_blocked
            )
            scanned += len(chunk_a)
            chunk_a.clear()
            chunk_b.clear()

    for row in range(shard.start, shard.stop):
        record_a = table_a.at(row)
        for record_b in records_b:
            chunk_a.append(record_a)
            chunk_b.append(record_b)
            if len(chunk_a) >= chunk_size:
                flush()
    flush()
    if plan_stats is None:
        return survivors, scanned, -1
    return survivors, scanned, plan_stats.cells_computed - cells_before


def _prewarm(table: Table, cache: Any, features: list[Any]) -> None:
    """Materialize every prepared value the needed features will read.

    After this, workers only *read* the memo dictionaries — the
    copy-on-write pages stay shared and no worker re-tokenizes a
    record.  TF/IDF weights hide their idf mapping inside the kernel
    closure, so they are warmed through a self-aligned kernel call
    (cost O(n) dot products) rather than a direct accessor.
    """
    records = list(table)
    if not records:
        return
    attr_types = {attr.name: attr.attr_type for attr in table.schema}
    for feature in features:
        column = cache.column(feature.attribute)
        column.missing_flags(records)
        measure = feature.measure
        if measure == "exact":
            accessors = (("numbers",)
                         if attr_types[feature.attribute] is AttrType.NUMERIC
                         else ("norms",))
        elif measure == "cosine_tfidf":
            if feature.batch_compute is not None:
                feature.batch_compute(column, records, column, records)
            continue
        else:
            accessors = _ACCESSOR_WARMERS.get(measure, ())
        for accessor in accessors:
            getattr(column, accessor)(records)


def _fork_available() -> bool:
    """Whether this platform supports forked worker pools."""
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def _emit(bus: Any, name: str, **payload: Any) -> None:
    """Emit an event if a bus was provided (no-op otherwise)."""
    if bus is not None:
        bus.emit(name, **payload)


def _emit_shard_span(bus: Any, shard: Shard, result: _ShardResult,
                     n_workers: int, cached: bool) -> None:
    """Emit the started/completed pair for a shard loaded from disk.

    Cached shards emit the same two events as freshly computed ones —
    including the same logical ``worker`` slot, which depends only on
    the configured worker count — so a resumed run's shard counters and
    shard spans converge to exactly the uninterrupted run's values: the
    byte-identity contract for ``metrics.json``/``spans.jsonl`` extends
    to sharded blocking.
    """
    survivors, scanned, _cells, _sections = result
    slot = worker_slot(shard.index, n_workers)
    _emit(bus, EVENT_SHARD_STARTED, shard=shard.index, start=shard.start,
          stop=shard.stop, worker=slot, cached=cached)
    _emit(bus, EVENT_SHARD_COMPLETED, shard=shard.index,
          survivors=len(survivors), pairs_scanned=scanned, worker=slot,
          cached=cached)
