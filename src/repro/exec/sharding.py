"""Shard planning and durable per-shard results for blocking runs.

A *shard* is a contiguous slice of table A's rows; its work unit is the
slice crossed with all of B.  Planning is pure arithmetic and part of
the determinism contract: the same ``(n_rows, shard_size)`` always
yields the same shard list, shards partition ``range(n_rows)`` exactly,
and no shard is ever empty — the legacy ``apply_rules_parallel``
ceil-division sharding could in principle enumerate an empty trailing
job, so :func:`plan_shards` is the single source of truth now.

:class:`ShardStore` persists one ``shard-NNNNN.npz`` file per completed
shard under a run's ``shards/`` directory, next to a ``plan.json``
carrying a fingerprint of everything the shard results depend on
(tables, feature names, rules, shard/chunk geometry).  A resumed run
with the same fingerprint loads completed shards instead of recomputing
them; a directory left by a *different* configuration is cleared, since
its shard files would splice wrong survivors into the merge.
"""

from __future__ import annotations

import hashlib
import json
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from ..exceptions import DataError
from ..storage.recovery import quarantine_artifact, verify_artifact
from ..storage.writer import ArtifactWriter, load_manifest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..data.table import Table
    from ..features.library import FeatureLibrary
    from ..rules.rule import Rule

PLAN_FILE = "plan.json"
"""Manifest written into every shard directory (fingerprint + geometry)."""


@dataclass(frozen=True)
class Shard:
    """One contiguous slice ``[start, stop)`` of table A's row range."""

    index: int
    start: int
    stop: int

    @property
    def rows(self) -> int:
        """Number of A rows in this shard."""
        return self.stop - self.start


def plan_shards(n_rows: int, shard_size: int) -> list[Shard]:
    """Partition ``range(n_rows)`` into contiguous non-empty shards.

    Every row belongs to exactly one shard, shards are returned in row
    order, and the trailing shard simply holds the remainder — there is
    no empty shard to skip, by construction (``range(0, n_rows,
    shard_size)`` only yields starts strictly below ``n_rows``).
    """
    if shard_size <= 0:
        raise ValueError(f"shard_size must be positive, got {shard_size}")
    if n_rows <= 0:
        return []
    return [
        Shard(index=index, start=start,
              stop=min(start + shard_size, n_rows))
        for index, start in enumerate(range(0, n_rows, shard_size))
    ]


def auto_shard_size(n_rows: int, n_workers: int) -> int:
    """A shard size giving roughly four shards per worker.

    Oversplitting (vs one shard per worker) keeps the pool busy when
    shards finish unevenly, and bounds how much work a kill/resume
    cycle has to redo; four per worker is the conventional balance.
    """
    slots = 4 * max(1, n_workers)
    return max(1, -(-n_rows // slots))


def shard_fingerprint(table_a: "Table", table_b: "Table",
                      rules: "list[Rule]", library: "FeatureLibrary",
                      shard_size: int, chunk_size: int) -> str:
    """Hash of everything a shard result depends on.

    Two runs with the same fingerprint produce byte-identical shard
    files, so a resumed run may load them; anything else (different
    rules, tables, feature order or geometry) must recompute.
    """
    from ..core.blocker import _rule_payload

    document = {
        "table_a": [table_a.name, list(table_a.record_ids)],
        "table_b": [table_b.name, list(table_b.record_ids)],
        "library": list(library.names),
        "rules": [_rule_payload(rule) for rule in rules],
        "shard_size": int(shard_size),
        "chunk_size": int(chunk_size),
    }
    canonical = json.dumps(document, sort_keys=True).encode("utf-8")
    return hashlib.sha256(canonical).hexdigest()


class ShardStore:
    """Durable per-shard survivor lists under one directory.

    Writes go through :mod:`repro.storage.writer` (tmp file, fsync,
    atomic replace, directory fsync), so a kill mid-write never leaves
    a truncated shard file — a shard either exists completely or not
    at all, which is what makes resume safe.  The store keeps its own
    ``MANIFEST.json`` ledger inside the shard directory; ``prepare``
    re-verifies every completed shard's sha256 against it, so a
    bit-rotted shard is quarantined and recomputed instead of splicing
    corrupt survivors into the merge.
    """

    def __init__(self, directory: str | Path, fingerprint: str) -> None:
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self.writer = ArtifactWriter(self.directory)
        self.shards_quarantined = 0
        """Corrupt shard files quarantined by :meth:`prepare`."""

    def shard_path(self, index: int) -> Path:
        """The npz file of shard ``index``."""
        return self.directory / f"shard-{index:05d}.npz"

    def prepare(self, n_shards: int) -> set[int]:
        """Ready the directory; return indices of completed shards.

        A directory whose ``plan.json`` matches this store's
        fingerprint is a resumable previous attempt of the *same*
        work: its shard files are trusted after their checksums verify
        (a shard that fails its manifest sha256 is moved under the
        directory's ``quarantine/`` and dropped from the completed
        set, so the pool recomputes it).  Any other content (different
        fingerprint, or shard files with no plan) is stale — loading
        it would splice another configuration's survivors into this
        run — so it is cleared and a fresh plan is written.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        plan_path = self.directory / PLAN_FILE
        if plan_path.is_file():
            plan = json.loads(plan_path.read_text())
            if (plan.get("fingerprint") == self.fingerprint
                    and plan.get("n_shards") == n_shards):
                return self._verified_completed(n_shards)
        for stale in self.directory.glob("shard-*.npz"):
            stale.unlink()
            self.writer.forget(stale.name)
        document = {"fingerprint": self.fingerprint,
                    "n_shards": int(n_shards)}
        self.writer.atomic_write_json(PLAN_FILE, document,
                                      indent=2, sort_keys=True)
        return set()

    def _verified_completed(self, n_shards: int) -> set[int]:
        """Completed shard indices whose bytes still verify."""
        manifest = load_manifest(self.directory)
        completed = set()
        for index in range(n_shards):
            path = self.shard_path(index)
            if not path.is_file():
                continue
            verdict, _, _ = verify_artifact(self.directory, path,
                                            manifest)
            if verdict is False:
                quarantine_artifact(self.directory, path)
                self.writer.forget(path.name)
                self.shards_quarantined += 1
                continue
            completed.add(index)
        return completed

    def write(self, index: int, survivors: list[tuple[str, str]],
              pairs_scanned: int, cells_computed: int = -1,
              sections: "dict[str, dict[str, float]] | None" = None
              ) -> None:
        """Persist one completed shard durably.

        ``cells_computed`` is the plan engine's per-shard feature-cell
        count (-1 for the chunk engine, which computes every needed
        cell).  Persisting it is what keeps plan metrics convergent
        across kill/resume: a resumed run re-contributes a loaded
        shard's cells without recomputing the shard.

        ``sections`` is the worker's captured wall-clock telemetry
        (:mod:`repro.obs.workers`), stored as one canonical-JSON string
        so a cached shard replays its sections into ``profile.json``
        on resume.  It is wall-clock noise, deliberately excluded from
        the shard fingerprint and from every deterministic artifact.
        """
        from ..obs.workers import encode_sections

        a_ids = np.array([a_id for a_id, _ in survivors], dtype=np.str_)
        b_ids = np.array([b_id for _, b_id in survivors], dtype=np.str_)
        self.writer.atomic_write_npz(
            self.shard_path(index),
            {
                "a_ids": a_ids,
                "b_ids": b_ids,
                "pairs_scanned": np.array([pairs_scanned],
                                          dtype=np.int64),
                "cells_computed": np.array([cells_computed],
                                           dtype=np.int64),
                "telemetry": np.array([encode_sections(sections or {})],
                                      dtype=np.str_),
            },
        )

    def load(self, index: int) -> tuple[list[tuple[str, str]], int, int,
                                        dict[str, dict[str, float]]]:
        """Load a shard's (survivors, pairs_scanned, cells_computed,
        worker sections).

        ``cells_computed`` is -1 and the sections dict empty for shards
        written by the chunk engine or by an older version of this
        store (the fingerprint is engine- and telemetry-independent, so
        those files remain loadable).  A shard file whose bytes no
        longer parse raises a typed
        :class:`~repro.exceptions.DataError` naming the file — never a
        raw zipfile or numpy traceback.
        """
        from ..obs.workers import decode_sections

        path = self.shard_path(index)
        try:
            with np.load(path, allow_pickle=False) as data:
                survivors = list(zip(data["a_ids"].tolist(),
                                     data["b_ids"].tolist()))
                pairs_scanned = int(data["pairs_scanned"][0])
                if "cells_computed" in data:
                    cells_computed = int(data["cells_computed"][0])
                else:
                    cells_computed = -1
                if "telemetry" in data:
                    sections = decode_sections(data["telemetry"][0])
                else:
                    sections = {}
        except (KeyError, ValueError, EOFError, OSError,
                zipfile.BadZipFile) as error:
            raise DataError(f"{path}: malformed shard file "
                            f"({error})") from None
        return survivors, pairs_scanned, cells_computed, sections
