"""The sharded multi-core execution substrate under the Blocker.

The paper ran its rule-application step — every blocking rule over all
of A x B, ~168M pairs for Citations — as a Hadoop job.  This package is
the single-machine stand-in: :func:`~repro.exec.executor.
apply_rules_sharded` partitions the rows of A into contiguous shards
(:mod:`~repro.exec.sharding`), evaluates each shard's slice of A x B in
worker processes that read the parent's prepared-column caches through
fork copy-on-write memory (no per-job pickling of tables or features),
and merges the per-shard survivor lists in shard order — bit-identical
to the sequential streaming path.  With a shard directory, completed
shards persist as ``shard-*.npz`` files and a killed run resumes by
loading them instead of recomputing.
"""

from __future__ import annotations

from .executor import apply_rules_sharded
from .sharding import Shard, ShardStore, auto_shard_size, plan_shards

__all__ = [
    "Shard",
    "ShardStore",
    "apply_rules_sharded",
    "auto_shard_size",
    "plan_shards",
]
