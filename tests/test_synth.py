"""Synthetic dataset generators: sizes, ground truth, difficulty ordering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.pairs import Pair
from repro.exceptions import DataError
from repro.features.library import build_feature_library
from repro.features.vectorize import vectorize_pairs
from repro.synth import (
    generate_citations,
    generate_products,
    generate_restaurants,
    load_dataset,
)
from repro.synth.registry import BENCH_SCALE, DATASET_NAMES, PAPER_SCALE


@pytest.mark.parametrize("name", DATASET_NAMES)
class TestRegistry:
    def test_bench_scale_sizes(self, name):
        dataset = load_dataset(name, scale="bench", seed=3)
        n_a, n_b, n_matches = BENCH_SCALE[name]
        stats = dataset.stats()
        assert stats.size_a == n_a
        assert stats.size_b == n_b
        assert stats.n_matches == n_matches

    def test_deterministic_per_seed(self, name):
        d1 = load_dataset(name, seed=5)
        d2 = load_dataset(name, seed=5)
        assert d1.matches == d2.matches
        assert d1.table_a.record_ids == d2.table_a.record_ids
        r1 = d1.table_a.at(0)
        r2 = d2.table_a.at(0)
        assert r1.values == r2.values

    def test_different_seeds_differ(self, name):
        d1 = load_dataset(name, seed=1)
        d2 = load_dataset(name, seed=2)
        assert d1.matches != d2.matches or (
            d1.table_a.at(0).values != d2.table_a.at(0).values
        )

    def test_seed_examples_valid(self, name):
        dataset = load_dataset(name, seed=3)
        assert len(dataset.seed_pairs) == 4
        labels = dataset.seed_labels
        assert sum(labels.values()) == 2  # two positives, two negatives
        for pair in dataset.seed_pairs:
            assert pair.a_id in dataset.table_a
            assert pair.b_id in dataset.table_b

    def test_matches_reference_existing_records(self, name):
        dataset = load_dataset(name, seed=3)
        for pair in dataset.matches:
            assert pair.a_id in dataset.table_a
            assert pair.b_id in dataset.table_b

    def test_instruction_nonempty(self, name):
        assert load_dataset(name).instruction


class TestRegistryErrors:
    def test_unknown_name(self):
        with pytest.raises(DataError):
            load_dataset("nonsense")

    def test_unknown_scale(self):
        with pytest.raises(DataError):
            load_dataset("restaurants", scale="giant")

    def test_paper_scale_constants_match_table1(self):
        assert PAPER_SCALE["restaurants"] == (533, 331, 112)
        assert PAPER_SCALE["citations"] == (2616, 64263, 5347)
        assert PAPER_SCALE["products"] == (2554, 22074, 1154)


class TestGeneratorConstraints:
    def test_too_many_matches_rejected(self):
        with pytest.raises(DataError):
            generate_restaurants(n_a=10, n_b=10, n_matches=11)

    def test_too_few_matches_rejected(self):
        with pytest.raises(DataError):
            generate_products(n_a=10, n_b=10, n_matches=2)

    def test_citations_many_to_one(self):
        dataset = generate_citations(n_a=50, n_b=300, n_matches=90, seed=2)
        a_sides = [pair.a_id for pair in dataset.matches]
        assert len(set(a_sides)) < len(a_sides)  # duplicates exist

    def test_citations_copy_cap(self):
        with pytest.raises(DataError):
            # 4 copies per paper needed -> impossible with cap of 3.
            generate_citations(n_a=5, n_b=100, n_matches=20)


class TestRecordShapes:
    def test_restaurant_b_side_formatting_differs(self):
        dataset = generate_restaurants(n_a=50, n_b=40, n_matches=20, seed=1)
        pair = sorted(dataset.matches)[0]
        phone_a = dataset.table_a[pair.a_id].get("phone")
        phone_b = dataset.table_b[pair.b_id].get("phone")
        if phone_a is not None and phone_b is not None:
            assert "-" in phone_a
            assert "/" in phone_b

    def test_products_prices_positive(self):
        dataset = generate_products(n_a=40, n_b=60, n_matches=10, seed=1)
        for table in (dataset.table_a, dataset.table_b):
            for record in table:
                price = record.get("price")
                assert price is None or price > 0

    def test_citations_years_plausible(self):
        dataset = generate_citations(n_a=40, n_b=100, n_matches=30, seed=1)
        for record in dataset.table_b:
            year = record.get("year")
            assert year is None or 1980 <= year <= 2015


def _mean_match_separation(dataset) -> float:
    """Mean feature-similarity gap between matches and hard non-matches.

    A crude proxy for dataset difficulty: the average (over a sample) of
    match similarity minus non-match similarity on the first text-ish
    feature column.
    """
    library = build_feature_library(dataset.table_a, dataset.table_b)
    matches = sorted(dataset.matches)[:40]
    rng = np.random.default_rng(0)
    non_matches = []
    a_ids = dataset.table_a.record_ids
    b_ids = dataset.table_b.record_ids
    while len(non_matches) < 40:
        pair = Pair(a_ids[rng.integers(len(a_ids))],
                    b_ids[rng.integers(len(b_ids))])
        if pair not in dataset.matches:
            non_matches.append(pair)
    cs = vectorize_pairs(dataset.table_a, dataset.table_b,
                         matches + non_matches, library)
    values = np.nan_to_num(cs.features, nan=0.0)
    # Use the mean over all similarity columns (exclude *_abs_diff).
    keep = [i for i, name in enumerate(cs.feature_names)
            if "abs_diff" not in name]
    scores = values[:, keep].mean(axis=1)
    return float(scores[:len(matches)].mean()
                 - scores[len(matches):].mean())


def test_difficulty_ordering_restaurants_easiest():
    """Restaurants matches should be more separable than products ones."""
    easy = _mean_match_separation(
        generate_restaurants(n_a=80, n_b=60, n_matches=25, seed=4)
    )
    hard = _mean_match_separation(
        generate_products(n_a=80, n_b=120, n_matches=25, seed=4)
    )
    assert easy > hard


class TestPaperScale:
    """Paper-scale generation stays correct and tractable (Table 1)."""

    def test_restaurants_paper_scale(self):
        dataset = load_dataset("restaurants", scale="paper", seed=1)
        stats = dataset.stats()
        assert (stats.size_a, stats.size_b, stats.n_matches) == \
            (533, 331, 112)
        # The paper's positive density: 112/176K ~ 0.06%.
        assert stats.positive_density == pytest.approx(0.000635, abs=1e-4)

    def test_products_paper_scale(self):
        dataset = load_dataset("products", scale="paper", seed=1)
        stats = dataset.stats()
        assert (stats.size_a, stats.size_b, stats.n_matches) == \
            (2554, 22074, 1154)

    def test_citations_paper_scale_many_to_one(self):
        dataset = load_dataset("citations", scale="paper", seed=1)
        stats = dataset.stats()
        assert (stats.size_a, stats.size_b, stats.n_matches) == \
            (2616, 64263, 5347)
        # 5347 matches over <= 2616 DBLP papers forces multi-copy papers.
        a_sides = {}
        for pair in dataset.matches:
            a_sides[pair.a_id] = a_sides.get(pair.a_id, 0) + 1
        assert max(a_sides.values()) >= 2
        assert max(a_sides.values()) <= 3


class TestSongs:
    """The extra (non-paper) songs dataset."""

    def test_live_versions_are_hard_negatives(self):
        from repro.synth.songs import generate_songs
        dataset = generate_songs(n_a=100, n_b=600, n_matches=60, seed=2)
        live_ids = {
            record.record_id for record in dataset.table_b
            if "(live)" in str(record.get("title")).lower()
        }
        assert live_ids, "songs must plant live-version hard negatives"
        matched_b = {pair.b_id for pair in dataset.matches}
        assert not live_ids & matched_b

    def test_durations_positive(self):
        from repro.synth.songs import generate_songs
        dataset = generate_songs(n_a=50, n_b=200, n_matches=20, seed=1)
        for table in (dataset.table_a, dataset.table_b):
            for record in table:
                assert record.get("duration") > 0

    def test_artists_reused_across_tracks(self):
        """Artist name alone must not identify a track."""
        from repro.synth.songs import generate_songs
        dataset = generate_songs(n_a=100, n_b=400, n_matches=30, seed=3)
        artists = [r.get("artist") for r in dataset.table_a]
        assert len(set(artists)) < len(artists)

    def test_pipeline_can_match_songs(self, fast_config):
        """End-to-end sanity on the fourth schema."""
        import numpy as np
        from repro.core.pipeline import Corleone
        from repro.crowd.simulated import PerfectCrowd
        from repro.synth.songs import generate_songs
        dataset = generate_songs(n_a=60, n_b=150, n_matches=20, seed=5)
        crowd = PerfectCrowd(dataset.matches,
                             rng=np.random.default_rng(1))
        pipeline = Corleone(fast_config, crowd,
                            rng=np.random.default_rng(2))
        result = pipeline.run(dataset.table_a, dataset.table_b,
                              dataset.seed_labels, mode="one_iteration")
        found = result.predicted_matches & dataset.matches
        assert len(found) >= 0.6 * len(dataset.matches)
