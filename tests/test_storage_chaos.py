"""Crash-consistency harness: write-site × fault-kind over full runs.

The disk-side sibling of ``tests/test_chaos.py``: full Corleone runs on
the restaurants and products scenarios with a
:class:`~repro.storage.faults.StorageFaultInjector` armed against one
write site at a time.  The contract under test is the storage
subsystem's end-to-end promise:

* a simulated crash at *any* hook point of *any* run-dir artifact write
  (torn tmp file, crash before the atomic replace, crash after it)
  leaves a directory ``Corleone.resume`` drives to a result
  bit-identical to the uninterrupted run, with every delivered answer
  charged exactly once;
* bit rot at rest on ``checkpoint.json`` is detected by its manifest
  checksum, quarantined, surfaced as ``artifact_corrupt`` /
  ``artifact_quarantined`` / ``checkpoint_fallback`` trace events, and
  recovered from the newest good generation;
* unrecoverable corruption (``candidates.npz``, ``run.json`` — written
  once, no generation chain) raises a typed
  :class:`~repro.exceptions.DataError` naming the file and checksums;
* stale ``.tmp`` litter is swept and a torn trace tail is repaired (and
  recorded as a ``trace_torn_tail`` event) on resume.

``ENOSPC`` is the one non-crash fault: the write fails with a real
``OSError`` the caller sees, and the directory stays resumable.
"""

from __future__ import annotations

import errno

import numpy as np
import pytest

from repro import persistence
from repro.config import (
    BlockerConfig,
    CorleoneConfig,
    EstimatorConfig,
    ForestConfig,
    LocatorConfig,
    MatcherConfig,
)
from repro.core.pipeline import Corleone
from repro.crowd import (
    CircuitBreaker,
    FaultSpec,
    FaultyCrowd,
    PerfectCrowd,
    ResilientCrowd,
    RetryPolicy,
    SimulatedCrowd,
)
from repro.engine import (
    EVENT_ARTIFACT_CORRUPT,
    EVENT_ARTIFACT_QUARANTINED,
    EVENT_ARTIFACT_WRITTEN,
    EVENT_CHECKPOINT_FALLBACK,
    EVENT_TRACE_TORN,
)
from repro.engine.checkpoint import (
    CANDIDATES_FILE,
    CHECKPOINT_FILE,
    RUN_FILE,
    TRACE_FILE,
)
from repro.engine.events import read_trace
from repro.exceptions import DataError
from repro.storage import (
    QUARANTINE_DIR,
    SimulatedCrashError,
    StorageFaultInjector,
    file_sha256,
    load_manifest,
)
from repro.synth.products import generate_products
from repro.synth.restaurants import generate_restaurants

STORAGE_SEED = 29
"""Root seed for every storage fault injector in the sweep."""


def _engine_config(t_b: int) -> CorleoneConfig:
    """A fast full-pipeline configuration for the crash sweeps."""
    return CorleoneConfig(
        forest=ForestConfig(n_trees=5),
        blocker=BlockerConfig(t_b=t_b, top_k_rules=10,
                              max_labels_per_rule=60),
        matcher=MatcherConfig(batch_size=10, pool_size=40,
                              n_converged=8, n_degrade=6,
                              max_iterations=12),
        estimator=EstimatorConfig(probe_size=25, max_probes=30),
        locator=LocatorConfig(min_difficult_pairs=30),
        max_pipeline_iterations=1,
        seed=0,
    )


_SCENARIOS = {
    "restaurants": (
        lambda: generate_restaurants(n_a=60, n_b=40, n_matches=15, seed=7),
        _engine_config(t_b=1500),
        0.05,
    ),
    "products": (
        lambda: generate_products(n_a=40, n_b=120, n_matches=18, seed=17),
        _engine_config(t_b=3000),
        0.0,
    ),
}


def accounted_stack(crowd):
    """A transparent gateway stack that still counts deliveries.

    Zero injected crowd faults — this harness breaks the *disk*, not
    the crowd — but routing through :class:`FaultyCrowd` gives the
    ``answers_delivered`` counter the charged==delivered assertions
    need, and the gateway carries checkpointable state so a resume
    fast-forwards it.
    """
    faulty = FaultyCrowd(crowd, FaultSpec(), seed=3)
    gateway = ResilientCrowd(
        faulty,
        RetryPolicy(max_attempts=7),
        breaker=CircuitBreaker(failure_threshold=20),
    )
    return gateway, faulty


@pytest.fixture(scope="module", params=sorted(_SCENARIOS))
def scenario(request):
    """(name, dataset, config, crowd factory, golden report) per set."""
    name = request.param
    make_dataset, config, error_rate = _SCENARIOS[name]
    dataset = make_dataset()

    def crowd():
        if error_rate:
            return SimulatedCrowd(dataset.matches, error_rate=error_rate,
                                  rng=np.random.default_rng(11))
        return PerfectCrowd(dataset.matches, rng=np.random.default_rng(11))

    gateway, _ = accounted_stack(crowd())
    golden = Corleone(config, gateway, seed=123).run(
        dataset.table_a, dataset.table_b, dataset.seed_labels)
    return (name, dataset, config, crowd,
            persistence.result_report(golden))


def _crash_run(scenario, run_dir, site: str, kind: str,
               skip: int) -> StorageFaultInjector:
    """Run the pipeline into an armed storage fault; assert it fired."""
    _, dataset, config, crowd, _ = scenario
    gateway, _ = accounted_stack(crowd())
    injector = StorageFaultInjector(seed=STORAGE_SEED)
    injector.arm(kind, site, skip=skip)
    with injector, pytest.raises(SimulatedCrashError) as excinfo:
        Corleone(config, gateway, seed=123, run_dir=run_dir).run(
            dataset.table_a, dataset.table_b, dataset.seed_labels)
    assert excinfo.value.kind == kind
    assert site in excinfo.value.path.name
    assert injector.counts[kind] == 1
    return injector


def _resume_and_check(scenario, run_dir) -> list:
    """Resume the crashed directory; assert bit-identity + accounting.

    Returns the resumed run's full trace for event assertions.
    """
    _, dataset, config, crowd, golden_report = scenario
    gateway, faulty = accounted_stack(crowd())
    resumed = Corleone.resume(run_dir, gateway)
    assert persistence.result_report(resumed) == golden_report
    assert resumed.cost.answers == faulty.answers_delivered
    return read_trace(run_dir / TRACE_FILE)


# Write-site x fault-kind sweep: every durable artifact of the run
# directory crossed with every crash point of the write discipline.
# ``skip`` picks a mid-run occurrence of the site (0 for write-once
# artifacts).
_SWEEP = [
    (CHECKPOINT_FILE, "torn_write", 1),
    (CHECKPOINT_FILE, "crash_before", 1),
    (CHECKPOINT_FILE, "crash_after", 1),
    ("checkpoint-", "torn_write", 1),       # a generation copy
    ("metrics.json", "crash_before", 1),
    ("spans.jsonl", "crash_after", 1),
    (CANDIDATES_FILE, "torn_write", 0),     # written exactly once
    ("MANIFEST.json", "crash_after", 2),
]


class TestCrashSweep:
    """Kill the write at each site and hook point; resume bit-identical."""

    @pytest.mark.parametrize(("site", "kind", "skip"), _SWEEP)
    def test_resume_is_bit_identical(self, scenario, tmp_path,
                                     site, kind, skip):
        run_dir = tmp_path / "run"
        _crash_run(scenario, run_dir, site, kind, skip)
        _resume_and_check(scenario, run_dir)

    def test_enospc_is_a_real_oserror_and_run_dir_stays_resumable(
            self, scenario, tmp_path):
        _, dataset, config, crowd, _ = scenario
        run_dir = tmp_path / "run"
        gateway, _ = accounted_stack(crowd())
        injector = StorageFaultInjector(seed=STORAGE_SEED)
        injector.arm("enospc", CHECKPOINT_FILE, skip=1)
        with injector, pytest.raises(OSError) as excinfo:
            Corleone(config, gateway, seed=123, run_dir=run_dir).run(
                dataset.table_a, dataset.table_b, dataset.seed_labels)
        assert excinfo.value.errno == errno.ENOSPC
        _resume_and_check(scenario, run_dir)


class TestArtifactEventsAndManifest:
    """The happy path: writes are evented and the manifest verifies."""

    def test_clean_run_traces_writes_and_manifests_artifacts(
            self, scenario, tmp_path):
        _, dataset, config, crowd, golden_report = scenario
        run_dir = tmp_path / "run"
        gateway, _ = accounted_stack(crowd())
        result = Corleone(config, gateway, seed=123, run_dir=run_dir).run(
            dataset.table_a, dataset.table_b, dataset.seed_labels)
        assert persistence.result_report(result) == golden_report

        written = [event for event in read_trace(run_dir / TRACE_FILE)
                   if event.name == EVENT_ARTIFACT_WRITTEN]
        assert written  # every checkpoint cycle emits its artifacts
        names = {event.payload["artifact"] for event in written}
        assert CHECKPOINT_FILE in names
        assert CANDIDATES_FILE in names

        manifest = load_manifest(run_dir)
        assert manifest is not None
        assert RUN_FILE in manifest
        # The final export rewrites checkpoint.json's siblings after
        # the last event, so spot-check the write-once artifact's sha.
        event_sha = next(event.payload["sha256"] for event in written
                         if event.payload["artifact"] == CANDIDATES_FILE)
        assert manifest[CANDIDATES_FILE]["sha256"] == event_sha
        # Telemetry exports: mid-run snapshots are volatile and
        # unmanifested, but the run-end export records the final bytes.
        for name in ("metrics.json", "spans.jsonl"):
            assert manifest[name]["sha256"] == \
                file_sha256(run_dir / name)
        for advisory in ("profile.json", "progress.json"):
            assert advisory not in manifest


class TestBitRotRecovery:
    """At-rest corruption: quarantine, fall back, surface events."""

    def test_checkpoint_bitflip_falls_back_to_generation(
            self, scenario, tmp_path):
        run_dir = tmp_path / "run"
        injector = _crash_run(scenario, run_dir, CHECKPOINT_FILE,
                              "crash_after", skip=2)
        injector.flip_bit(run_dir / CHECKPOINT_FILE)

        trace = _resume_and_check(scenario, run_dir)
        names = {event.name for event in trace}
        assert EVENT_ARTIFACT_CORRUPT in names
        assert EVENT_ARTIFACT_QUARANTINED in names
        assert EVENT_CHECKPOINT_FALLBACK in names
        assert (run_dir / QUARANTINE_DIR / CHECKPOINT_FILE).exists()

    def test_all_generations_corrupt_restarts_deterministically(
            self, scenario, tmp_path):
        run_dir = tmp_path / "run"
        _crash_run(scenario, run_dir, CHECKPOINT_FILE,
                   "crash_before", skip=2)
        (run_dir / CHECKPOINT_FILE).write_text("garbage")
        for path in (run_dir / "generations").glob("checkpoint-*.json"):
            path.write_text("garbage")

        trace = _resume_and_check(scenario, run_dir)
        names = {event.name for event in trace}
        assert EVENT_ARTIFACT_QUARANTINED in names
        # Nothing to fall back to: the run restarted from run.json, so
        # no fallback event — just the quarantines.
        assert EVENT_CHECKPOINT_FALLBACK not in names

    def test_corrupt_candidates_is_unrecoverable_and_typed(
            self, scenario, tmp_path):
        run_dir = tmp_path / "run"
        injector = _crash_run(scenario, run_dir, CHECKPOINT_FILE,
                              "crash_after", skip=2)
        injector.flip_bit(run_dir / CANDIDATES_FILE)

        _, dataset, config, crowd, _ = scenario
        gateway, _ = accounted_stack(crowd())
        with pytest.raises(DataError) as excinfo:
            Corleone.resume(run_dir, gateway)
        message = str(excinfo.value)
        assert CANDIDATES_FILE in message
        assert "sha256" in message
        assert (run_dir / QUARANTINE_DIR / CANDIDATES_FILE).exists()

    def test_corrupt_run_inputs_is_unrecoverable_and_typed(
            self, scenario, tmp_path):
        run_dir = tmp_path / "run"
        injector = _crash_run(scenario, run_dir, CHECKPOINT_FILE,
                              "crash_after", skip=1)
        injector.flip_bit(run_dir / RUN_FILE)

        _, dataset, config, crowd, _ = scenario
        gateway, _ = accounted_stack(crowd())
        with pytest.raises(DataError) as excinfo:
            Corleone.resume(run_dir, gateway)
        assert RUN_FILE in str(excinfo.value)


class TestResumeHygiene:
    """Sweep the litter, repair the tail, note it in the trace."""

    def test_stale_tmp_litter_is_swept_on_resume(self, scenario, tmp_path):
        run_dir = tmp_path / "run"
        injector = _crash_run(scenario, run_dir, CHECKPOINT_FILE,
                              "crash_before", skip=1)
        # The crash itself left checkpoint.json.tmp; pile on the kind of
        # junk a few more dead predecessors would leave.
        injector.scatter_stale_tmp(run_dir, count=2)
        injector.scatter_stale_tmp(run_dir / "generations", count=1)
        assert list(run_dir.rglob("*.tmp"))

        _resume_and_check(scenario, run_dir)
        assert not list(run_dir.rglob("*.tmp"))

    def test_torn_trace_tail_is_repaired_and_evented(
            self, scenario, tmp_path):
        run_dir = tmp_path / "run"
        _crash_run(scenario, run_dir, CHECKPOINT_FILE,
                   "crash_after", skip=1)
        with open(run_dir / TRACE_FILE, "ab") as handle:
            handle.write(b'{"sequence": 999, "event": "torn')

        trace = _resume_and_check(scenario, run_dir)
        torn = [event for event in trace
                if event.name == EVENT_TRACE_TORN]
        assert len(torn) == 1
        assert torn[0].payload["bytes_truncated"] == len(
            b'{"sequence": 999, "event": "torn')
