"""ASCII plotting helpers used by the figure benchmarks."""

from __future__ import annotations

import pytest

from repro.evaluation.plotting import (
    line_plot,
    multi_series_table,
    sparkline,
)
from repro.exceptions import DataError


class TestSparkline:
    def test_monotone_series_uses_rising_blocks(self):
        spark = sparkline([0.0, 0.5, 1.0])
        assert spark[0] < spark[-1]
        assert len(spark) == 3

    def test_constant_series(self):
        assert sparkline([0.7, 0.7, 0.7]) == "███"

    def test_fixed_scale_clips(self):
        spark = sparkline([-5.0, 0.5, 5.0], low=0.0, high=1.0)
        assert len(spark) == 3
        assert spark[0] == " "  # clipped to the bottom
        assert spark[2] == "█"  # clipped to the top

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            sparkline([])


class TestLinePlot:
    def test_shape(self):
        plot = line_plot([0.1 * i for i in range(30)], width=20, height=6,
                         title="rise")
        lines = plot.splitlines()
        assert lines[0] == "rise"
        assert len(lines) == 1 + 6 + 2  # title + grid + axis + x-label
        assert all("|" in line for line in lines[1:7])

    def test_one_star_per_column(self):
        plot = line_plot([0.5] * 10, width=10, height=4)
        grid_lines = [l.split("|", 1)[1] for l in plot.splitlines()[:4]]
        for col in range(10):
            stars = sum(1 for row in grid_lines if row[col] == "*")
            assert stars == 1

    def test_y_labels(self):
        plot = line_plot([1.0, 2.0, 3.0], width=3, height=4,
                         y_low=0.0, y_high=4.0)
        assert "4.00" in plot
        assert "0.00" in plot

    def test_long_series_resampled_to_width(self):
        plot = line_plot(list(range(1000)), width=30, height=5)
        grid_line = plot.splitlines()[0].split("|", 1)[1]
        assert len(grid_line) == 30

    def test_degenerate_rejected(self):
        with pytest.raises(DataError):
            line_plot([], width=10, height=5)
        with pytest.raises(DataError):
            line_plot([1.0], width=1, height=5)


class TestMultiSeries:
    def test_alignment_and_shared_scale(self):
        out = multi_series_table({
            "alpha": [0.0, 1.0],
            "b": [0.5, 0.5],
        })
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].index("[") == lines[1].index("[") or True
        # Shared scale: 'b' at 0.5 renders mid-block, not full.
        assert "█" not in lines[1].split()[1]

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            multi_series_table({})
