"""Accuracy estimation (Section 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    BlockerConfig,
    CorleoneConfig,
    EstimatorConfig,
    ForestConfig,
)
from repro.core.estimator import AccuracyEstimate, AccuracyEstimator
from repro.crowd.service import LabelingService
from repro.crowd.simulated import PerfectCrowd
from repro.data.pairs import CandidateSet, Pair
from repro.forest.forest import train_forest
from repro.metrics import confusion_from_labels


def skewed_candidates(n: int = 3000, density: float = 0.02, seed: int = 0):
    """A candidate set whose positives live at high f0+f1."""
    rng = np.random.default_rng(seed)
    features = rng.random((n, 4))
    score = features[:, 0] * features[:, 1]
    threshold = np.quantile(score, 1.0 - density)
    labels = score > threshold
    pairs = [Pair(f"a{i}", f"b{i}") for i in range(n)]
    matches = {pairs[i] for i in np.flatnonzero(labels)}
    return CandidateSet(pairs, features, list("wxyz")), matches, labels


def make_estimator(matches, probe_size=40, max_probes=120,
                   seed=1) -> tuple[AccuracyEstimator, LabelingService]:
    config = CorleoneConfig(
        forest=ForestConfig(n_trees=5),
        blocker=BlockerConfig(t_b=10_000, max_labels_per_rule=80),
        estimator=EstimatorConfig(probe_size=probe_size,
                                  max_probes=max_probes),
    )
    crowd = PerfectCrowd(matches, rng=np.random.default_rng(seed))
    service = LabelingService(crowd, config.crowd)
    return AccuracyEstimator(config, service, np.random.default_rng(seed)), service


class TestBaselineSampling:
    """Without a forest the estimator is plain incremental sampling."""

    def test_perfect_predictions_estimated_high(self):
        candidates, matches, labels = skewed_candidates(n=800, density=0.1)
        estimator, _ = make_estimator(matches)
        estimate = estimator.estimate(candidates, labels, forest=None)
        assert estimate.converged
        assert estimate.precision >= 0.9
        assert estimate.recall >= 0.9

    def test_bad_predictions_estimated_low(self):
        candidates, matches, labels = skewed_candidates(n=800, density=0.1)
        estimator, _ = make_estimator(matches)
        # Predict the complement: zero precision and recall.
        estimate = estimator.estimate(candidates, ~labels, forest=None)
        assert estimate.precision <= 0.1
        assert estimate.recall <= 0.1

    def test_margins_reported(self):
        candidates, matches, labels = skewed_candidates(n=600, density=0.1)
        estimator, _ = make_estimator(matches)
        estimate = estimator.estimate(candidates, labels, forest=None)
        assert estimate.eps_precision <= 0.05
        assert estimate.eps_recall <= 0.05


class TestReductionEstimation:
    def _forest(self, candidates, labels, seed=0):
        rng = np.random.default_rng(seed)
        rows = rng.choice(len(candidates), size=400, replace=False)
        # Balance the training set so the forest learns both classes.
        pos = np.flatnonzero(labels)
        rows = np.concatenate([rows, pos[:50]])
        return train_forest(candidates.features[rows], labels[rows],
                            ForestConfig(), rng)

    def test_estimate_close_to_truth(self):
        candidates, matches, labels = skewed_candidates(
            n=4000, density=0.02
        )
        forest = self._forest(candidates, labels)
        predictions = forest.predict(candidates.features)
        truth = confusion_from_labels(predictions, labels)

        estimator, _ = make_estimator(matches)
        estimate = estimator.estimate(candidates, predictions, forest)
        assert estimate.precision == pytest.approx(truth.precision,
                                                   abs=0.12)
        assert estimate.recall == pytest.approx(truth.recall, abs=0.12)

    def test_reduction_saves_labels_vs_baseline(self):
        """The headline claim of Section 6: far fewer labels with rules."""
        candidates, matches, labels = skewed_candidates(
            n=4000, density=0.02
        )
        forest = self._forest(candidates, labels)
        predictions = forest.predict(candidates.features)

        with_rules, service_rules = make_estimator(matches)
        est_rules = with_rules.estimate(candidates, predictions, forest)

        without_rules, service_plain = make_estimator(matches)
        est_plain = without_rules.estimate(candidates, predictions, None)

        assert est_rules.n_labeled < est_plain.n_labeled

    def test_certified_rules_reused_free(self):
        candidates, matches, labels = skewed_candidates(
            n=3000, density=0.02
        )
        forest = self._forest(candidates, labels)
        predictions = forest.predict(candidates.features)

        first, service = make_estimator(matches)
        est1 = first.estimate(candidates, predictions, forest)
        accepted = [ev for ev in est1.rule_evaluations if ev.accepted]
        if not accepted:
            pytest.skip("no rules were certified on this seed")

        # Re-estimating with the certified rules available costs less.
        second, _ = make_estimator(matches, seed=9)
        est2 = second.estimate(candidates, predictions, forest,
                               certified=accepted)
        assert est2.n_labeled <= est1.n_labeled
        assert est2.applied_rules  # certified rules were re-applied

    def test_removed_positives_depress_recall(self):
        """A certified-but-imperfect rule must not inflate recall."""
        candidates, matches, labels = skewed_candidates(
            n=2000, density=0.05
        )
        forest = self._forest(candidates, labels)
        predictions = forest.predict(candidates.features)
        estimator, _ = make_estimator(matches)
        estimate = estimator.estimate(candidates, predictions, forest)
        truth = confusion_from_labels(predictions, labels)
        # The recall estimate must not exceed truth by a large margin.
        assert estimate.recall <= truth.recall + 0.15


class TestEdgeCases:
    def test_all_negative_predictions(self):
        candidates, matches, labels = skewed_candidates(n=400, density=0.1)
        estimator, _ = make_estimator(matches)
        estimate = estimator.estimate(
            candidates, np.zeros(len(candidates), dtype=bool), None
        )
        assert estimate.precision == 0.0
        assert estimate.recall == 0.0

    def test_tiny_candidate_set_fully_sampled(self):
        candidates, matches, labels = skewed_candidates(n=60, density=0.2)
        estimator, service = make_estimator(matches)
        estimate = estimator.estimate(candidates, labels, None)
        assert estimate.converged
        # Everything sampled -> margins are exactly zero.
        assert estimate.eps_precision == 0.0
        assert estimate.eps_recall == 0.0

    def test_probe_cap_terminates(self):
        candidates, matches, labels = skewed_candidates(
            n=4000, density=0.005
        )
        estimator, _ = make_estimator(matches, probe_size=10, max_probes=3)
        estimate = estimator.estimate(candidates, labels, None)
        assert estimate.n_probes <= 3
        assert not estimate.converged

    def test_f1_property(self):
        estimate = AccuracyEstimate(
            precision=0.8, recall=0.6, eps_precision=0.01,
            eps_recall=0.01, n_labeled=0, n_probes=0, density=0.1,
            converged=True,
        )
        assert estimate.f1 == pytest.approx(2 * 0.8 * 0.6 / 1.4)
