"""The observability subsystem: registry, spans, exporters, CLI, identity.

Four layers: unit tests for the metric registry and span tracer,
golden tests for the Prometheus text exposition and the ``obs report``
rendering, CLI contract tests for ``python -m repro.obs``, and the
subsystem's headline property — a seeded run, its replay and a
kill/resume at *every* checkpoint all leave byte-identical
``metrics.json`` and ``spans.jsonl`` in the run directory.
"""

from __future__ import annotations

import dataclasses
import http.client
import json
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.config import (
    BlockerConfig,
    CorleoneConfig,
    EstimatorConfig,
    ForestConfig,
    LocatorConfig,
    MatcherConfig,
)
from repro.core.pipeline import Corleone
from repro.crowd.simulated import SimulatedCrowd
from repro.engine.events import (
    EVENT_BUDGET_SPENT,
    EVENT_CHECKPOINT_WRITTEN,
    EVENT_LABELS_PURCHASED,
    EVENT_SHARD_COMPLETED,
    EVENT_SHARD_STARTED,
    EVENT_STAGE_FINISHED,
    EVENT_STAGE_STARTED,
    Event,
)
from repro.exceptions import DataError
from repro.obs import MetricsRegistry, SpanTracer, render_prometheus
from repro.obs import profiling
from repro.obs.__main__ import main as obs_main
from repro.obs.diffing import diff_runs, render_diff
from repro.obs.progress import ProgressHeartbeat, read_progress
from repro.obs.report import effective_trace, render_report, render_watch
from repro.obs.serve import build_server
from repro.obs.spans import read_spans
from repro.obs.tail import TraceTail
from repro.obs.telemetry import (
    METRICS_FORMAT,
    METRICS_VERSION,
    RunTelemetry,
    build_catalog,
)
from repro.synth.restaurants import generate_restaurants


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_accumulates_and_rejects_negative(self):
        reg = MetricsRegistry()
        reg.counter("c_total")
        reg.get("c_total").inc()
        reg.get("c_total").inc(4)
        assert reg.snapshot()["c_total"]["series"][0]["value"] == 5
        with pytest.raises(DataError):
            reg.get("c_total").inc(-1)

    def test_labelled_series_are_independent_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("c_total", label_names=("kind",))
        reg.get("c_total").inc(kind="zz")
        reg.get("c_total").inc(2, kind="aa")
        series = reg.snapshot()["c_total"]["series"]
        assert [s["labels"]["kind"] for s in series] == ["aa", "zz"]
        assert [s["value"] for s in series] == [2, 1]

    def test_wrong_label_set_rejected(self):
        reg = MetricsRegistry()
        reg.counter("c_total", label_names=("kind",))
        with pytest.raises(DataError):
            reg.get("c_total").inc(flavour="x")

    def test_histogram_buckets_render_cumulatively(self):
        reg = MetricsRegistry()
        reg.histogram("h", (1.0, 5.0))
        for value in (0.5, 3.0, 99.0):
            reg.get("h").observe(value)
        series = reg.snapshot()["h"]["series"][0]
        assert series["buckets"] == [
            {"le": "1", "count": 1},
            {"le": "5", "count": 2},
            {"le": "+Inf", "count": 3},
        ]
        assert series["count"] == 3
        assert series["sum"] == pytest.approx(102.5)

    def test_reregistering_same_kind_returns_family(self):
        reg = MetricsRegistry()
        family = reg.gauge("g")
        assert reg.gauge("g") is family
        with pytest.raises(DataError):
            reg.counter("g")

    def test_unknown_metric_errors(self):
        with pytest.raises(DataError):
            MetricsRegistry().get("nope")

    def test_state_round_trip_preserves_snapshot(self):
        reg = MetricsRegistry()
        build_catalog(reg)
        reg.get("corleone_labels_purchased_total").inc(3, strong="true")
        reg.get("corleone_best_f1").set(0.91)
        reg.get("corleone_entropy_pool_size").observe(40)
        state = json.loads(json.dumps(reg.state_dict()))  # JSON round trip

        other = MetricsRegistry()
        build_catalog(other)
        other.get("corleone_checkpoints_total").inc(99)  # must be reset
        other.load_state(state)
        assert other.snapshot() == reg.snapshot()

    def test_load_state_rejects_unknown_metrics(self):
        reg = MetricsRegistry()
        build_catalog(reg)
        with pytest.raises(DataError):
            reg.load_state({"not_in_catalog": [[[], 1]]})


# ----------------------------------------------------------------------
# Span tracer
# ----------------------------------------------------------------------


class _TickClock:
    """A fake simulated clock advancing 1.5s per read."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        self._now += 1.5
        return self._now


class TestSpanTracer:
    def test_nesting_assigns_parents(self):
        tracer = SpanTracer()
        root = tracer.start("run", mode="full")
        stage = tracer.start("stage", stage="block")
        tracer.end(stage)
        tracer.end(root)
        spans = {span["name"]: span for span in tracer.completed}
        assert spans["run"]["parent"] is None
        assert spans["stage"]["parent"] == spans["run"]["id"]

    def test_end_enforces_innermost(self):
        tracer = SpanTracer()
        root = tracer.start("run")
        tracer.start("stage")
        with pytest.raises(DataError):
            tracer.end(root)

    def test_durations_come_from_the_clock(self):
        tracer = SpanTracer(clock=_TickClock())
        with tracer.span("stage", stage="block"):
            pass
        (span,) = tracer.completed
        assert span["start_time"] == pytest.approx(1.5)
        assert span["end_time"] == pytest.approx(3.0)
        assert span["duration"] == pytest.approx(1.5)

    def test_close_all_open_unwinds_in_order(self):
        tracer = SpanTracer()
        tracer.start("run")
        tracer.start("stage")
        tracer.close_all_open()
        assert [span["name"] for span in tracer.completed] == \
            ["stage", "run"]
        assert tracer.open_depth == 0

    def test_state_round_trip_preserves_open_spans(self):
        tracer = SpanTracer()
        tracer.start("run")
        stage = tracer.start("stage", stage="train_matcher")
        state = json.loads(json.dumps(tracer.state_dict()))

        other = SpanTracer()
        other.load_state(state)
        assert other.open_depth == 2
        assert other.innermost_open["attrs"] == {"stage": "train_matcher"}
        assert other.lines() == []
        other.end(stage)  # the restored id is still the innermost
        assert [json.loads(line)["id"] for line in other.lines()] == [stage]


# ----------------------------------------------------------------------
# Profiling hooks
# ----------------------------------------------------------------------


class TestProfiling:
    def test_inactive_section_is_a_pass_through(self):
        with profiling.profile_section("anything"):
            pass  # must not raise, must not need a profiler

    def test_active_profiler_accumulates(self):
        profiler = profiling.Profiler()
        profiling.activate(profiler)
        try:
            with profiling.profile_section("s"):
                pass
            with profiling.profile_section("s"):
                pass
        finally:
            profiling.deactivate(profiler)
        document = profiler.to_dict()
        assert document["deterministic"] is False
        assert document["sections"]["s"]["calls"] == 2


# ----------------------------------------------------------------------
# Golden: Prometheus text exposition
# ----------------------------------------------------------------------

_PROMETHEUS_GOLDEN = """\
# HELP demo_gauge Level.
# TYPE demo_gauge gauge
demo_gauge 2.5
# HELP demo_seconds Durations.
# TYPE demo_seconds histogram
demo_seconds_bucket{le="1"} 1
demo_seconds_bucket{le="5"} 2
demo_seconds_bucket{le="+Inf"} 3
demo_seconds_sum 102.5
demo_seconds_count 3
# HELP demo_total Things counted.
# TYPE demo_total counter
demo_total{kind="a"} 2
demo_total{kind="b"} 3
"""


class TestPrometheusExposition:
    def test_golden(self):
        reg = MetricsRegistry()
        reg.counter("demo_total", "Things counted.", label_names=("kind",))
        reg.gauge("demo_gauge", "Level.")
        reg.histogram("demo_seconds", (1.0, 5.0), "Durations.")
        reg.get("demo_total").inc(kind="a")
        reg.get("demo_total").inc(kind="a")
        reg.get("demo_total").inc(3, kind="b")
        reg.get("demo_gauge").set(2.5)
        for value in (0.5, 3.0, 99.0):
            reg.get("demo_seconds").observe(value)
        assert render_prometheus(reg.snapshot()) == _PROMETHEUS_GOLDEN

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c_total", label_names=("kind",))
        reg.get("c_total").inc(kind='a"b\\c')
        rendered = render_prometheus(reg.snapshot())
        assert 'c_total{kind="a\\"b\\\\c"} 1' in rendered

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""


# ----------------------------------------------------------------------
# Golden: obs report
# ----------------------------------------------------------------------


def _write_fixture_run(run_dir: Path) -> None:
    """A hand-written run directory exercising every report section."""
    run_dir.mkdir(parents=True, exist_ok=True)
    reg = MetricsRegistry()
    build_catalog(reg)
    reg.get("corleone_budget_dollars").set(10.0)
    reg.get("corleone_dollars_spent_total").inc(2.4)
    reg.get("corleone_answers_total").inc(24)
    reg.get("corleone_labels_purchased_total").inc(7, strong="true")
    reg.get("corleone_labels_purchased_total").inc(1, strong="false")
    reg.get("corleone_hits_posted_total").inc(9)
    reg.get("corleone_hits_reposted_total").inc(1)
    reg.get("corleone_faults_injected_total").inc(2, kind="timeout")
    reg.get("corleone_retries_scheduled_total").inc(2, kind="timeout")
    (run_dir / "metrics.json").write_text(json.dumps(
        {"format": METRICS_FORMAT, "version": METRICS_VERSION,
         "metrics": reg.snapshot()}, indent=2, sort_keys=True))

    trace = [
        {"event": "stage_started", "sequence": 0, "stage": "block",
         "iteration": 0},
        {"event": "labels_purchased", "sequence": 1, "pair": ["a", "b"],
         "strong": True},
        {"event": "budget_spent", "sequence": 2, "dollars": 0.4,
         "answers": 4},
        {"event": "fault_injected", "sequence": 3, "kind": "timeout"},
        {"event": "stage_finished", "sequence": 4, "stage": "block",
         "next_stage": "train_matcher", "dollars": 0.4},
        {"event": "stage_started", "sequence": 5, "stage": "train_matcher",
         "iteration": 0},
        {"event": "budget_spent", "sequence": 6, "dollars": 2.0,
         "answers": 20},
        {"event": "stage_finished", "sequence": 7, "stage": "train_matcher",
         "next_stage": None, "dollars": 2.4},
    ]
    (run_dir / "trace.jsonl").write_text(
        "".join(json.dumps(event, sort_keys=True) + "\n"
                for event in trace))

    spans = [
        {"id": 1, "parent": 0, "name": "stage",
         "attrs": {"stage": "block", "iteration": 0},
         "start_time": 0.0, "end_time": 12.5, "duration": 12.5},
        {"id": 3, "parent": 2, "name": "matcher_iteration",
         "attrs": {"iteration": 0, "al_step": 1},
         "start_time": 12.5, "end_time": 20.0, "duration": 7.5},
        {"id": 4, "parent": 2, "name": "matcher_iteration",
         "attrs": {"iteration": 0, "al_step": 2},
         "start_time": 20.0, "end_time": 30.0, "duration": 10.0},
        {"id": 2, "parent": 0, "name": "stage",
         "attrs": {"stage": "train_matcher", "iteration": 0},
         "start_time": 12.5, "end_time": 32.5, "duration": 20.0},
        {"id": 0, "parent": None, "name": "run",
         "attrs": {"mode": "full"},
         "start_time": 0.0, "end_time": 32.5, "duration": 32.5},
    ]
    (run_dir / "spans.jsonl").write_text(
        "".join(json.dumps(span, sort_keys=True) + "\n" for span in spans))

    (run_dir / "profile.json").write_text(json.dumps({
        "format": "corleone-profile", "deterministic": False,
        "note": "wall-clock", "sections": {
            "forest.train_forest": {"calls": 12, "seconds": 0.345678}}},
        indent=2, sort_keys=True))
    (run_dir / "checkpoint.json").write_text(json.dumps({
        "index": 3, "state": {"mode": "full", "stop_reason": "converged",
                              "iteration": 2}}))


_REPORT_GOLDEN = """\
Corleone run report — golden_run
mode: full | stop: converged | iterations: 2 | checkpoints: 4

stages
stage          runs  labels  dollars  faults  sim_s
-------------  ----  ------  -------  ------  -----
block             1       1     0.40       1   12.5
train_matcher     1       0     2.00       0   20.0

budget burn
  spent $2.40 of $10.00 (24.0%) | answers 24 | pairs labelled 8 \
| HITs 9 (1 reposted)

faults and retries
what   kind     count
-----  -------  -----
fault  timeout      2
retry  timeout      2

matcher iterations
iteration  al_steps  sim_s
---------  --------  -----
0                 2   17.5

wall-clock profile (non-deterministic)
section              calls  seconds
-------------------  -----  -------
forest.train_forest     12    0.346
"""


class TestObsReport:
    def test_golden(self, tmp_path):
        run_dir = tmp_path / "golden_run"
        _write_fixture_run(run_dir)
        assert render_report(run_dir) == _REPORT_GOLDEN

    def test_effective_trace_last_occurrence_wins(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            json.dumps({"event": "stage_started", "sequence": 0,
                        "stage": "killed_version"}) + "\n"
            + json.dumps({"event": "stage_started", "sequence": 0,
                          "stage": "resumed_version"}) + "\n")
        (event,) = effective_trace(path)
        assert event["stage"] == "resumed_version"

    def test_empty_run_dir_still_renders(self, tmp_path):
        text = render_report(tmp_path)
        assert "budget burn" in text  # degrades, never crashes


# ----------------------------------------------------------------------
# CLI contract
# ----------------------------------------------------------------------


class TestObsCli:
    def test_report_command(self, tmp_path, capsys):
        run_dir = tmp_path / "golden_run"
        _write_fixture_run(run_dir)
        assert obs_main(["report", str(run_dir)]) == 0
        assert capsys.readouterr().out == _REPORT_GOLDEN

    def test_prom_command(self, tmp_path, capsys):
        run_dir = tmp_path / "golden_run"
        _write_fixture_run(run_dir)
        assert obs_main(["prom", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE corleone_dollars_spent_total counter" in out
        assert "corleone_dollars_spent_total 2.4" in out

    def test_missing_run_dir_exits_2(self, tmp_path, capsys):
        assert obs_main(["report", str(tmp_path / "nope")]) == 2
        assert obs_main(["prom", str(tmp_path)]) == 2  # no metrics.json


# ----------------------------------------------------------------------
# The headline property: byte-identical telemetry across kill/resume
# ----------------------------------------------------------------------


def _identity_config() -> CorleoneConfig:
    return CorleoneConfig(
        forest=ForestConfig(n_trees=5),
        blocker=BlockerConfig(t_b=1500, top_k_rules=10,
                              max_labels_per_rule=60),
        matcher=MatcherConfig(batch_size=10, pool_size=40,
                              n_converged=8, n_degrade=6,
                              max_iterations=12),
        estimator=EstimatorConfig(probe_size=25, max_probes=30),
        locator=LocatorConfig(min_difficult_pairs=30),
        max_pipeline_iterations=2,
        seed=0,
    )


class _Killed(Exception):
    """Raised by the killer sink to simulate a crash at a checkpoint."""


def _killer_sink(surviving_checkpoints: int):
    seen = [0]

    def sink(event):
        if event.name == EVENT_CHECKPOINT_WRITTEN:
            seen[0] += 1
            if seen[0] > surviving_checkpoints:
                raise _Killed()

    return sink


def _telemetry_bytes(run_dir: Path) -> tuple[bytes, bytes]:
    return ((run_dir / "metrics.json").read_bytes(),
            (run_dir / "spans.jsonl").read_bytes())


@pytest.fixture(scope="module")
def identity_scenario(tmp_path_factory):
    """Dataset, config, crowd factory and one golden checkpointed run."""
    dataset = generate_restaurants(n_a=60, n_b=40, n_matches=15, seed=7)
    config = _identity_config()

    def crowd():
        return SimulatedCrowd(dataset.matches, error_rate=0.05,
                              rng=np.random.default_rng(11))

    golden_dir = tmp_path_factory.mktemp("obs_identity") / "golden"
    Corleone(config, crowd(), seed=123, run_dir=golden_dir).run(
        dataset.table_a, dataset.table_b, dataset.seed_labels)
    return dataset, config, crowd, golden_dir


class TestTelemetryByteIdentity:
    def test_run_dir_has_all_telemetry_artifacts(self, identity_scenario):
        _, _, _, golden_dir = identity_scenario
        for name in ("metrics.json", "spans.jsonl", "profile.json"):
            assert (golden_dir / name).is_file(), name
        document = json.loads((golden_dir / "metrics.json").read_text())
        assert document["format"] == METRICS_FORMAT
        metrics = document["metrics"]
        stages = {s["labels"]["stage"]: s["value"]
                  for s in metrics["corleone_stage_runs_total"]["series"]}
        assert stages["block"] == 1
        assert stages["train_matcher"] >= 1
        assert metrics["corleone_checkpoints_total"]["series"][0]["value"] \
            == json.loads(
                (golden_dir / "checkpoint.json").read_text())["index"] + 1
        assert metrics["corleone_trees_trained_total"]["series"][0][
            "value"] > 0

    def test_spans_form_a_rooted_tree(self, identity_scenario):
        from repro.obs import read_spans
        _, _, _, golden_dir = identity_scenario
        spans = read_spans(golden_dir / "spans.jsonl")
        by_id = {span["id"]: span for span in spans}
        roots = [span for span in spans if span["parent"] is None]
        assert [root["name"] for root in roots] == ["run"]
        for span in spans:
            if span["parent"] is not None:
                assert span["parent"] in by_id
            assert span["duration"] >= 0

    def test_replay_is_byte_identical(self, identity_scenario, tmp_path):
        dataset, config, crowd, golden_dir = identity_scenario
        replay_dir = tmp_path / "replay"
        Corleone(config, crowd(), seed=123, run_dir=replay_dir).run(
            dataset.table_a, dataset.table_b, dataset.seed_labels)
        assert _telemetry_bytes(replay_dir) == _telemetry_bytes(golden_dir)

    def test_kill_resume_is_byte_identical_at_every_checkpoint(
            self, identity_scenario, tmp_path):
        dataset, config, crowd, golden_dir = identity_scenario
        golden = _telemetry_bytes(golden_dir)
        n_checkpoints = json.loads(
            (golden_dir / "checkpoint.json").read_text())["index"] + 1
        assert n_checkpoints >= 5

        for kill_at in range(n_checkpoints):
            run_dir = tmp_path / f"kill{kill_at}"
            pipeline = Corleone(config, crowd(), seed=123, run_dir=run_dir)
            pipeline.bus.subscribe(_killer_sink(kill_at))
            with pytest.raises(_Killed):
                pipeline.run(dataset.table_a, dataset.table_b,
                             dataset.seed_labels)
            Corleone.resume(run_dir, crowd())
            assert _telemetry_bytes(run_dir) == golden, (
                f"telemetry diverged after a kill at checkpoint {kill_at}"
            )

    def test_report_smoke_on_a_real_run_dir(self, identity_scenario,
                                            capsys):
        _, _, _, golden_dir = identity_scenario
        assert obs_main(["report", str(golden_dir)]) == 0
        out = capsys.readouterr().out
        assert "stages" in out and "budget burn" in out
        assert "matcher iterations" in out
        assert "wall-clock profile" in out

    def test_telemetry_can_be_disabled(self, tmp_path):
        dataset = generate_restaurants(n_a=30, n_b=20, n_matches=8, seed=7)
        config = _identity_config()
        crowd = SimulatedCrowd(dataset.matches, error_rate=0.0,
                               rng=np.random.default_rng(11))
        run_dir = tmp_path / "untelemetered"
        pipeline = Corleone(config, crowd, seed=123, run_dir=run_dir,
                            telemetry=False)
        pipeline.run(dataset.table_a, dataset.table_b, dataset.seed_labels)
        assert pipeline.context.telemetry is None
        assert not (run_dir / "metrics.json").exists()
        assert not (run_dir / "spans.jsonl").exists()
        assert (run_dir / "checkpoint.json").is_file()


# ----------------------------------------------------------------------
# Telemetry object plumbing
# ----------------------------------------------------------------------


class TestRunTelemetry:
    def test_stage_span_adopted_after_mid_stage_restore(self):
        telemetry = RunTelemetry()
        telemetry.open_run_span("full")
        first = telemetry.start_stage_span("train_matcher", 0)
        state = telemetry.state_dict()

        restored = RunTelemetry()
        restored.load_state(state)
        adopted = restored.start_stage_span("train_matcher", 1)
        assert adopted == first  # reused, not restarted
        runs = restored.registry.get("corleone_stage_runs_total")
        assert runs.labels(stage="train_matcher").value == 1

    def test_fresh_stage_span_counts_a_run(self):
        telemetry = RunTelemetry()
        telemetry.open_run_span("full")
        span_id = telemetry.start_stage_span("block", 0)
        telemetry.tracer.end(span_id)
        second = telemetry.start_stage_span("block", 1)
        assert second != span_id
        runs = telemetry.registry.get("corleone_stage_runs_total")
        assert runs.labels(stage="block").value == 2

    def test_checkpoint_counts_ride_inside_the_checkpoint(self):
        telemetry = RunTelemetry()
        telemetry.record_checkpoint()
        state = telemetry.state_dict()
        restored = RunTelemetry()
        restored.load_state(state)
        counter = restored.registry.get("corleone_checkpoints_total")
        assert counter.labels().value == 1


# ----------------------------------------------------------------------
# Sharded workers: per-worker telemetry + the same identity contract
# ----------------------------------------------------------------------


def _sharded_identity_config() -> CorleoneConfig:
    config = _identity_config()
    blocker = dataclasses.replace(config.blocker, executor="sharded",
                                  n_workers=4)
    return dataclasses.replace(config, blocker=blocker)


@pytest.fixture(scope="module")
def sharded_identity_scenario(tmp_path_factory):
    """The identity scenario re-run through the 4-worker sharded path."""
    dataset = generate_restaurants(n_a=60, n_b=40, n_matches=15, seed=7)
    config = _sharded_identity_config()

    def crowd():
        return SimulatedCrowd(dataset.matches, error_rate=0.05,
                              rng=np.random.default_rng(11))

    golden_dir = tmp_path_factory.mktemp("obs_sharded") / "golden"
    Corleone(config, crowd(), seed=123, run_dir=golden_dir).run(
        dataset.table_a, dataset.table_b, dataset.seed_labels)
    return dataset, config, crowd, golden_dir


class TestShardedWorkerTelemetry:
    """Worker-labelled telemetry from a real ``n_workers=4`` run."""

    def test_profile_has_per_worker_blocker_sections(
            self, sharded_identity_scenario):
        _, _, _, golden_dir = sharded_identity_scenario
        document = json.loads((golden_dir / "profile.json").read_text())
        sections = document["sections"]
        worker_sections = [name for name in sections
                           if name.startswith("worker")
                           and ".blocker." in name]
        assert worker_sections, sorted(sections)
        slots = {int(name.split(".")[0].removeprefix("worker"))
                 for name in worker_sections}
        assert slots <= set(range(4))
        assert len(slots) > 1  # the work really spread across slots
        for name in worker_sections:
            assert sections[name]["calls"] >= 1
            assert sections[name]["seconds"] >= 0.0

    def test_metrics_carry_worker_and_shard_labels(
            self, sharded_identity_scenario):
        _, _, _, golden_dir = sharded_identity_scenario
        metrics = json.loads(
            (golden_dir / "metrics.json").read_text())["metrics"]
        completed = metrics["corleone_worker_shards_completed_total"]
        assert completed["label_names"] == ["worker"]
        total = sum(s["value"] for s in completed["series"])
        assert total >= 4  # at least one shard per configured worker

        scanned = metrics["corleone_worker_shard_pairs_scanned_total"]
        assert scanned["label_names"] == ["worker", "shard"]
        assert scanned["series"], "no per-shard scan series"
        for series in scanned["series"]:
            shard = int(series["labels"]["shard"])
            worker = int(series["labels"]["worker"])
            assert worker == shard % 4  # the deterministic slot rule
        # Every scanned pair is accounted for exactly once across shards.
        assert sum(s["value"] for s in scanned["series"]) % (60 * 40) == 0

    def test_shard_spans_recorded_with_worker_attr(
            self, sharded_identity_scenario):
        _, _, _, golden_dir = sharded_identity_scenario
        spans = read_spans(golden_dir / "spans.jsonl")
        shard_spans = [s for s in spans if s["name"] == "shard"]
        assert shard_spans
        for span in shard_spans:
            assert span["attrs"]["worker"] == span["attrs"]["shard"] % 4
            assert "cached" not in span["attrs"]  # resume-variant attr

    def test_replay_is_byte_identical(self, sharded_identity_scenario,
                                      tmp_path):
        dataset, config, crowd, golden_dir = sharded_identity_scenario
        replay_dir = tmp_path / "replay"
        Corleone(config, crowd(), seed=123, run_dir=replay_dir).run(
            dataset.table_a, dataset.table_b, dataset.seed_labels)
        assert _telemetry_bytes(replay_dir) == _telemetry_bytes(golden_dir)

    def test_kill_resume_is_byte_identical_at_every_checkpoint(
            self, sharded_identity_scenario, tmp_path):
        dataset, config, crowd, golden_dir = sharded_identity_scenario
        golden = _telemetry_bytes(golden_dir)
        n_checkpoints = json.loads(
            (golden_dir / "checkpoint.json").read_text())["index"] + 1
        assert n_checkpoints >= 5

        for kill_at in range(n_checkpoints):
            run_dir = tmp_path / f"kill{kill_at}"
            pipeline = Corleone(config, crowd(), seed=123, run_dir=run_dir)
            pipeline.bus.subscribe(_killer_sink(kill_at))
            with pytest.raises(_Killed):
                pipeline.run(dataset.table_a, dataset.table_b,
                             dataset.seed_labels)
            Corleone.resume(run_dir, crowd())
            assert _telemetry_bytes(run_dir) == golden, (
                f"sharded telemetry diverged after a kill at "
                f"checkpoint {kill_at}"
            )

    def test_progress_heartbeat_written_and_finished(
            self, sharded_identity_scenario):
        _, _, _, golden_dir = sharded_identity_scenario
        progress = read_progress(golden_dir)
        assert progress is not None
        assert progress["format"] == "corleone-progress"
        assert progress["finished"] is True
        assert progress["stage"] is None
        assert progress["checkpoints"] == json.loads(
            (golden_dir / "checkpoint.json").read_text())["index"] + 1
        assert progress["shards"]["completed"] \
            == progress["shards"]["started"] > 0
        assert progress["dollars_spent"] > 0


# ----------------------------------------------------------------------
# Torn-tail tolerance: read_spans and effective_trace
# ----------------------------------------------------------------------


class TestTornTails:
    def test_read_spans_tolerates_torn_final_line(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        good = {"id": 0, "parent": None, "name": "run", "attrs": {},
                "start_time": 0.0, "end_time": 1.0, "duration": 1.0}
        path.write_text(json.dumps(good) + "\n" + '{"id": 1, "par')
        spans = read_spans(path)
        assert [span["id"] for span in spans] == [0]

    def test_read_spans_raises_on_mid_file_corruption(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        good = {"id": 0, "parent": None, "name": "run", "attrs": {},
                "start_time": 0.0, "end_time": 1.0, "duration": 1.0}
        path.write_text('{"torn":' + "\n" + json.dumps(good) + "\n")
        with pytest.raises(DataError, match="not a torn tail"):
            read_spans(path)

    def test_effective_trace_tolerates_torn_final_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            json.dumps({"event": "stage_started", "sequence": 0,
                        "stage": "block"}) + "\n"
            + '{"event": "stage_fin')
        (event,) = effective_trace(path)
        assert event["sequence"] == 0

    def test_effective_trace_raises_on_mid_file_corruption(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"event": "broken"' + "\n"
            + json.dumps({"event": "stage_started", "sequence": 0}) + "\n")
        with pytest.raises(DataError, match="not a torn tail"):
            effective_trace(path)


# ----------------------------------------------------------------------
# Prometheus exposition edge cases
# ----------------------------------------------------------------------


class TestPrometheusEdgeCases:
    def test_empty_family_renders_headers_only(self):
        reg = MetricsRegistry()
        reg.counter("quiet_total", "Never incremented.",
                    label_names=("kind",))
        rendered = render_prometheus(reg.snapshot())
        assert rendered == ("# HELP quiet_total Never incremented.\n"
                            "# TYPE quiet_total counter\n")

    def test_newline_in_label_value_is_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c_total", label_names=("kind",))
        reg.get("c_total").inc(kind="a\nb")
        rendered = render_prometheus(reg.snapshot())
        assert 'c_total{kind="a\\nb"} 1' in rendered
        assert "\na\n" not in rendered  # no raw newline leaks

    def test_labelled_histogram_buckets_carry_labels_and_inf(self):
        reg = MetricsRegistry()
        reg.histogram("h_seconds", (2.0,), label_names=("stage",))
        reg.get("h_seconds").observe(1.0, stage="block")
        reg.get("h_seconds").observe(9.0, stage="block")
        rendered = render_prometheus(reg.snapshot())
        assert 'h_seconds_bucket{stage="block",le="2"} 1' in rendered
        assert 'h_seconds_bucket{stage="block",le="+Inf"} 2' in rendered
        assert 'h_seconds_sum{stage="block"} 10' in rendered
        assert 'h_seconds_count{stage="block"} 2' in rendered


# ----------------------------------------------------------------------
# Incremental trace tailing
# ----------------------------------------------------------------------


class TestTraceTail:
    def test_missing_file_polls_empty(self, tmp_path):
        tail = TraceTail(tmp_path / "trace.jsonl")
        assert tail.poll() == []
        assert tail.effective() == []

    def test_partial_final_line_buffers_until_complete(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tail = TraceTail(path)
        first = json.dumps({"event": "a", "sequence": 0})
        second = json.dumps({"event": "b", "sequence": 1})
        path.write_text(first + "\n" + second[:7])
        records = tail.poll()
        assert [r["sequence"] for r in records] == [0]
        # The writer completes the torn line; the tail stitches it.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(second[7:] + "\n")
        records = tail.poll()
        assert [r["sequence"] for r in records] == [1]
        assert tail.invalid_lines == 0

    def test_rotation_resets_to_the_new_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tail = TraceTail(path)
        path.write_text(
            json.dumps({"event": "old", "sequence": 0}) + "\n"
            + json.dumps({"event": "old", "sequence": 1}) + "\n")
        tail.poll()
        # A fresh run reuses the directory with a shorter trace.
        path.write_text(json.dumps({"event": "new", "sequence": 0}) + "\n")
        records = tail.poll()
        assert tail.rotations == 1
        assert [r["event"] for r in records] == ["new"]
        assert [r["event"] for r in tail.effective()] == ["new"]

    def test_duplicate_sequences_latest_wins(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tail = TraceTail(path)
        path.write_text(
            json.dumps({"event": "killed", "sequence": 5}) + "\n")
        tail.poll()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(
                json.dumps({"event": "resumed", "sequence": 5}) + "\n")
        tail.poll()
        (record,) = tail.effective()
        assert record["event"] == "resumed"

    def test_invalid_complete_lines_are_counted_and_skipped(self,
                                                           tmp_path):
        path = tmp_path / "trace.jsonl"
        tail = TraceTail(path)
        path.write_text(
            "not json at all\n"
            + json.dumps({"event": "no_sequence"}) + "\n"
            + json.dumps({"event": "ok", "sequence": 2}) + "\n")
        records = tail.poll()
        assert [r["sequence"] for r in records] == [2]
        assert tail.invalid_lines == 2


# ----------------------------------------------------------------------
# Progress heartbeat
# ----------------------------------------------------------------------


def _feed(heartbeat: ProgressHeartbeat,
          events: list[tuple[str, dict]]) -> None:
    for sequence, (name, payload) in enumerate(events):
        heartbeat(Event(name=name, sequence=sequence, payload=payload))


class TestProgressHeartbeat:
    def test_event_folding_and_round_trip(self, tmp_path):
        heartbeat = ProgressHeartbeat(tmp_path, budget=10.0)
        _feed(heartbeat, [
            (EVENT_STAGE_STARTED, {"stage": "block", "iteration": 0}),
            (EVENT_SHARD_STARTED, {"shard": 0}),
            (EVENT_SHARD_STARTED, {"shard": 1}),
            (EVENT_SHARD_COMPLETED, {"shard": 0}),
            (EVENT_SHARD_COMPLETED, {"shard": 1}),
            (EVENT_LABELS_PURCHASED, {"pair": ["a", "b"], "strong": True}),
            (EVENT_BUDGET_SPENT, {"dollars": 0.4, "answers": 4}),
            (EVENT_CHECKPOINT_WRITTEN, {"index": 0, "stage": "block"}),
        ])
        document = read_progress(tmp_path)
        assert document is not None
        assert document["stage"] == "block"
        assert document["finished"] is False
        assert document["checkpoints"] == 1
        assert document["shards"] == {"started": 2, "completed": 2}
        assert document["labels_purchased"] == 1
        assert document["answers"] == 4
        assert document["dollars_spent"] == pytest.approx(0.4)
        assert document["budget_remaining"] == pytest.approx(9.6)
        assert document["sequence"] == 7

    def test_resumed_shard_events_do_not_double_count(self, tmp_path):
        heartbeat = ProgressHeartbeat(tmp_path)
        _feed(heartbeat, [
            (EVENT_SHARD_COMPLETED, {"shard": 3}),
            (EVENT_SHARD_COMPLETED, {"shard": 3}),  # resume re-emission
        ])
        assert heartbeat.document()["shards"]["completed"] == 1

    def test_stage_finished_dollars_are_authoritative(self, tmp_path):
        heartbeat = ProgressHeartbeat(tmp_path, budget=10.0)
        _feed(heartbeat, [
            (EVENT_BUDGET_SPENT, {"dollars": 0.4, "answers": 4}),
            (EVENT_STAGE_FINISHED, {"stage": "block", "dollars": 2.4,
                                    "next_stage": None}),
        ])
        document = heartbeat.document()
        assert document["finished"] is True
        assert document["stage"] is None
        assert document["dollars_spent"] == pytest.approx(2.4)

    def test_read_progress_absent_or_damaged_is_none(self, tmp_path):
        assert read_progress(tmp_path) is None
        (tmp_path / "progress.json").write_text("{ torn")
        assert read_progress(tmp_path) is None


# ----------------------------------------------------------------------
# The run monitor endpoint
# ----------------------------------------------------------------------


def _http_get(server, path: str) -> tuple[int, str]:
    host, port = server.server_address[:2]
    connection = http.client.HTTPConnection(host, port, timeout=10)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        connection.close()


@pytest.fixture()
def monitor(tmp_path):
    """A fixture run directory served on an ephemeral port."""
    run_dir = tmp_path / "served_run"
    _write_fixture_run(run_dir)
    ProgressHeartbeat(run_dir, budget=10.0).flush()
    server = build_server(run_dir, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield run_dir, server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class TestRunMonitor:
    def test_metrics_endpoint_matches_offline_rendering(self, monitor):
        run_dir, server = monitor
        status, body = _http_get(server, "/metrics")
        assert status == 200
        document = json.loads((run_dir / "metrics.json").read_text())
        assert body == render_prometheus(document["metrics"])

    def test_metrics_404_before_first_checkpoint(self, tmp_path):
        server = build_server(tmp_path, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, _ = _http_get(server, "/metrics")
            assert status == 404
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_metrics_503_on_damaged_document(self, monitor):
        run_dir, server = monitor
        (run_dir / "metrics.json").write_text("{ damaged")
        status, _ = _http_get(server, "/metrics")
        assert status == 503

    def test_progress_endpoint_serves_the_heartbeat(self, monitor):
        _, server = monitor
        status, body = _http_get(server, "/progress")
        assert status == 200
        document = json.loads(body)
        assert document["format"] == "corleone-progress"
        assert document["budget"] == 10.0

    def test_trace_endpoint_filters_by_sequence(self, monitor):
        _, server = monitor
        status, body = _http_get(server, "/trace")
        assert status == 200
        events = json.loads(body)
        assert [e["sequence"] for e in events] == list(range(8))
        status, body = _http_get(server, "/trace?after=5")
        assert [e["sequence"] for e in json.loads(body)] == [6, 7]

    def test_trace_sees_appended_events_across_requests(self, monitor):
        run_dir, server = monitor
        _http_get(server, "/trace")
        with open(run_dir / "trace.jsonl", "a", encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"event": "fault_injected", "sequence": 8,
                 "kind": "late"}) + "\n")
        _, body = _http_get(server, "/trace?after=7")
        (event,) = json.loads(body)
        assert event["kind"] == "late"

    def test_trace_rejects_non_integer_after(self, monitor):
        _, server = monitor
        status, _ = _http_get(server, "/trace?after=soon")
        assert status == 400

    def test_unknown_path_is_404(self, monitor):
        _, server = monitor
        status, body = _http_get(server, "/nope")
        assert status == 404
        assert "/metrics" in body


# ----------------------------------------------------------------------
# Cross-run diffing
# ----------------------------------------------------------------------


class TestRunDiffing:
    def test_identical_runs_diff_empty(self, tmp_path):
        run_a, run_b = tmp_path / "a", tmp_path / "b"
        _write_fixture_run(run_a)
        _write_fixture_run(run_b)
        diff = diff_runs(run_a, run_b)
        assert diff == {"metrics": [], "stages": []}
        assert "no differences" in render_diff(diff, run_a, run_b)

    def test_metric_and_stage_deltas_are_reported(self, tmp_path):
        run_a, run_b = tmp_path / "a", tmp_path / "b"
        _write_fixture_run(run_a)
        _write_fixture_run(run_b)
        # Perturb run B: bump one counter series, drop another, and
        # stretch one stage span.
        document = json.loads((run_b / "metrics.json").read_text())
        metrics = document["metrics"]
        for series in metrics["corleone_labels_purchased_total"]["series"]:
            if series["labels"]["strong"] == "true":
                series["value"] = 9
        metrics["corleone_hits_reposted_total"]["series"] = []
        (run_b / "metrics.json").write_text(json.dumps(document))
        spans = read_spans(run_b / "spans.jsonl")
        for span in spans:
            if span["attrs"].get("stage") == "block":
                span["duration"] = 99.0
        (run_b / "spans.jsonl").write_text(
            "".join(json.dumps(span, sort_keys=True) + "\n"
                    for span in spans))

        diff = diff_runs(run_a, run_b)
        by_family = {(d["family"], tuple(sorted(d["labels"].items()))): d
                     for d in diff["metrics"]}
        changed = by_family[("corleone_labels_purchased_total",
                             (("strong", "true"),))]
        assert changed["a"] == {"value": 7}
        assert changed["b"] == {"value": 9}
        dropped = by_family[("corleone_hits_reposted_total", ())]
        assert dropped["a"] == {"value": 1}
        assert dropped["b"] is None
        (stage,) = diff["stages"]
        assert stage["stage"] == "block"
        assert stage["a"] == pytest.approx(12.5)
        assert stage["b"] == pytest.approx(99.0)

        rendered = render_diff(diff, run_a, run_b)
        assert "corleone_labels_purchased_total{strong=true}" in rendered
        assert "(absent)" in rendered
        assert "block: A=12.500s  B=99.000s" in rendered

    def test_cli_exit_codes(self, tmp_path, capsys):
        run_a, run_b = tmp_path / "a", tmp_path / "b"
        _write_fixture_run(run_a)
        _write_fixture_run(run_b)
        assert obs_main(["diff", str(run_a), str(run_b)]) == 0
        assert "no differences" in capsys.readouterr().out

        document = json.loads((run_b / "metrics.json").read_text())
        document["metrics"]["corleone_answers_total"]["series"][0][
            "value"] = 999
        (run_b / "metrics.json").write_text(json.dumps(document))
        assert obs_main(["diff", str(run_a), str(run_b)]) == 1
        assert "corleone_answers_total" in capsys.readouterr().out

        assert obs_main(["diff", str(run_a),
                         str(tmp_path / "missing")]) == 2


# ----------------------------------------------------------------------
# Watch frames and the in-flight report banner
# ----------------------------------------------------------------------


class TestWatchAndInFlightReport:
    def test_watch_frame_without_progress(self):
        frame = render_watch(None, [])
        assert "waiting for progress.json" in frame

    def test_watch_frame_with_progress_and_events(self, tmp_path):
        heartbeat = ProgressHeartbeat(tmp_path, budget=10.0)
        _feed(heartbeat, [
            (EVENT_STAGE_STARTED, {"stage": "block", "iteration": 0}),
            (EVENT_SHARD_STARTED, {"shard": 0}),
            (EVENT_SHARD_COMPLETED, {"shard": 0}),
        ])
        events = [{"event": "stage_started", "sequence": 0,
                   "stage": "block"},
                  {"event": "shard_completed", "sequence": 1, "shard": 0}]
        frame = render_watch(heartbeat.document(), events, recent=1)
        assert "stage block" in frame
        assert "shards 1/1" in frame
        assert "events seen: 2" in frame
        assert "#1 shard_completed" in frame
        assert "#0 stage_started" not in frame  # recent=1 keeps the tail

    def test_report_marks_an_in_flight_run(self, tmp_path):
        run_dir = tmp_path / "inflight"
        _write_fixture_run(run_dir)
        heartbeat = ProgressHeartbeat(run_dir, budget=10.0)
        _feed(heartbeat, [
            (EVENT_STAGE_STARTED, {"stage": "train_matcher",
                                   "iteration": 1}),
        ])
        text = render_report(run_dir)
        assert "IN FLIGHT" in text
        assert "stage: train_matcher" in text
        assert "budget burn" in text  # the rest still renders

    def test_report_on_a_finished_run_has_no_banner(self, tmp_path):
        run_dir = tmp_path / "finished"
        _write_fixture_run(run_dir)
        heartbeat = ProgressHeartbeat(run_dir, budget=10.0)
        _feed(heartbeat, [
            (EVENT_STAGE_FINISHED, {"stage": "train_matcher",
                                    "dollars": 2.4, "next_stage": None}),
        ])
        assert "IN FLIGHT" not in render_report(run_dir)
