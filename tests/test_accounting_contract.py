"""Whole-pipeline accounting contracts.

These integration tests pin the promises the cost meter makes: every
paid answer corresponds to a real platform interaction (verified with a
recording platform wrapped around the crowd), each distinct pair is
counted once, and the run is hands-off — the pipeline object touches
ground truth only through the platform.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import Corleone
from repro.crowd.simulated import SimulatedCrowd
from repro.crowd.transcript import TranscriptingPlatform, group_by_question


@pytest.fixture(scope="module")
def recorded_run(request):
    from repro.synth.restaurants import generate_restaurants
    from repro.config import (
        BlockerConfig, CorleoneConfig, EstimatorConfig, ForestConfig,
        LocatorConfig, MatcherConfig,
    )
    dataset = generate_restaurants(n_a=70, n_b=50, n_matches=18, seed=23)
    config = CorleoneConfig(
        forest=ForestConfig(n_trees=5),
        blocker=BlockerConfig(t_b=2000, top_k_rules=8,
                              max_labels_per_rule=50),
        matcher=MatcherConfig(batch_size=10, pool_size=40,
                              n_converged=8, n_degrade=6,
                              max_iterations=20),
        estimator=EstimatorConfig(probe_size=20, max_probes=30),
        locator=LocatorConfig(min_difficult_pairs=25),
        max_pipeline_iterations=2,
    )
    crowd = SimulatedCrowd(dataset.matches, error_rate=0.05,
                           rng=np.random.default_rng(6))
    recorder = TranscriptingPlatform(crowd)
    pipeline = Corleone(config, recorder, rng=np.random.default_rng(7))
    result = pipeline.run(dataset.table_a, dataset.table_b,
                          dataset.seed_labels)
    return dataset, result, recorder, pipeline


class TestAccountingContract:
    def test_every_paid_answer_really_happened(self, recorded_run):
        _, result, recorder, _ = recorded_run
        assert result.cost.answers == recorder.n_answers

    def test_distinct_pairs_counted_once(self, recorded_run):
        _, result, recorder, pipeline = recorded_run
        asked_pairs = {t.pair for t in group_by_question(recorder.log)}
        # Every asked pair is a cached label; seeds were never asked.
        assert result.cost.pairs_labeled == len(asked_pairs)

    def test_seeds_never_asked(self, recorded_run):
        dataset, _, recorder, _ = recorded_run
        asked_pairs = {t.pair for t in group_by_question(recorder.log)}
        for seed in dataset.seed_pairs:
            assert seed not in asked_pairs

    def test_dollars_equal_answers_times_price(self, recorded_run):
        _, result, _, pipeline = recorded_run
        price = pipeline.config.crowd.price_per_question
        assert result.cost.dollars == pytest.approx(
            result.cost.answers * price
        )

    def test_phase_attribution_consistent(self, recorded_run):
        _, result, _, _ = recorded_run
        attributed = result.blocker.pairs_labeled + sum(
            record.matcher_pairs_labeled
            + record.estimation_pairs_labeled
            + record.reduction_pairs_labeled
            for record in result.iterations
        )
        assert attributed <= result.cost.pairs_labeled

    def test_every_question_got_at_least_two_answers(self, recorded_run):
        """All schemes solicit >= 2 answers per question."""
        _, _, recorder, _ = recorded_run
        for transcript in group_by_question(recorder.log):
            assert transcript.n_answers >= 2
            assert transcript.n_answers <= 7 * 3  # retries upper bound

    def test_run_found_the_matches(self, recorded_run):
        dataset, result, _, _ = recorded_run
        found = result.predicted_matches & dataset.matches
        assert len(found) >= 0.8 * len(dataset.matches)
