"""Question/HIT rendering (Section 8, Figure 4)."""

from __future__ import annotations

import pytest

from repro.config import CrowdConfig
from repro.crowd.questions import (
    hit_to_html,
    pack_hits,
    question_to_html,
    question_to_text,
    render_question,
)
from repro.data.pairs import Pair
from repro.data.table import AttrType, Record, Schema, Table
from repro.exceptions import DataError


@pytest.fixture
def question(book_tables):
    table_a, table_b = book_tables
    return render_question(table_a, table_b, Pair("a0", "b0"),
                           prompt="Do these books match?")


class TestRenderQuestion:
    def test_rows_follow_schema(self, question, book_tables):
        table_a, _ = book_tables
        assert [row[0] for row in question.rows] == list(
            table_a.schema.names
        )

    def test_values_pulled_from_records(self, question):
        by_name = {row[0]: row[1:] for row in question.rows}
        assert by_name["title"] == ("data mining", "data mining")
        assert by_name["author"] == ("joe smith", "joseph smith")

    def test_numeric_formatting(self, question):
        by_name = {row[0]: row[1:] for row in question.rows}
        assert by_name["pages"] == ("234", "234")

    def test_missing_value_placeholder(self, book_tables):
        table_a, table_b = book_tables
        table_a.add(Record("a9", {"title": None, "author": "x",
                                  "pages": None}))
        question = render_question(table_a, table_b, Pair("a9", "b0"))
        by_name = {row[0]: row[1] for row in question.rows}
        assert by_name["title"] == "(missing)"

    def test_schema_mismatch_rejected(self, book_tables):
        table_a, _ = book_tables
        other = Table("o", Schema.from_pairs([("z", AttrType.STRING)]),
                      [Record("b0", {"z": "v"})])
        with pytest.raises(DataError):
            render_question(table_a, other, Pair("a0", "b0"))


class TestTextRendering:
    def test_contains_prompt_and_buttons(self, question):
        text = question_to_text(question)
        assert text.startswith("Do these books match?")
        assert "[ Yes ]" in text and "[ No ]" in text
        assert "Not sure" in text

    def test_aligned_columns(self, question):
        text = question_to_text(question)
        lines = text.splitlines()
        header = next(line for line in lines if "Record 1" in line)
        title_line = next(line for line in lines
                          if line.startswith("title"))
        assert header.index("Record 2") == title_line.index("data mining",
                                                            10)


class TestHtmlRendering:
    def test_escapes_content(self, book_tables):
        table_a, table_b = book_tables
        table_a.add(Record("evil", {
            "title": "<script>alert(1)</script>", "author": "x",
            "pages": 1.0,
        }))
        question = render_question(table_a, table_b, Pair("evil", "b0"))
        html_out = question_to_html(question)
        assert "<script>alert" not in html_out
        assert "&lt;script&gt;" in html_out

    def test_radio_buttons_per_question(self, question):
        html_out = question_to_html(question)
        assert html_out.count('type="radio"') == 3
        assert 'value="unsure"' in html_out


class TestHitPacking:
    def test_pack_sizes(self, book_tables):
        table_a, table_b = book_tables
        pairs = [
            Pair(a.record_id, b.record_id)
            for a in table_a for b in table_b
        ]  # 9 pairs
        hits = pack_hits(table_a, table_b, pairs, "match the books",
                         CrowdConfig(questions_per_hit=4))
        assert [len(hit) for hit in hits] == [4, 4, 1]
        assert hits[0].hit_id == "hit0"
        assert hits[2].hit_id == "hit2"

    def test_hit_html_document(self, book_tables):
        table_a, table_b = book_tables
        hits = pack_hits(table_a, table_b, [Pair("a0", "b0")],
                         "the instruction text", CrowdConfig())
        document = hit_to_html(hits[0])
        assert document.startswith("<!DOCTYPE html>")
        assert "the instruction text" in document
        assert "Record 1" in document
