"""Property-based tests on the §8 HIT-packing rules."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import CrowdConfig
from repro.crowd.aggregation import VoteScheme
from repro.crowd.service import LabelingService
from repro.crowd.simulated import PerfectCrowd
from repro.data.pairs import Pair

ALL_PAIRS = [Pair(f"a{i}", f"b{i}") for i in range(60)]
MATCHES = set(ALL_PAIRS[:30])


def fresh_service(per_hit: int = 10) -> LabelingService:
    crowd = PerfectCrowd(MATCHES, rng=np.random.default_rng(0))
    return LabelingService(crowd, CrowdConfig(questions_per_hit=per_hit))


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    cached=st.sets(st.integers(0, 59), max_size=25),
    requested=st.lists(st.integers(0, 59), min_size=1, max_size=30,
                       unique=True),
    per_hit=st.sampled_from([4, 10]),
)
def test_packing_invariants(cached, requested, per_hit):
    """The generalized §8 item-3 rules, for any cache state and batch:

    1. every cached pair in the request is returned;
    2. fresh labels are bought only in whole HITs — except when the
       batch would otherwise return nothing at all;
    3. a batch never returns pairs that were not requested;
    4. answers are paid only for pairs actually labelled.
    """
    service = fresh_service(per_hit)
    cached_pairs = [ALL_PAIRS[i] for i in sorted(cached)]
    if cached_pairs:
        service.label_all(cached_pairs)
    answers_before = service.tracker.answers

    batch = [ALL_PAIRS[i] for i in requested]
    result = service.label_batch(batch)

    requested_set = set(batch)
    cached_in_request = requested_set & set(cached_pairs)
    fresh_returned = set(result) - cached_in_request

    # (1) cache always serves.
    assert cached_in_request <= set(result)
    # (3) nothing extraneous.
    assert set(result) <= requested_set
    # (2) whole HITs, except the empty-batch rescue.
    n_uncached = len(requested_set - cached_in_request)
    expected_full = (n_uncached // per_hit) * per_hit
    if expected_full > 0 or cached_in_request:
        assert len(fresh_returned) == expected_full
    else:
        assert len(fresh_returned) == n_uncached  # padded rescue HIT
    # (4) money moved only for fresh labels.
    if not fresh_returned:
        assert service.tracker.answers == answers_before


@settings(max_examples=20, deadline=None)
@given(n=st.integers(1, 40), per_hit=st.sampled_from([3, 7, 10]))
def test_label_all_hit_count(n, per_hit):
    """label_all posts ceil(fresh / per_hit) HITs."""
    service = fresh_service(per_hit)
    service.label_all(ALL_PAIRS[:n])
    assert service.tracker.hits == -(-n // per_hit)


@settings(max_examples=20, deadline=None)
@given(subset=st.sets(st.integers(0, 19), min_size=1, max_size=20))
def test_label_batch_idempotent_after_label_all(subset):
    """Once everything is cached, batches are free and complete."""
    service = fresh_service()
    pairs = [ALL_PAIRS[i] for i in sorted(subset)]
    service.label_all(pairs)
    spent = service.tracker.answers
    result = service.label_batch(pairs)
    assert set(result) == set(pairs)
    assert service.tracker.answers == spent
