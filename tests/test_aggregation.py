"""Vote-aggregation schemes (Section 8)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.crowd.aggregation import (
    VoteScheme,
    aggregate,
    asymmetric_majority,
    majority_2plus1,
    strong_majority,
)
from repro.crowd.simulated import SimulatedCrowd
from repro.data.pairs import Pair
from repro.exceptions import CrowdError


def scripted(answers: list[bool]):
    """An ask() that replays a fixed script and records usage."""
    state = {"i": 0}

    def ask() -> bool:
        answer = answers[state["i"]]
        state["i"] += 1
        return answer

    return ask, state


class TestMajority2Plus1:
    def test_agreement_stops_at_two(self):
        ask, state = scripted([True, True])
        label, used = majority_2plus1(ask)
        assert label is True and used == 2 and state["i"] == 2

    def test_disagreement_takes_third(self):
        ask, _ = scripted([True, False, False])
        label, used = majority_2plus1(ask)
        assert label is False and used == 3

    def test_third_answer_decides(self):
        ask, _ = scripted([False, True, True])
        label, _ = majority_2plus1(ask)
        assert label is True


class TestStrongMajority:
    def test_unanimous_three(self):
        ask, _ = scripted([True, True, True])
        label, used = strong_majority(ask)
        assert label is True and used == 3

    def test_gap_of_three_required(self):
        # T F T T -> 3 pos 1 neg: gap 2, continue; T -> 4-1=3 stop.
        ask, _ = scripted([True, False, True, True, True])
        label, used = strong_majority(ask)
        assert label is True and used == 5

    def test_max_answers_cutoff(self):
        alternating = [True, False] * 4
        ask, _ = scripted(alternating)
        label, used = strong_majority(ask)
        assert used == 7
        # 4 positive vs 3 negative -> positive.
        assert label is True

    def test_seeded_counts_reduce_new_answers(self):
        ask, _ = scripted([True])
        label, used = strong_majority(ask, positives=2, negatives=0)
        assert label is True and used == 1

    def test_seed_already_decisive(self):
        ask, state = scripted([])
        label, used = strong_majority(ask, positives=3, negatives=0)
        assert label is True and used == 0 and state["i"] == 0

    def test_bad_gap(self):
        ask, _ = scripted([True])
        with pytest.raises(CrowdError):
            strong_majority(ask, gap=0)

    def test_max_below_gap(self):
        ask, _ = scripted([True])
        with pytest.raises(CrowdError):
            strong_majority(ask, gap=3, max_answers=2)

    def test_paper_examples(self):
        # "4 positive and 1 negative answers would return a positive label"
        ask, _ = scripted([True, False, True, True, True])
        assert strong_majority(ask)[0] is True
        # "4 negative and 3 positive would return negative"
        ask, _ = scripted([True, False, True, False, True, False, False])
        label, used = strong_majority(ask)
        assert label is False and used == 7


class TestAsymmetric:
    def test_unanimous_negative_cheap(self):
        ask, state = scripted([False, False])
        label, used = asymmetric_majority(ask)
        assert label is False and used == 2 and state["i"] == 2

    def test_majority_negative_after_tiebreak(self):
        ask, _ = scripted([True, False, False])
        label, used = asymmetric_majority(ask)
        assert label is False and used == 3

    def test_provisional_positive_escalates(self):
        # Two positives -> escalate until gap 3: one more positive.
        ask, _ = scripted([True, True, True])
        label, used = asymmetric_majority(ask)
        assert label is True and used == 3

    def test_escalation_can_flip_to_negative(self):
        # 2+1 would say positive after T,F,T; strong majority keeps asking
        # and the negatives win.
        ask, _ = scripted([True, False, True, False, False, False, False])
        label, used = asymmetric_majority(ask)
        assert label is False
        assert used == 7

    def test_reuses_initial_answers(self):
        # T T T: escalation needed gap 3 from (2,0) -> one more answer,
        # not three fresh ones.
        ask, state = scripted([True, True, True, True, True])
        asymmetric_majority(ask)
        assert state["i"] == 3


class TestAggregateDispatch:
    @pytest.mark.parametrize("scheme", list(VoteScheme))
    def test_runs_against_platform(self, scheme):
        crowd = SimulatedCrowd({Pair("a", "b")}, error_rate=0.0,
                               rng=np.random.default_rng(0))
        label, used = aggregate(crowd, Pair("a", "b"), scheme)
        assert label is True
        assert used >= 2


@given(st.lists(st.booleans(), min_size=7, max_size=7),
       st.sampled_from(["2+1", "strong", "asym"]))
def test_schemes_return_majority_of_consumed_answers(script, which):
    ask, state = scripted(script)
    if which == "2+1":
        label, used = majority_2plus1(ask)
    elif which == "strong":
        label, used = strong_majority(ask)
    else:
        label, used = asymmetric_majority(ask)
    consumed = script[:state["i"]]
    assert used == len(consumed)
    positives = sum(consumed)
    # The returned label always agrees with the majority of the answers
    # actually consumed (ties resolve positive only for strong majority).
    if positives * 2 > len(consumed):
        assert label is True
    elif positives * 2 < len(consumed):
        assert label is False
