"""Similarity measures: known values and property-based invariants."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.features.similarity import (
    abs_diff,
    build_idf,
    cosine_tfidf,
    exact_match,
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein_distance,
    levenshtein_similarity,
    monge_elkan,
    overlap_coefficient,
    rel_diff,
)

words = st.text(alphabet="abcdef ", min_size=0, max_size=20)


class TestLevenshtein:
    @pytest.mark.parametrize("s, t, expected", [
        ("", "", 0),
        ("abc", "abc", 0),
        ("abc", "", 3),
        ("", "abc", 3),
        ("kitten", "sitting", 3),
        ("flaw", "lawn", 2),
        ("book", "back", 2),
    ])
    def test_known_distances(self, s, t, expected):
        assert levenshtein_distance(s, t) == expected

    @given(words, words)
    def test_symmetry(self, s, t):
        assert levenshtein_distance(s, t) == levenshtein_distance(t, s)

    @given(words, words, words)
    def test_triangle_inequality(self, a, b, c):
        assert (levenshtein_distance(a, c)
                <= levenshtein_distance(a, b) + levenshtein_distance(b, c))

    @given(words)
    def test_identity(self, s):
        assert levenshtein_distance(s, s) == 0

    @given(words, words)
    def test_similarity_in_unit_interval(self, s, t):
        assert 0.0 <= levenshtein_similarity(s, t) <= 1.0

    def test_similarity_of_empties(self):
        assert levenshtein_similarity("", "") == 1.0

    def test_similarity_normalizes_whitespace(self):
        assert levenshtein_similarity("a  b", "A B") == 1.0


class TestJaro:
    def test_identical(self):
        assert jaro("martha", "martha") == 1.0

    def test_known_value(self):
        # Classic textbook example.
        assert jaro("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_disjoint(self):
        assert jaro("abc", "xyz") == 0.0

    def test_empty_vs_nonempty(self):
        assert jaro("", "abc") == 0.0
        assert jaro("", "") == 1.0

    @given(words, words)
    def test_range_and_symmetry(self, s, t):
        value = jaro(s, t)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(jaro(t, s))

    def test_winkler_boosts_common_prefix(self):
        base = jaro("prefixes", "prefixed")
        boosted = jaro_winkler("prefixes", "prefixed")
        assert boosted >= base

    @given(words, words)
    def test_winkler_at_least_jaro(self, s, t):
        assert jaro_winkler(s, t) >= jaro(s, t) - 1e-12

    @given(words, words)
    def test_winkler_in_unit_interval(self, s, t):
        assert 0.0 <= jaro_winkler(s, t) <= 1.0


class TestTokenMeasures:
    def test_jaccard_known(self):
        assert jaccard(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)

    def test_jaccard_empty_both(self):
        assert jaccard([], []) == 1.0

    def test_jaccard_one_empty(self):
        assert jaccard(["a"], []) == 0.0

    def test_overlap_subset_is_one(self):
        assert overlap_coefficient(["a"], ["a", "b", "c"]) == 1.0

    def test_overlap_one_empty(self):
        assert overlap_coefficient([], ["a"]) == 0.0

    token_lists = st.lists(st.sampled_from("abcde"), max_size=8)

    @given(token_lists, token_lists)
    def test_jaccard_leq_overlap(self, ta, tb):
        assert jaccard(ta, tb) <= overlap_coefficient(ta, tb) + 1e-12

    @given(token_lists, token_lists)
    def test_jaccard_symmetry(self, ta, tb):
        assert jaccard(ta, tb) == pytest.approx(jaccard(tb, ta))


class TestMongeElkan:
    def test_reordered_words_stay_similar(self):
        assert monge_elkan("john smith", "smith john") > 0.9

    def test_identical(self):
        assert monge_elkan("a b c", "a b c") == pytest.approx(1.0)

    def test_empty_cases(self):
        assert monge_elkan("", "") == 1.0
        assert monge_elkan("word", "") == 0.0

    @given(words, words)
    def test_range_and_symmetry(self, s, t):
        value = monge_elkan(s, t)
        assert 0.0 <= value <= 1.0 + 1e-12
        assert value == pytest.approx(monge_elkan(t, s))


class TestCosineTfidf:
    def test_identical_docs(self):
        idf = build_idf([["a", "b"], ["a"], ["c"]])
        assert cosine_tfidf(["a", "b"], ["a", "b"], idf) == pytest.approx(1.0)

    def test_disjoint_docs(self):
        idf = build_idf([["a"], ["b"]])
        assert cosine_tfidf(["a"], ["b"], idf) == 0.0

    def test_rare_token_dominates(self):
        # 'rare' appears once in the corpus, 'common' everywhere.
        corpus = [["common", "rare"]] + [["common"]] * 20
        idf = build_idf(corpus)
        with_rare = cosine_tfidf(["common", "rare"], ["rare"], idf)
        with_common = cosine_tfidf(["common", "rare"], ["common"], idf)
        assert with_rare > with_common

    def test_unknown_token_gets_max_weight(self):
        idf = build_idf([["a"]])
        # Unknown tokens are maximally discriminative, not errors.
        assert cosine_tfidf(["zz"], ["zz"], idf) == pytest.approx(1.0)

    def test_empty_corpus_ok(self):
        assert cosine_tfidf(["a"], ["a"], {}) == pytest.approx(1.0)

    def test_both_empty(self):
        assert cosine_tfidf([], [], {}) == 1.0


class TestBuildIdf:
    def test_rarer_means_heavier(self):
        idf = build_idf([["a", "b"], ["a"], ["a", "c"]])
        assert idf["b"] > idf["a"]
        assert idf["c"] == idf["b"]

    def test_all_weights_positive(self):
        idf = build_idf([["a"]] * 100)
        assert all(w > 0 for w in idf.values())


class TestScalarMeasures:
    def test_exact_match_strings_normalized(self):
        assert exact_match("Hello  World", "hello world") == 1.0
        assert exact_match("a", "b") == 0.0

    def test_exact_match_numbers(self):
        assert exact_match(3.0, 3.0) == 1.0
        assert exact_match(3.0, 4.0) == 0.0

    def test_abs_diff(self):
        assert abs_diff(10.0, 4.0) == 6.0

    def test_rel_diff(self):
        assert rel_diff(10.0, 5.0) == 0.5
        assert rel_diff(0.0, 0.0) == 0.0

    @given(st.floats(-1e6, 1e6), st.floats(-1e6, 1e6))
    def test_rel_diff_bounded_for_same_sign(self, a, b):
        value = rel_diff(a, b)
        assert value >= 0.0
        # Compare signs directly: a * b underflows to -0.0 for tiny
        # opposite-sign operands, which would claim the bound wrongly.
        if (a >= 0) == (b >= 0) or a == 0 or b == 0:
            assert value <= 1.0 + 1e-9 or math.isclose(value, 1.0)
