"""Tables, schemas, records: construction and validation."""

from __future__ import annotations

import pytest

from repro.data.table import Attribute, AttrType, Record, Schema, Table
from repro.exceptions import DataError, SchemaError


class TestSchema:
    def test_from_pairs_preserves_order(self):
        schema = Schema.from_pairs([
            ("x", AttrType.STRING), ("y", AttrType.NUMERIC),
        ])
        assert schema.names == ("x", "y")
        assert schema["y"].attr_type is AttrType.NUMERIC

    def test_duplicate_name_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Attribute("x"), Attribute("x")])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_unknown_attribute_lookup(self):
        schema = Schema([Attribute("x")])
        with pytest.raises(SchemaError):
            schema["nope"]

    def test_contains_and_len(self):
        schema = Schema([Attribute("x"), Attribute("y")])
        assert "x" in schema and "z" not in schema
        assert len(schema) == 2

    def test_equality_and_hash(self):
        s1 = Schema.from_pairs([("x", AttrType.STRING)])
        s2 = Schema.from_pairs([("x", AttrType.STRING)])
        s3 = Schema.from_pairs([("x", AttrType.TEXT)])
        assert s1 == s2 and hash(s1) == hash(s2)
        assert s1 != s3

    def test_empty_attribute_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")


class TestRecord:
    def test_get_missing_returns_none(self):
        record = Record("r1", {"x": "hello"})
        assert record.get("x") == "hello"
        assert record.get("y") is None
        assert record["y"] is None


class TestTable:
    @pytest.fixture
    def schema(self) -> Schema:
        return Schema.from_pairs([
            ("name", AttrType.STRING), ("price", AttrType.NUMERIC),
        ])

    def test_add_and_lookup(self, schema):
        table = Table("t", schema)
        table.add(Record("r1", {"name": "widget", "price": 9.5}))
        assert len(table) == 1
        assert "r1" in table
        assert table["r1"].get("price") == 9.5
        assert table.at(0).record_id == "r1"

    def test_duplicate_id_rejected(self, schema):
        table = Table("t", schema, [Record("r1", {})])
        with pytest.raises(DataError):
            table.add(Record("r1", {}))

    def test_unknown_attribute_rejected(self, schema):
        table = Table("t", schema)
        with pytest.raises(SchemaError):
            table.add(Record("r1", {"bogus": "x"}))

    def test_numeric_type_enforced(self, schema):
        table = Table("t", schema)
        with pytest.raises(SchemaError):
            table.add(Record("r1", {"price": "cheap"}))

    def test_bool_is_not_numeric(self, schema):
        table = Table("t", schema)
        with pytest.raises(SchemaError):
            table.add(Record("r1", {"price": True}))

    def test_string_type_enforced(self, schema):
        table = Table("t", schema)
        with pytest.raises(SchemaError):
            table.add(Record("r1", {"name": 42}))

    def test_none_always_allowed(self, schema):
        table = Table("t", schema)
        table.add(Record("r1", {"name": None, "price": None}))
        assert table["r1"].get("name") is None

    def test_missing_record_lookup_raises(self, schema):
        table = Table("t", schema)
        with pytest.raises(DataError):
            table["ghost"]

    def test_subset_preserves_order(self, schema):
        table = Table("t", schema, [
            Record("r1", {}), Record("r2", {}), Record("r3", {}),
        ])
        sub = table.subset(["r3", "r1"])
        assert sub.record_ids == ["r3", "r1"]
        assert sub.schema is schema

    def test_empty_name_rejected(self, schema):
        with pytest.raises(DataError):
            Table("", schema)

    def test_iteration_order(self, schema):
        records = [Record(f"r{i}", {}) for i in range(5)]
        table = Table("t", schema, records)
        assert [r.record_id for r in table] == [f"r{i}" for i in range(5)]
