"""Simulated crowds: the random-worker model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crowd.simulated import (
    HeterogeneousCrowd,
    PerfectCrowd,
    SimulatedCrowd,
    oracle_from_matches,
)
from repro.data.pairs import Pair
from repro.exceptions import CrowdError

MATCHES = {Pair("a0", "b0"), Pair("a1", "b1")}


class TestOracle:
    def test_membership(self):
        oracle = oracle_from_matches(MATCHES)
        assert oracle(Pair("a0", "b0"))
        assert not oracle(Pair("a0", "b1"))

    def test_accepts_plain_tuples(self):
        oracle = oracle_from_matches({("a0", "b0")})
        assert oracle(Pair("a0", "b0"))


class TestSimulatedCrowd:
    def test_perfect_always_truthful(self):
        crowd = PerfectCrowd(MATCHES, rng=np.random.default_rng(0))
        for _ in range(50):
            assert crowd.ask(Pair("a0", "b0")).label is True
            assert crowd.ask(Pair("a9", "b9")).label is False

    def test_error_rate_one_always_flips(self):
        crowd = SimulatedCrowd(MATCHES, error_rate=1.0,
                               rng=np.random.default_rng(0))
        assert crowd.ask(Pair("a0", "b0")).label is False
        assert crowd.ask(Pair("a9", "b9")).label is True

    def test_error_rate_statistics(self):
        crowd = SimulatedCrowd(MATCHES, error_rate=0.2,
                               rng=np.random.default_rng(1))
        wrong = sum(
            1 for _ in range(4000)
            if crowd.ask(Pair("a0", "b0")).label is False
        )
        assert wrong / 4000 == pytest.approx(0.2, abs=0.03)

    def test_answers_counted(self):
        crowd = PerfectCrowd(MATCHES, rng=np.random.default_rng(0))
        crowd.ask_many(Pair("a0", "b0"), 5)
        assert crowd.answers_given == 5

    def test_true_label_exposed_for_evaluation(self):
        crowd = SimulatedCrowd(MATCHES, error_rate=0.5,
                               rng=np.random.default_rng(0))
        assert crowd.true_label(Pair("a0", "b0")) is True

    def test_callable_oracle(self):
        crowd = PerfectCrowd(lambda pair: pair.a_id == pair.b_id,
                             rng=np.random.default_rng(0))
        assert crowd.ask(Pair("x", "x")).label is True

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_bad_error_rate(self, rate):
        with pytest.raises(CrowdError):
            SimulatedCrowd(MATCHES, error_rate=rate)

    def test_deterministic_with_seed(self):
        answers_1 = [
            SimulatedCrowd(MATCHES, 0.3, np.random.default_rng(9))
            .ask(Pair("a0", "b0")).label for _ in range(1)
        ]
        answers_2 = [
            SimulatedCrowd(MATCHES, 0.3, np.random.default_rng(9))
            .ask(Pair("a0", "b0")).label for _ in range(1)
        ]
        assert answers_1 == answers_2


class TestHeterogeneousCrowd:
    def test_empty_pool_rejected(self):
        with pytest.raises(CrowdError):
            HeterogeneousCrowd(MATCHES, [])

    def test_bad_worker_rate_rejected(self):
        with pytest.raises(CrowdError):
            HeterogeneousCrowd(MATCHES, [0.1, 1.2])

    def test_mixed_pool_error_rate_between_extremes(self):
        crowd = HeterogeneousCrowd(MATCHES, [0.0, 0.4],
                                   rng=np.random.default_rng(2))
        wrong = sum(
            1 for _ in range(4000)
            if crowd.ask(Pair("a0", "b0")).label is False
        )
        assert 0.1 < wrong / 4000 < 0.3  # expect ~0.2

    def test_worker_ids_within_pool(self):
        crowd = HeterogeneousCrowd(MATCHES, [0.1] * 7,
                                   rng=np.random.default_rng(0))
        for _ in range(30):
            assert 0 <= crowd.ask(Pair("a0", "b0")).worker_id < 7

    def test_true_label(self):
        crowd = HeterogeneousCrowd(MATCHES, [0.5])
        assert crowd.true_label(Pair("a1", "b1")) is True


class TestBiasedCrowd:
    def test_class_conditional_rates(self):
        from repro.crowd.simulated import BiasedCrowd
        crowd = BiasedCrowd(MATCHES, false_negative_rate=0.3,
                            false_positive_rate=0.05,
                            rng=np.random.default_rng(4))
        n = 4000
        missed = sum(
            1 for _ in range(n)
            if crowd.ask(Pair("a0", "b0")).label is False
        )
        invented = sum(
            1 for _ in range(n)
            if crowd.ask(Pair("a9", "b9")).label is True
        )
        assert missed / n == pytest.approx(0.3, abs=0.03)
        assert invented / n == pytest.approx(0.05, abs=0.02)

    def test_rate_validation(self):
        from repro.crowd.simulated import BiasedCrowd
        with pytest.raises(CrowdError):
            BiasedCrowd(MATCHES, false_negative_rate=1.5)
        with pytest.raises(CrowdError):
            BiasedCrowd(MATCHES, false_positive_rate=-0.1)

    def test_miss_bias_exposes_the_asymmetric_trade(self):
        """Under miss-biased workers (25% false negatives) the scheme
        ordering flips versus the symmetric-noise analysis: full strong
        majority recovers the most matches, plain 2+1 sits in the middle,
        and the paper's asymmetric scheme recovers the *fewest* — its
        cheap unanimous-negative path never escalates, by design, because
        it optimizes the false-positive side of the ledger (§8)."""
        from repro.config import CrowdConfig
        from repro.crowd.aggregation import VoteScheme
        from repro.crowd.service import LabelingService
        from repro.crowd.simulated import BiasedCrowd
        matches = {Pair(f"m{i}", f"n{i}") for i in range(400)}

        def recall(scheme):
            crowd = BiasedCrowd(matches, false_negative_rate=0.25,
                                false_positive_rate=0.02,
                                rng=np.random.default_rng(5))
            service = LabelingService(crowd, CrowdConfig())
            labels = service.label_all(sorted(matches), scheme=scheme)
            return sum(labels.values()) / len(matches)

        strong = recall(VoteScheme.STRONG_MAJORITY)
        plain = recall(VoteScheme.MAJORITY_2PLUS1)
        asymmetric = recall(VoteScheme.ASYMMETRIC)
        assert strong > plain > asymmetric
        assert strong >= 0.88
