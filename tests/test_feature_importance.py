"""Gini feature importances on the random forest."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ForestConfig
from repro.forest.forest import RandomForest, train_forest
from repro.forest.tree import DecisionTree


class TestFeatureImportances:
    def test_identifies_the_signal_feature(self, rng):
        x = rng.random((400, 5))
        y = x[:, 2] > 0.5
        forest = train_forest(x, y, ForestConfig(), rng)
        importances = forest.feature_importances()
        assert importances.argmax() == 2
        assert importances[2] > 0.7

    def test_normalized(self, rng):
        x = rng.random((300, 4))
        y = (x[:, 0] + x[:, 1]) > 1.0
        forest = train_forest(x, y, ForestConfig(), rng)
        assert forest.feature_importances().sum() == pytest.approx(1.0)
        assert (forest.feature_importances() >= 0).all()

    def test_split_between_two_signals(self, rng):
        x = rng.random((500, 4))
        y = (x[:, 0] > 0.5) & (x[:, 3] > 0.5)
        forest = train_forest(x, y, ForestConfig(), rng)
        importances = forest.feature_importances()
        assert importances[0] + importances[3] > 0.8

    def test_unsplit_forest_all_zero(self, rng):
        x = rng.random((30, 3))
        forest = train_forest(x, np.ones(30, dtype=bool),
                              ForestConfig(n_trees=3), rng)
        np.testing.assert_array_equal(
            forest.feature_importances(), np.zeros(3)
        )

    def test_noise_features_near_zero(self, rng):
        x = rng.random((600, 6))
        y = x[:, 1] > 0.5
        forest = train_forest(x, y, ForestConfig(), rng)
        importances = forest.feature_importances()
        noise = np.delete(importances, 1)
        assert noise.max() < 0.15
