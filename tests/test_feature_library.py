"""Schema-driven feature generation and the Feature abstraction."""

from __future__ import annotations

import math

import pytest

from repro.data.table import AttrType, Record, Schema, Table
from repro.exceptions import FeatureError
from repro.features.library import FeatureLibrary, build_feature_library


@pytest.fixture
def library(book_tables):
    table_a, table_b = book_tables
    return build_feature_library(table_a, table_b)


class TestGeneration:
    def test_numeric_attribute_gets_no_text_features(self, library):
        page_features = [f for f in library if f.attribute == "pages"]
        measures = {f.measure for f in page_features}
        assert measures == {"exact", "abs_diff", "rel_diff"}

    def test_string_attribute_measures(self, library):
        title_measures = {
            f.measure for f in library if f.attribute == "title"
        }
        assert "levenshtein" in title_measures
        assert "jaro_winkler" in title_measures
        assert "jaccard_qgram" in title_measures
        assert "jaccard_word" in title_measures
        assert "cosine_tfidf" not in title_measures  # STRING, not TEXT

    def test_text_attribute_gets_tfidf(self):
        schema = Schema.from_pairs([("desc", AttrType.TEXT)])
        table_a = Table("a", schema, [Record("a0", {"desc": "x y z"})])
        table_b = Table("b", schema, [Record("b0", {"desc": "x y"})])
        library = build_feature_library(table_a, table_b)
        measures = {f.measure for f in library}
        assert "cosine_tfidf" in measures
        assert "monge_elkan" in measures

    def test_schema_mismatch_rejected(self, book_tables):
        table_a, _ = book_tables
        other_schema = Schema.from_pairs([("zzz", AttrType.STRING)])
        table_c = Table("c", other_schema, [Record("c0", {"zzz": "x"})])
        with pytest.raises(FeatureError):
            build_feature_library(table_a, table_c)

    def test_feature_names_unique(self, library):
        assert len(set(library.names)) == len(library)

    def test_costs_positive(self, library):
        assert all(cost > 0 for cost in library.costs)


class TestFeatureValue:
    def test_similarity_of_identical_values(self, library, book_tables):
        table_a, table_b = book_tables
        feature = library["title_levenshtein"]
        # a0 and b0 share the exact title.
        assert feature.value(table_a["a0"], table_b["b0"]) == 1.0

    def test_missing_value_gives_nan(self, library, book_schema):
        record = Record("x", {"title": None, "author": "someone",
                              "pages": 3.0})
        other = Record("y", {"title": "abc", "author": "someone",
                             "pages": 3.0})
        assert math.isnan(library["title_levenshtein"].value(record, other))

    def test_numeric_features(self, library, book_tables):
        table_a, table_b = book_tables
        # a2 has 310 pages, b2 has 410.
        assert library["pages_abs_diff"].value(
            table_a["a2"], table_b["b2"]
        ) == 100.0
        assert library["pages_exact"].value(
            table_a["a0"], table_b["b0"]
        ) == 1.0


class TestLibraryContainer:
    def test_lookup(self, library):
        feature = library["author_jaro_winkler"]
        assert feature.attribute == "author"
        assert "author_jaro_winkler" in library
        assert "bogus" not in library

    def test_unknown_lookup_raises(self, library):
        with pytest.raises(FeatureError):
            library["bogus"]

    def test_empty_library_rejected(self):
        with pytest.raises(FeatureError):
            FeatureLibrary([])

    def test_duplicate_names_rejected(self, library):
        feature = library.features[0]
        with pytest.raises(FeatureError):
            FeatureLibrary([feature, feature])
