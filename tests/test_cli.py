"""The command-line interface."""

from __future__ import annotations

import csv
import json

import pytest

from repro.cli import build_parser, main, parse_schema
from repro.data.table import AttrType
from repro.exceptions import DataError


class TestParseSchema:
    def test_basic(self):
        schema = parse_schema("title:text,year:numeric,venue:string")
        assert schema.names == ("title", "year", "venue")
        assert schema["title"].attr_type is AttrType.TEXT
        assert schema["year"].attr_type is AttrType.NUMERIC

    def test_default_type_is_string(self):
        schema = parse_schema("name")
        assert schema["name"].attr_type is AttrType.STRING

    def test_whitespace_tolerated(self):
        schema = parse_schema(" a : text , b : numeric ")
        assert schema.names == ("a", "b")

    def test_unknown_type(self):
        with pytest.raises(DataError):
            parse_schema("a:blob")

    def test_empty_spec(self):
        with pytest.raises(DataError):
            parse_schema("")


class TestDatasetsCommand:
    def test_list(self, capsys):
        assert main(["datasets", "list"]) == 0
        out = capsys.readouterr().out
        assert "restaurants" in out and "products" in out

    def test_generate_writes_four_files(self, tmp_path, capsys):
        code = main(["datasets", "restaurants", "--out", str(tmp_path),
                     "--seed", "3"])
        assert code == 0
        for suffix in ("a", "b", "gold", "seeds"):
            assert (tmp_path / f"restaurants_{suffix}.csv").exists()
        with (tmp_path / "restaurants_gold.csv").open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["a_id", "b_id"]
        assert len(rows) - 1 == 36  # bench-scale match count


class TestMatchCommand:
    def test_end_to_end_from_csv(self, tmp_path, capsys):
        # Generate a tiny dataset to CSV, then match it back via the CLI.
        from repro.data.io import write_csv_table
        from repro.synth.restaurants import generate_restaurants
        dataset = generate_restaurants(n_a=40, n_b=30, n_matches=10,
                                       seed=5)
        a_path = tmp_path / "a.csv"
        b_path = tmp_path / "b.csv"
        write_csv_table(dataset.table_a, a_path)
        write_csv_table(dataset.table_b, b_path)
        gold_path = tmp_path / "gold.csv"
        with gold_path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["a_id", "b_id"])
            writer.writerows(sorted(dataset.matches))
        seeds_path = tmp_path / "seeds.csv"
        with seeds_path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["a_id", "b_id", "label"])
            for pair, label in dataset.seed_labels.items():
                writer.writerow([pair.a_id, pair.b_id, int(label)])

        out_path = tmp_path / "matches.csv"
        report_path = tmp_path / "report.json"
        code = main([
            "match", str(a_path), str(b_path),
            "--schema", "name,addr,city,phone,cuisine",
            "--gold", str(gold_path),
            "--seeds", str(seeds_path),
            "--out", str(out_path),
            "--report", str(report_path),
            "--mode", "one_iteration",
            "--seed", "1",
        ])
        assert code == 0
        with out_path.open() as fh:
            predicted = {tuple(row) for row in csv.reader(fh)}
        predicted.discard(("a_id", "b_id"))
        gold = {tuple(p) for p in dataset.matches}
        assert len(predicted & gold) >= 0.7 * len(gold)

        report = json.loads(report_path.read_text())
        assert report["n_predicted_matches"] == len(predicted)
        assert report["cost"]["pairs_labeled"] > 0
        assert report["iterations"]

    def test_bad_seeds_file_is_cli_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text("only_one_column\n")
        a = tmp_path / "a.csv"
        a.write_text("id,name\nr1,x\n")
        code = main([
            "match", str(a), str(a), "--schema", "name",
            "--gold", str(bad), "--seeds", str(bad),
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestBenchInfo:
    def test_lists_all_experiments(self, capsys):
        assert main(["bench-info"]) == 0
        out = capsys.readouterr().out
        for token in ("Table 2", "Figure 3", "Sec 9.4"):
            assert token in out


def test_parser_has_version():
    parser = build_parser()
    with pytest.raises(SystemExit) as excinfo:
        parser.parse_args(["--version"])
    assert excinfo.value.code == 0


class TestDedupCommand:
    def test_end_to_end(self, tmp_path):
        import numpy as np
        from repro.core.dedup import canonical_pair
        from repro.data.io import write_csv_table
        from repro.data.table import Record, Table
        from repro.synth.restaurants import (
            RESTAURANT_SCHEMA, generate_restaurants,
        )
        dataset = generate_restaurants(n_a=30, n_b=24, n_matches=8,
                                       seed=6)
        table = Table("dirty", RESTAURANT_SCHEMA)
        for source in (dataset.table_a, dataset.table_b):
            for record in source:
                table.add(Record(f"{source.name}_{record.record_id}",
                                 record.values))
        duplicates = sorted(
            canonical_pair(f"fodors_{p.a_id}", f"zagat_{p.b_id}")
            for p in dataset.matches
        )
        table_path = tmp_path / "dirty.csv"
        write_csv_table(table, table_path)
        gold_path = tmp_path / "gold.csv"
        gold_path.write_text(
            "a_id,b_id\n" + "\n".join(f"{p.a_id},{p.b_id}"
                                      for p in duplicates) + "\n"
        )
        ids = table.record_ids
        seeds_path = tmp_path / "seeds.csv"
        negatives = []
        for i in range(1, 10):
            pair = canonical_pair(ids[0], ids[i])
            if pair not in set(duplicates):
                negatives.append(pair)
            if len(negatives) == 2:
                break
        seeds_path.write_text(
            "a_id,b_id,label\n"
            + "\n".join(f"{p.a_id},{p.b_id},1" for p in duplicates[:2])
            + "\n"
            + "\n".join(f"{p.a_id},{p.b_id},0" for p in negatives)
            + "\n"
        )
        out_path = tmp_path / "dups.csv"
        code = main([
            "dedup", str(table_path),
            "--schema", "name,addr,city,phone,cuisine",
            "--gold", str(gold_path),
            "--seeds", str(seeds_path),
            "--out", str(out_path),
            "--mode", "one_iteration",
        ])
        assert code == 0
        rows = out_path.read_text().strip().splitlines()
        assert rows[0] == "id_a,id_b,cluster"
        found = {tuple(r.split(",")[:2]) for r in rows[1:]}
        gold_set = {tuple(p) for p in duplicates}
        assert len(found & gold_set) >= 0.5 * len(gold_set)
