"""Crowdsourced blocking (Section 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import BlockerConfig, CorleoneConfig, ForestConfig, MatcherConfig
from repro.core.blocker import Blocker, apply_rules_streaming
from repro.crowd.service import LabelingService
from repro.crowd.simulated import PerfectCrowd
from repro.data.sampling import cartesian_size
from repro.features.library import build_feature_library
from repro.metrics import blocking_recall
from repro.rules.predicates import Predicate
from repro.rules.rule import Rule
from repro.synth.restaurants import generate_restaurants


@pytest.fixture
def blocking_setup():
    dataset = generate_restaurants(n_a=120, n_b=90, n_matches=30, seed=11)
    config = CorleoneConfig(
        forest=ForestConfig(n_trees=5),
        blocker=BlockerConfig(t_b=2000, top_k_rules=10,
                              max_labels_per_rule=60),
        matcher=MatcherConfig(batch_size=10, pool_size=40, n_converged=8,
                              n_degrade=6, max_iterations=20),
    )
    crowd = PerfectCrowd(dataset.matches, rng=np.random.default_rng(3))
    service = LabelingService(crowd, config.crowd)
    library = build_feature_library(dataset.table_a, dataset.table_b)
    blocker = Blocker(config, service, np.random.default_rng(4))
    return dataset, config, blocker, library, service


class TestTrigger:
    def test_small_product_skips_blocking(self, blocking_setup):
        dataset, config, _, library, service = blocking_setup
        big_config = config.replace(
            blocker=BlockerConfig(t_b=10**9)
        )
        blocker = Blocker(big_config, service, np.random.default_rng(4))
        result = blocker.run(dataset.table_a, dataset.table_b, library,
                             dataset.seed_labels)
        assert not result.triggered
        assert result.umbrella_size == cartesian_size(
            dataset.table_a, dataset.table_b
        )
        assert result.pairs_labeled == 0

    def test_large_product_triggers(self, blocking_setup):
        dataset, _, blocker, library, _ = blocking_setup
        result = blocker.run(dataset.table_a, dataset.table_b, library,
                             dataset.seed_labels)
        assert result.triggered
        assert result.sample_size >= 2000


class TestBlockingQuality:
    def test_reduces_and_keeps_matches(self, blocking_setup):
        dataset, _, blocker, library, _ = blocking_setup
        result = blocker.run(dataset.table_a, dataset.table_b, library,
                             dataset.seed_labels)
        assert result.umbrella_size < result.cartesian
        recall = blocking_recall(result.candidate_pairs, dataset.matches)
        assert recall >= 0.9

    def test_applied_rules_are_negative_and_accepted(self, blocking_setup):
        dataset, _, blocker, library, _ = blocking_setup
        result = blocker.run(dataset.table_a, dataset.table_b, library,
                             dataset.seed_labels)
        accepted = {e.rule for e in result.evaluations if e.accepted}
        for rule in result.applied_rules:
            assert rule.is_negative
            assert rule in accepted

    def test_telemetry_populated(self, blocking_setup):
        dataset, _, blocker, library, _ = blocking_setup
        result = blocker.run(dataset.table_a, dataset.table_b, library,
                             dataset.seed_labels)
        assert result.n_candidate_rules > 0
        assert result.matcher_result is not None
        assert result.pairs_labeled > 0
        assert result.dollars > 0
        assert 0.0 < result.reduction_ratio <= 1.0


class TestStreamingApplication:
    def test_matches_vectorized_application(self, blocking_setup):
        """Streaming rule application must agree with full vectorization."""
        dataset, _, _, library, _ = blocking_setup
        name_col = library.names.index("name_jaro_winkler")
        rule = Rule(
            [Predicate(name_col, "name_jaro_winkler", True, 0.5)],
            predicts_match=False,
        )
        survivors = apply_rules_streaming(
            dataset.table_a, dataset.table_b, [rule], library,
            chunk_size=700,
        )
        # Check against direct evaluation on a sample of pairs.
        from repro.features.vectorize import vectorize_pairs
        from repro.data.sampling import iter_cartesian
        all_pairs = list(iter_cartesian(dataset.table_a, dataset.table_b))
        sample = all_pairs[::97]
        cs = vectorize_pairs(dataset.table_a, dataset.table_b, sample,
                             library)
        blocked = rule.applies(cs.features)
        survivor_set = set(survivors)
        for pair, is_blocked in zip(sample, blocked):
            assert (pair in survivor_set) == (not is_blocked)

    def test_no_rules_keeps_everything(self, blocking_setup):
        dataset, _, _, library, _ = blocking_setup
        survivors = apply_rules_streaming(
            dataset.table_a, dataset.table_b, [], library
        )
        assert len(survivors) == cartesian_size(
            dataset.table_a, dataset.table_b
        )


class TestParallelApplication:
    def test_parallel_matches_sequential(self, blocking_setup):
        from repro.core.blocker import apply_rules_parallel
        dataset, _, _, library, _ = blocking_setup
        name_col = library.names.index("name_jaro_winkler")
        phone_col = library.names.index("phone_jaro_winkler")
        rules = [
            Rule([Predicate(name_col, "name_jaro_winkler", True, 0.5)],
                 predicts_match=False),
            Rule([Predicate(phone_col, "phone_jaro_winkler", True, 0.3)],
                 predicts_match=False),
        ]
        sequential = apply_rules_streaming(
            dataset.table_a, dataset.table_b, rules, library
        )
        parallel = apply_rules_parallel(
            dataset.table_a, dataset.table_b, rules, library, n_workers=3
        )
        assert parallel == sequential

    def test_tfidf_rules_fall_back_to_sequential(self, blocking_setup):
        """Corpus-dependent features must not be sharded; the call still
        succeeds and agrees with the sequential result."""
        from repro.core.blocker import apply_rules_parallel
        from repro.data.table import AttrType, Record, Schema, Table
        from repro.features.library import build_feature_library
        schema = Schema.from_pairs([("desc", AttrType.TEXT)])
        table_a = Table("a", schema, [
            Record(f"a{i}", {"desc": f"alpha beta gamma {i}"})
            for i in range(12)
        ])
        table_b = Table("b", schema, [
            Record(f"b{i}", {"desc": f"alpha beta delta {i}"})
            for i in range(12)
        ])
        library = build_feature_library(table_a, table_b)
        cosine_col = library.names.index("desc_cosine_tfidf")
        rule = Rule(
            [Predicate(cosine_col, "desc_cosine_tfidf", True, 0.2)],
            predicts_match=False,
        )
        sequential = apply_rules_streaming(table_a, table_b, [rule],
                                           library)
        parallel = apply_rules_parallel(table_a, table_b, [rule],
                                        library, n_workers=4)
        assert parallel == sequential

    def test_mismatched_worker_library_falls_back(self, blocking_setup):
        """Regression: rules extracted against one feature order used to
        be applied against a worker's differently-ordered rebuilt
        library, silently scoring the wrong features.  The mismatch is
        now detected and the call warns and falls back to the (correct)
        sequential path."""
        from repro.core.blocker import apply_rules_parallel
        from repro.features.library import FeatureLibrary
        dataset, _, _, library, _ = blocking_setup
        shuffled = FeatureLibrary(list(library.features)[::-1])
        name_col = shuffled.names.index("name_jaro_winkler")
        rules = [
            Rule([Predicate(name_col, "name_jaro_winkler", True, 0.5)],
                 predicts_match=False),
        ]
        sequential = apply_rules_streaming(
            dataset.table_a, dataset.table_b, rules, shuffled
        )
        with pytest.warns(RuntimeWarning,
                          match="parallel blocking disabled"):
            survivors = apply_rules_parallel(
                dataset.table_a, dataset.table_b, rules, shuffled,
                n_workers=3,
            )
        assert survivors == sequential

    def test_single_worker_is_sequential(self, blocking_setup):
        from repro.core.blocker import apply_rules_parallel
        dataset, _, _, library, _ = blocking_setup
        survivors = apply_rules_parallel(
            dataset.table_a, dataset.table_b, [], library, n_workers=1
        )
        assert len(survivors) == cartesian_size(
            dataset.table_a, dataset.table_b
        )


class TestFallbackReporting:
    """Lost parallelism is reported through ``on_fallback``, not hidden."""

    def test_corpus_dependent_fallback_is_reported(self):
        from repro.core.blocker import apply_rules_parallel
        from repro.data.table import AttrType, Record, Schema, Table
        schema = Schema.from_pairs([("desc", AttrType.TEXT)])
        table_a = Table("a", schema, [
            Record(f"a{i}", {"desc": f"alpha beta gamma {i}"})
            for i in range(12)
        ])
        table_b = Table("b", schema, [
            Record(f"b{i}", {"desc": f"alpha beta delta {i}"})
            for i in range(12)
        ])
        library = build_feature_library(table_a, table_b)
        cosine_col = library.names.index("desc_cosine_tfidf")
        rule = Rule(
            [Predicate(cosine_col, "desc_cosine_tfidf", True, 0.2)],
            predicts_match=False,
        )
        fallbacks = []
        apply_rules_parallel(
            table_a, table_b, [rule], library, n_workers=4,
            on_fallback=lambda reason, detail: fallbacks.append(reason),
        )
        assert fallbacks == ["corpus_dependent"]

    def test_library_mismatch_fallback_is_reported(self, blocking_setup):
        from repro.core.blocker import apply_rules_parallel
        from repro.features.library import FeatureLibrary
        dataset, _, _, library, _ = blocking_setup
        shuffled = FeatureLibrary(list(library.features)[::-1])
        name_col = shuffled.names.index("name_jaro_winkler")
        rules = [
            Rule([Predicate(name_col, "name_jaro_winkler", True, 0.5)],
                 predicts_match=False),
        ]
        fallbacks = []
        with pytest.warns(RuntimeWarning,
                          match="parallel blocking disabled"):
            apply_rules_parallel(
                dataset.table_a, dataset.table_b, rules, shuffled,
                n_workers=3,
                on_fallback=lambda reason, detail: fallbacks.append(
                    (reason, detail)),
            )
        assert [reason for reason, _ in fallbacks] == ["library_mismatch"]
        assert "expected" in fallbacks[0][1]

    def test_deliberate_sizing_is_not_reported(self, blocking_setup):
        """n_workers=1 / tiny A are choices, not lost parallelism."""
        from repro.core.blocker import apply_rules_parallel
        dataset, _, _, library, _ = blocking_setup
        fallbacks = []
        apply_rules_parallel(
            dataset.table_a, dataset.table_b, [], library, n_workers=1,
            on_fallback=lambda reason, detail: fallbacks.append(reason),
        )
        assert fallbacks == []
