"""The durable-storage subsystem: writer, manifest, recovery, faults.

Unit coverage for :mod:`repro.storage` — the atomic-write discipline,
the per-run ``MANIFEST.json`` ledger, checkpoint generations with
last-good fallback, quarantine/sweep/repair recovery, and the
deterministic storage fault injector — plus hypothesis property tests
proving the torn-write contract: a checkpoint document truncated at
*any* byte offset resumes from the last good generation, and a torn
``.npz`` always surfaces as a typed :class:`~repro.exceptions.DataError`
rather than a raw zipfile/numpy traceback.
"""

from __future__ import annotations

import errno
import json
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import persistence
from repro.exceptions import DataError
from repro.exec.sharding import ShardStore
from repro.engine.checkpoint import (
    CHECKPOINT_FILE,
    GENERATIONS_DIR,
    load_checkpoint,
)
from repro.storage import (
    MANIFEST_FILE,
    QUARANTINE_DIR,
    STORAGE_FAULT_KINDS,
    ArtifactWriter,
    RecoveryLog,
    SimulatedCrashError,
    StorageFaultInjector,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_npz,
    atomic_write_text,
    cleanup_stale_tmp,
    file_sha256,
    fsync_enabled,
    load_manifest,
    quarantine_artifact,
    repair_trace,
    set_fsync,
    sha256_hex,
    storage_fault_seed,
    verify_artifact,
)


class TestAtomicWrites:
    """The free atomic_write_* functions."""

    def test_bytes_roundtrip_and_digest(self, tmp_path):
        path = tmp_path / "artifact.bin"
        digest = atomic_write_bytes(path, b"payload")
        assert path.read_bytes() == b"payload"
        assert digest == sha256_hex(b"payload") == file_sha256(path)

    def test_replaces_existing_content_atomically(self, tmp_path):
        path = tmp_path / "artifact.txt"
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"
        assert not list(tmp_path.glob("*.tmp"))

    def test_json_and_npz_roundtrip(self, tmp_path):
        doc_path = tmp_path / "doc.json"
        atomic_write_json(doc_path, {"b": 2, "a": 1}, sort_keys=True)
        assert json.loads(doc_path.read_text()) == {"a": 1, "b": 2}

        npz_path = tmp_path / "arrays.npz"
        digest = atomic_write_npz(npz_path, {"x": np.arange(5)})
        assert digest == file_sha256(npz_path)
        with np.load(npz_path) as data:
            assert data["x"].tolist() == [0, 1, 2, 3, 4]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "nested" / "deep" / "doc.json"
        atomic_write_json(path, {"ok": True})
        assert json.loads(path.read_text()) == {"ok": True}

    def test_fsync_toggle(self):
        assert fsync_enabled()
        try:
            set_fsync(False)
            assert not fsync_enabled()
        finally:
            set_fsync(True)
        assert fsync_enabled()

    def test_volatile_write_skips_fsync_but_stays_atomic(
            self, tmp_path, monkeypatch):
        """durable=False: no fsync, same replace discipline and digest."""
        import os as _os

        calls = []
        real_fsync = _os.fsync
        monkeypatch.setattr(
            "os.fsync", lambda fd: calls.append(fd) or real_fsync(fd))

        path = tmp_path / "snapshot.json"
        atomic_write_text(path, "old")
        assert calls  # the durable default fsyncs
        calls.clear()
        digest = atomic_write_json(path, {"live": True}, durable=False)
        assert not calls  # volatile snapshots never fsync
        assert json.loads(path.read_text()) == {"live": True}
        assert digest == file_sha256(path)
        assert not list(tmp_path.glob("*.tmp"))


class TestArtifactWriter:
    """The manifest-keeping writer."""

    def test_writes_are_recorded_with_sha_bytes_generation(self, tmp_path):
        writer = ArtifactWriter(tmp_path)
        writer.atomic_write_text("a.txt", "alpha")
        manifest = load_manifest(tmp_path)
        entry = manifest["a.txt"]
        assert entry["sha256"] == sha256_hex(b"alpha")
        assert entry["bytes"] == 5
        assert entry["generation"] == 1

    def test_generation_increments_per_rewrite(self, tmp_path):
        writer = ArtifactWriter(tmp_path)
        for n in range(3):
            writer.atomic_write_text("a.txt", f"v{n}")
        assert load_manifest(tmp_path)["a.txt"]["generation"] == 3

    def test_batch_defers_manifest_flush(self, tmp_path):
        writer = ArtifactWriter(tmp_path)
        with writer.batch():
            writer.atomic_write_text("a.txt", "alpha")
            assert load_manifest(tmp_path) is None
        assert load_manifest(tmp_path)["a.txt"]["bytes"] == 5

    def test_shared_root_writers_merge_not_clobber(self, tmp_path):
        first = ArtifactWriter(tmp_path)
        second = ArtifactWriter(tmp_path)
        first.atomic_write_text("a.txt", "alpha")
        second.atomic_write_text("b.txt", "beta")
        manifest = load_manifest(tmp_path)
        assert set(manifest) == {"a.txt", "b.txt"}

    def test_record_file_manifests_external_bytes(self, tmp_path):
        (tmp_path / "spill.npy").write_bytes(b"external")
        writer = ArtifactWriter(tmp_path)
        digest = writer.record_file("spill.npy")
        assert digest == sha256_hex(b"external")
        assert load_manifest(tmp_path)["spill.npy"]["bytes"] == 8

    def test_forget_drops_entry(self, tmp_path):
        writer = ArtifactWriter(tmp_path)
        writer.atomic_write_text("a.txt", "alpha")
        writer.atomic_write_text("b.txt", "beta")
        writer.forget("a.txt")
        assert set(load_manifest(tmp_path)) == {"b.txt"}
        assert writer.entry("a.txt") is None

    def test_entry_reads_staged_then_persisted(self, tmp_path):
        writer = ArtifactWriter(tmp_path)
        with writer.batch():
            writer.atomic_write_text("a.txt", "alpha")
            assert writer.entry("a.txt")["generation"] == 1
        assert writer.entry("a.txt")["generation"] == 1


class TestLoadManifestTolerance:
    """The ledger is metadata — unreadable means unavailable, not fatal."""

    def test_missing_is_none(self, tmp_path):
        assert load_manifest(tmp_path) is None

    def test_junk_is_none(self, tmp_path):
        (tmp_path / MANIFEST_FILE).write_text("{not json")
        assert load_manifest(tmp_path) is None

    def test_wrong_format_is_none(self, tmp_path):
        (tmp_path / MANIFEST_FILE).write_text(
            json.dumps({"format": "something-else", "artifacts": {}}))
        assert load_manifest(tmp_path) is None


class TestVerifyArtifact:
    def test_match_mismatch_and_absent(self, tmp_path):
        writer = ArtifactWriter(tmp_path)
        path = writer.atomic_write_text("a.txt", "alpha")
        verdict, actual, expected = verify_artifact(tmp_path, path)
        assert verdict is True and actual == expected

        path.write_text("tampered")
        verdict, actual, expected = verify_artifact(tmp_path, path)
        assert verdict is False
        assert actual == sha256_hex(b"tampered")
        assert expected == sha256_hex(b"alpha")

        unknown = tmp_path / "unknown.txt"
        unknown.write_text("x")
        verdict, _, expected = verify_artifact(tmp_path, unknown)
        assert verdict is None and expected is None

    def test_no_manifest_means_unavailable(self, tmp_path):
        path = tmp_path / "a.txt"
        path.write_text("alpha")
        verdict, actual, expected = verify_artifact(tmp_path, path)
        assert (verdict, actual, expected) == (None, "", None)


class TestQuarantine:
    def test_moves_bytes_aside_never_deletes(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_bytes(b"evidence")
        target = quarantine_artifact(tmp_path, path)
        assert not path.exists()
        assert target == tmp_path / QUARANTINE_DIR / "bad.json"
        assert target.read_bytes() == b"evidence"

    def test_deterministic_integer_suffix_on_collision(self, tmp_path):
        for n in range(3):
            path = tmp_path / "bad.json"
            path.write_bytes(f"v{n}".encode())
            target = quarantine_artifact(tmp_path, path)
            expected = "bad.json" if n == 0 else f"bad.json.{n}"
            assert target.name == expected


class TestCleanupStaleTmp:
    def test_sweeps_recursively_and_sorted(self, tmp_path):
        (tmp_path / "a.json.tmp").write_bytes(b"x")
        sub = tmp_path / "generations"
        sub.mkdir()
        (sub / "b.json.tmp").write_bytes(b"y")
        (tmp_path / "keep.json").write_text("{}")
        removed = cleanup_stale_tmp(tmp_path)
        assert removed == sorted(removed)
        assert {p.name for p in removed} == {"a.json.tmp", "b.json.tmp"}
        assert (tmp_path / "keep.json").exists()
        assert not list(tmp_path.rglob("*.tmp"))

    def test_missing_directory_is_noop(self, tmp_path):
        assert cleanup_stale_tmp(tmp_path / "absent") == []


class TestRepairTrace:
    def test_clean_trace_untouched(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_bytes(b'{"sequence": 0}\n{"sequence": 1}\n')
        assert repair_trace(path) == 0
        assert path.read_bytes().endswith(b'{"sequence": 1}\n')

    def test_torn_tail_truncated_to_last_newline(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_bytes(b'{"sequence": 0}\n{"seque')
        assert repair_trace(path) == len(b'{"seque')
        assert path.read_bytes() == b'{"sequence": 0}\n'

    def test_fully_torn_single_line_becomes_empty(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_bytes(b'{"torn')
        assert repair_trace(path) == 6
        assert path.read_bytes() == b""

    def test_missing_file_is_noop(self, tmp_path):
        assert repair_trace(tmp_path / "absent.jsonl") == 0


class TestRecoveryLog:
    def test_buffers_then_replays_in_order(self):
        class Bus:
            def __init__(self):
                self.seen = []

            def emit(self, name, **payload):
                self.seen.append((name, payload))

        log = RecoveryLog()
        log.emit("artifact_corrupt", artifact="a")
        log.emit("checkpoint_fallback", artifact="b")
        bus = Bus()
        log.replay(bus)
        assert [name for name, _ in bus.seen] == [
            "artifact_corrupt", "checkpoint_fallback"]
        assert not log.records
        log.replay(bus)  # idempotent once drained
        assert len(bus.seen) == 2


class TestFaultInjector:
    """Determinism and per-kind behaviour of the storage injector."""

    def test_streams_are_seed_deterministic_and_kind_independent(self):
        seed_a = storage_fault_seed(7, "torn_write")
        seed_b = storage_fault_seed(7, "torn_write")
        assert seed_a.entropy == seed_b.entropy
        assert seed_a.spawn_key == seed_b.spawn_key
        assert (storage_fault_seed(7, "bitflip").spawn_key
                != seed_a.spawn_key)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            StorageFaultInjector(0).arm("meteor", "x")

    def test_torn_write_crashes_and_keeps_old_target(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_text(path, "old complete content")
        injector = StorageFaultInjector(seed=3)
        injector.arm("torn_write", "doc.json")
        with injector, pytest.raises(SimulatedCrashError) as excinfo:
            atomic_write_text(path, "new content that will tear")
        assert excinfo.value.kind == "torn_write"
        assert path.read_text() == "old complete content"
        tmp = path.with_name(path.name + ".tmp")
        assert tmp.exists()  # the torn leftover, for the sweep
        assert len(tmp.read_bytes()) < len(b"new content that will tear")
        assert not injector.armed and injector.counts["torn_write"] == 1

    def test_torn_offsets_replay_with_same_seed(self, tmp_path):
        def torn_size(root: Path) -> int:
            path = root / "doc.json"
            injector = StorageFaultInjector(seed=11)
            injector.arm("torn_write", "doc.json")
            with injector, pytest.raises(SimulatedCrashError):
                atomic_write_text(path, "x" * 100)
            return len((root / "doc.json.tmp").read_bytes())

        first = tmp_path / "a"
        second = tmp_path / "b"
        first.mkdir()
        second.mkdir()
        assert torn_size(first) == torn_size(second)

    def test_enospc_raises_real_oserror(self, tmp_path):
        path = tmp_path / "doc.json"
        injector = StorageFaultInjector(seed=3)
        injector.arm("enospc", "doc.json")
        with injector, pytest.raises(OSError) as excinfo:
            atomic_write_text(path, "content")
        assert excinfo.value.errno == errno.ENOSPC
        assert not path.exists()

    def test_crash_before_replace_keeps_old_plus_stale_tmp(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_text(path, "old")
        injector = StorageFaultInjector(seed=3)
        injector.arm("crash_before", "doc.json")
        with injector, pytest.raises(SimulatedCrashError):
            atomic_write_text(path, "new")
        assert path.read_text() == "old"
        assert (path.with_name("doc.json.tmp")).read_text() == "new"

    def test_crash_after_replace_shows_new_content(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_text(path, "old")
        injector = StorageFaultInjector(seed=3)
        injector.arm("crash_after", "doc.json")
        with injector, pytest.raises(SimulatedCrashError):
            atomic_write_text(path, "new")
        assert path.read_text() == "new"
        assert not path.with_name("doc.json.tmp").exists()

    def test_skip_counts_down_matching_writes(self, tmp_path):
        path = tmp_path / "doc.json"
        injector = StorageFaultInjector(seed=3)
        injector.arm("crash_after", "doc.json", skip=2)
        with injector:
            atomic_write_text(path, "one")
            atomic_write_text(path, "two")
            with pytest.raises(SimulatedCrashError):
                atomic_write_text(path, "three")
        assert path.read_text() == "three"

    def test_non_matching_writes_pass_through(self, tmp_path):
        injector = StorageFaultInjector(seed=3)
        injector.arm("crash_before", "checkpoint.json")
        with injector:
            atomic_write_text(tmp_path / "other.json", "fine")
        assert injector.armed  # still waiting for its target

    def test_flip_bit_changes_exactly_one_bit_deterministically(
            self, tmp_path):
        path = tmp_path / "artifact.bin"
        payload = bytes(range(64))
        path.write_bytes(payload)
        offset = StorageFaultInjector(seed=5).flip_bit(path)
        flipped = path.read_bytes()
        assert len(flipped) == len(payload)
        diffs = [i for i, (a, b) in enumerate(zip(payload, flipped))
                 if a != b]
        assert diffs == [offset]
        assert bin(payload[offset] ^ flipped[offset]).count("1") == 1

        other = tmp_path / "replay.bin"
        other.write_bytes(payload)
        assert StorageFaultInjector(seed=5).flip_bit(other) == offset

    def test_scatter_stale_tmp_drops_junk(self, tmp_path):
        paths = StorageFaultInjector(seed=5).scatter_stale_tmp(
            tmp_path, count=3)
        assert len(paths) == 3
        assert all(p.name.endswith(".tmp") for p in paths)
        assert cleanup_stale_tmp(tmp_path) == sorted(paths)

    def test_simulated_crash_is_not_an_exception_subclass(self):
        # No production ``except Exception`` may swallow a crash.
        assert issubclass(SimulatedCrashError, BaseException)
        assert not issubclass(SimulatedCrashError, Exception)

    def test_kind_registry_is_closed(self):
        assert set(STORAGE_FAULT_KINDS) == {
            "torn_write", "enospc", "crash_before", "crash_after",
            "bitflip", "stale_tmp"}


def _checkpoint_doc(index: int, payload) -> dict:
    """A minimal parseable checkpoint document for fallback tests."""
    return {
        "format": "corleone-checkpoint",
        "version": persistence.FORMAT_VERSION,
        "index": index,
        "payload": payload,
    }


def _write_generations(run_dir: Path, documents: list[dict]) -> None:
    """Write a checkpoint chain the way the checkpointer lays it out."""
    writer = ArtifactWriter(run_dir)
    for document in documents:
        body = json.dumps(document)
        name = f"{GENERATIONS_DIR}/checkpoint-{document['index']:06d}.json"
        writer.atomic_write_text(name, body)
        writer.atomic_write_text(CHECKPOINT_FILE, body)


class TestGenerationFallback:
    """load_checkpoint's last-good recovery chain."""

    def test_intact_primary_wins(self, tmp_path):
        _write_generations(tmp_path, [_checkpoint_doc(0, "a"),
                                      _checkpoint_doc(1, "b")])
        document = load_checkpoint(tmp_path)
        assert document["index"] == 1 and document["payload"] == "b"

    def test_corrupt_primary_falls_back_with_zero_rollback(self, tmp_path):
        _write_generations(tmp_path, [_checkpoint_doc(0, "a"),
                                      _checkpoint_doc(1, "b")])
        (tmp_path / CHECKPOINT_FILE).write_text("garbage")
        recovery = RecoveryLog()
        document = load_checkpoint(tmp_path, recovery=recovery)
        # The newest generation duplicates the primary: no ground lost.
        assert document["index"] == 1 and document["payload"] == "b"
        names = [name for name, _ in recovery.records]
        assert names == ["artifact_corrupt", "artifact_quarantined",
                         "checkpoint_fallback"]
        assert (tmp_path / QUARANTINE_DIR / CHECKPOINT_FILE).exists()

    def test_double_corruption_rolls_back_one_generation(self, tmp_path):
        _write_generations(tmp_path, [_checkpoint_doc(0, "a"),
                                      _checkpoint_doc(1, "b")])
        (tmp_path / CHECKPOINT_FILE).write_text("garbage")
        newest = tmp_path / GENERATIONS_DIR / "checkpoint-000001.json"
        newest.write_text("also garbage")
        recovery = RecoveryLog()
        document = load_checkpoint(tmp_path, recovery=recovery)
        assert document["index"] == 0 and document["payload"] == "a"
        fallback = [payload for name, payload in recovery.records
                    if name == "checkpoint_fallback"]
        assert fallback == [{"artifact":
                             f"{GENERATIONS_DIR}/checkpoint-000000.json",
                             "index": 0}]

    def test_everything_corrupt_returns_none(self, tmp_path):
        _write_generations(tmp_path, [_checkpoint_doc(0, "a")])
        (tmp_path / CHECKPOINT_FILE).write_text("garbage")
        (tmp_path / GENERATIONS_DIR
         / "checkpoint-000000.json").write_text("garbage")
        recovery = RecoveryLog()
        assert load_checkpoint(tmp_path, recovery=recovery) is None
        assert len(recovery.records) == 4  # 2 x (corrupt + quarantined)

    def test_verified_but_unparseable_is_a_writer_bug(self, tmp_path):
        # Manifest says these exact bytes are what the writer produced,
        # yet they do not parse: that must surface, not be masked.
        writer = ArtifactWriter(tmp_path)
        writer.atomic_write_text(CHECKPOINT_FILE, "not json at all")
        with pytest.raises(DataError):
            load_checkpoint(tmp_path)

    def test_unmanifested_directory_still_loads(self, tmp_path):
        # Pre-durability run dirs have no MANIFEST.json; parse checks
        # carry the load.
        doc = _checkpoint_doc(4, "legacy")
        (tmp_path / CHECKPOINT_FILE).write_text(json.dumps(doc))
        assert load_checkpoint(tmp_path)["index"] == 4


_JSON_PAYLOADS = st.dictionaries(
    st.text(st.characters(codec="ascii", categories=("L", "N")),
            min_size=1, max_size=8),
    st.integers(-1000, 1000) | st.text(max_size=12),
    max_size=4,
)


class TestTornWriteProperties:
    """Truncation at every byte offset: last-good or typed error."""

    @settings(max_examples=4, deadline=None)
    @given(payload_a=_JSON_PAYLOADS, payload_b=_JSON_PAYLOADS)
    def test_json_checkpoint_truncated_anywhere_resumes_last_good(
            self, payload_a, payload_b):
        with tempfile.TemporaryDirectory() as root:
            run_dir = Path(root)
            _write_generations(run_dir, [_checkpoint_doc(0, payload_a),
                                         _checkpoint_doc(1, payload_b)])
            primary = run_dir / CHECKPOINT_FILE
            full = primary.read_bytes()
            for offset in range(len(full) + 1):
                primary.write_bytes(full[:offset])
                document = load_checkpoint(run_dir)
                # Either the truncation kept the full file (offset ==
                # len) or the loader fell back — in both cases the
                # newest generation's state is recovered, bit for bit.
                assert document is not None
                assert document["index"] == 1
                assert document["payload"] == payload_b

    @settings(max_examples=4, deadline=None)
    @given(values=st.lists(st.integers(-10**6, 10**6),
                           min_size=1, max_size=8))
    def test_npz_truncated_anywhere_is_a_typed_error(self, values):
        with tempfile.TemporaryDirectory() as root:
            store = ShardStore(Path(root) / "shards", fingerprint="f")
            store.prepare(n_shards=1)
            survivors = [(f"a{v}", f"b{v}") for v in values]
            store.write(0, survivors, pairs_scanned=len(values))
            path = store.shard_path(0)
            full = path.read_bytes()
            loaded, scanned, _, _ = store.load(0)
            assert loaded == survivors and scanned == len(values)
            for offset in range(len(full)):
                path.write_bytes(full[:offset])
                with pytest.raises(DataError) as excinfo:
                    store.load(0)
                assert str(path) in str(excinfo.value)
