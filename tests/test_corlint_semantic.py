"""corlint v2: semantic-model and interprocedural-rule tests.

Fixture trees exercise the whole-program layer added on top of the
per-file rules: the semantic model itself (import resolution, call
graph, facts cache), the five interprocedural rules CL010–CL014
(positive and negative fixtures each), and the CLI/baseline behaviors
that ride along (``--changed``, ``--check-baseline``, ``--model-stats``,
``--rule``, cache pruning, missing-file baseline staleness).
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

import pytest

from repro.analysis import Analyzer, Baseline, baseline_from_findings
from repro.analysis.cli import main as corlint_main
from repro.analysis.model import build_model
from repro.analysis.source import collect_files, load_module


def check(tree: dict[str, str], tmp_path: Path,
          baseline: Baseline | None = None, partial: bool = False):
    """Write ``relpath -> source`` fixtures and analyze the tree."""
    for relpath, source in tree.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    analyzer = Analyzer(use_cache=False, root=tmp_path, partial=partial)
    return analyzer.run([tmp_path], baseline=baseline)


def model_for(tree: dict[str, str], tmp_path: Path,
              use_cache: bool = False):
    """Write fixtures and compile just the semantic model."""
    for relpath, source in tree.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    modules = [load_module(p, tmp_path)
               for p in collect_files([tmp_path])]
    return build_model(modules, root=tmp_path, use_cache=use_cache)


def findings_of(report, rule_id: str):
    """New findings of one rule, in report order."""
    return [f for f in report.new_findings if f.rule_id == rule_id]


# ----------------------------------------------------------------------
# The semantic model
# ----------------------------------------------------------------------


class TestSemanticModel:
    def test_resolves_reexport_chain(self, tmp_path):
        model = model_for({
            "pkg/__init__.py": "from .impl import thing\n",
            "pkg/impl.py": "def thing():\n    return 1\n",
            "pkg/user.py": "from pkg import thing\n\n"
                           "def use():\n    return thing()\n",
        }, tmp_path)
        assert model.resolve_export("pkg", "thing") == \
            ("pkg.impl", "thing")

    def test_resolves_submodule_import_through_init_cycle(self, tmp_path):
        # `from . import sub` inside pkg/__init__ binds the submodule
        # under its own name — resolution must not loop forever.
        model = model_for({
            "pkg/__init__.py": "from . import sub\n",
            "pkg/sub.py": "def f():\n    return 1\n",
        }, tmp_path)
        assert model.resolve_export("pkg", "sub") == ("pkg.sub", "")

    def test_call_graph_links_direct_and_imported_calls(self, tmp_path):
        model = model_for({
            "pkg/__init__.py": "",
            "pkg/a.py": "from pkg.b import helper\n\n"
                        "def caller():\n    return helper()\n",
            "pkg/b.py": "def helper():\n    return 1\n",
        }, tmp_path)
        callees = {e.callee for e in
                   model.callees.get("pkg.a::caller", [])}
        assert "pkg.b::helper" in callees

    def test_whole_program_requires_package_root(self, tmp_path):
        partial = model_for({
            "pkg/sub.py": "def f():\n    return 1\n",
        }, tmp_path)
        assert not partial.whole_program

    def test_facts_cache_round_trip(self, tmp_path):
        tree = {
            "pkg/__init__.py": "",
            "pkg/a.py": "def f():\n    return 1\n",
        }
        cold = model_for(tree, tmp_path, use_cache=True)
        assert cold.cached_modules == 0
        assert (tmp_path / ".corlint_cache" / "model.json").is_file()
        warm = model_for(tree, tmp_path, use_cache=True)
        assert warm.cached_modules == len(tree)
        assert set(warm.functions) == set(cold.functions)

    def test_model_cache_prunes_deleted_files(self, tmp_path):
        tree = {
            "pkg/__init__.py": "",
            "pkg/a.py": "def f():\n    return 1\n",
            "pkg/b.py": "def g():\n    return 2\n",
        }
        model_for(tree, tmp_path, use_cache=True)
        (tmp_path / "pkg" / "b.py").unlink()
        modules = [load_module(p, tmp_path)
                   for p in collect_files([tmp_path])]
        build_model(modules, root=tmp_path, use_cache=True)
        payload = json.loads(
            (tmp_path / ".corlint_cache" / "model.json").read_text())
        assert "pkg/b.py" not in payload["entries"]


# ----------------------------------------------------------------------
# CL010 — RNG-stream flow
# ----------------------------------------------------------------------


_CROSS_STAGE_RNG = {
    "pkg/__init__.py": "",
    "pkg/stages.py": (
        "def train_matcher(state, rng):\n"
        "    return rng.random()\n"
        "\n"
        "class BlockStage:\n"
        "    def run(self, state, ctx):\n"
        "        rng = ctx.rng(\"blocker\")\n"
        "        return train_matcher(state, rng)\n"
    ),
}


class TestRngFlowRule:
    def test_stream_crossing_stages_is_flagged(self, tmp_path):
        report = check(_CROSS_STAGE_RNG, tmp_path)
        found = findings_of(report, "CL010")
        assert len(found) == 1
        assert "blocker" in found[0].message
        assert "matcher" in found[0].message

    def test_flows_through_intermediate_helper(self, tmp_path):
        report = check({
            "pkg/__init__.py": "",
            "pkg/stages.py": (
                "def relay(state, generator):\n"
                "    return train_matcher(state, generator)\n"
                "\n"
                "def train_matcher(state, rng):\n"
                "    return rng.random()\n"
                "\n"
                "class BlockStage:\n"
                "    def run(self, state, ctx):\n"
                "        rng = ctx.rng(\"blocker\")\n"
                "        return relay(state, rng)\n"
            ),
        }, tmp_path)
        assert len(findings_of(report, "CL010")) == 1

    def test_stream_staying_in_its_stage_is_clean(self, tmp_path):
        report = check({
            "pkg/__init__.py": "",
            "pkg/stages.py": (
                "def block_sample(state, rng):\n"
                "    return rng.random()\n"
                "\n"
                "class BlockStage:\n"
                "    def run(self, state, ctx):\n"
                "        rng = ctx.rng(\"blocker\")\n"
                "        return block_sample(state, rng)\n"
            ),
        }, tmp_path)
        assert findings_of(report, "CL010") == []

    def test_unstaged_helper_is_clean(self, tmp_path):
        report = check({
            "pkg/__init__.py": "",
            "pkg/stages.py": (
                "def shuffle(items, rng):\n"
                "    return rng.permutation(items)\n"
                "\n"
                "class BlockStage:\n"
                "    def run(self, state, ctx):\n"
                "        return shuffle(state, ctx.rng(\"blocker\"))\n"
            ),
        }, tmp_path)
        assert findings_of(report, "CL010") == []


# ----------------------------------------------------------------------
# CL011 — checkpoint completeness
# ----------------------------------------------------------------------


_LEAKY_CHECKPOINT = {
    "pkg/__init__.py": "",
    "pkg/tracker.py": (
        "class Tracker:\n"
        "    def __init__(self):\n"
        "        self.count = 0\n"
        "        self.missing = 0\n"
        "\n"
        "    def bump(self):\n"
        "        self.count += 1\n"
        "        self.missing += 1\n"
        "\n"
        "    def state_dict(self):\n"
        "        return {\"count\": self.count}\n"
        "\n"
        "    def load_state(self, payload):\n"
        "        self.count = payload[\"count\"]\n"
    ),
}


class TestCheckpointStateRule:
    def test_unserialized_mutable_attr_is_flagged(self, tmp_path):
        report = check(_LEAKY_CHECKPOINT, tmp_path)
        found = findings_of(report, "CL011")
        assert len(found) == 1
        assert "Tracker.missing" in found[0].message

    def test_derived_pragma_exempts_attr(self, tmp_path):
        tree = dict(_LEAKY_CHECKPOINT)
        tree["pkg/tracker.py"] = tree["pkg/tracker.py"].replace(
            "        self.missing = 0\n",
            "        self.missing = 0  # corlint: derived\n",
        )
        report = check(tree, tmp_path)
        assert findings_of(report, "CL011") == []

    def test_string_key_reference_counts_as_serialized(self, tmp_path):
        tree = dict(_LEAKY_CHECKPOINT)
        tree["pkg/tracker.py"] = tree["pkg/tracker.py"].replace(
            "return {\"count\": self.count}",
            "return {\"count\": self.count, \"missing\": self.missing}",
        )
        report = check(tree, tmp_path)
        assert findings_of(report, "CL011") == []

    def test_unmutated_attr_is_clean(self, tmp_path):
        report = check({
            "pkg/__init__.py": "",
            "pkg/tracker.py": (
                "class Tracker:\n"
                "    def __init__(self, config):\n"
                "        self.config = config\n"
                "        self.count = 0\n"
                "\n"
                "    def bump(self):\n"
                "        self.count += 1\n"
                "\n"
                "    def state_dict(self):\n"
                "        return {\"count\": self.count}\n"
                "\n"
                "    def load_state(self, payload):\n"
                "        self.count = payload[\"count\"]\n"
            ),
        }, tmp_path)
        assert findings_of(report, "CL011") == []

    def test_non_checkpoint_class_is_ignored(self, tmp_path):
        report = check({
            "pkg/__init__.py": "",
            "pkg/plain.py": (
                "class Plain:\n"
                "    def __init__(self):\n"
                "        self.count = 0\n"
                "\n"
                "    def bump(self):\n"
                "        self.count += 1\n"
            ),
        }, tmp_path)
        assert findings_of(report, "CL011") == []


# ----------------------------------------------------------------------
# CL012 — obs consistency
# ----------------------------------------------------------------------


_OBS_BASE = {
    "pkg/__init__.py": "",
    "pkg/events.py": (
        "EVENT_DONE = \"done\"\n"
        "EVENT_NAMES = (\n"
        "    EVENT_DONE,\n"
        ")\n"
        "\n"
        "class Bus:\n"
        "    def emit(self, name):\n"
        "        return name\n"
    ),
    "pkg/producer.py": (
        "from pkg.events import EVENT_DONE\n"
        "\n"
        "def produce(bus):\n"
        "    bus.emit(EVENT_DONE)\n"
    ),
    "pkg/consumer.py": (
        "from pkg.events import EVENT_DONE\n"
        "\n"
        "def on_event(name, reg):\n"
        "    if name == EVENT_DONE:\n"
        "        reg.get(\"pkg_done_total\").inc()\n"
    ),
    "pkg/catalog.py": (
        "def build_catalog(registry):\n"
        "    registry.counter(\"pkg_done_total\", \"done events\")\n"
    ),
}


class TestObsConsistencyRule:
    def test_closed_loop_is_clean(self, tmp_path):
        report = check(_OBS_BASE, tmp_path)
        assert findings_of(report, "CL012") == []

    def test_declared_but_never_emitted_event(self, tmp_path):
        tree = dict(_OBS_BASE)
        tree["pkg/producer.py"] = "def produce(bus):\n    return None\n"
        report = check(tree, tmp_path)
        found = findings_of(report, "CL012")
        assert any("never emitted" in f.message for f in found)

    def test_emitted_but_never_consumed_event(self, tmp_path):
        tree = dict(_OBS_BASE)
        tree["pkg/consumer.py"] = (
            "def on_event(name, reg):\n"
            "    reg.get(\"pkg_done_total\").inc()\n"
        )
        report = check(tree, tmp_path)
        found = findings_of(report, "CL012")
        assert any("no module consumes it" in f.message for f in found)

    def test_helper_style_emit_counts_as_producer(self, tmp_path):
        tree = dict(_OBS_BASE)
        tree["pkg/producer.py"] = (
            "from pkg.events import EVENT_DONE\n"
            "\n"
            "def _emit(bus, name):\n"
            "    if bus is not None:\n"
            "        bus.emit(name)\n"
            "\n"
            "def produce(bus):\n"
            "    _emit(bus, EVENT_DONE)\n"
        )
        report = check(tree, tmp_path)
        assert not any("never emitted" in f.message
                       for f in findings_of(report, "CL012"))

    def test_metric_registered_but_never_produced(self, tmp_path):
        tree = dict(_OBS_BASE)
        tree["pkg/catalog.py"] = (
            "def build_catalog(registry):\n"
            "    registry.counter(\"pkg_done_total\", \"done events\")\n"
            "    registry.gauge(\"pkg_orphan\", \"nobody writes this\")\n"
        )
        report = check(tree, tmp_path)
        found = findings_of(report, "CL012")
        assert any("pkg_orphan" in f.message
                   and "looks it up" in f.message for f in found)

    def test_metric_produced_but_never_registered(self, tmp_path):
        tree = dict(_OBS_BASE)
        tree["pkg/consumer.py"] = (
            "from pkg.events import EVENT_DONE\n"
            "\n"
            "def on_event(name, reg):\n"
            "    if name == EVENT_DONE:\n"
            "        reg.get(\"pkg_done_total\").inc()\n"
            "        reg.get(\"pkg_unknown_total\").inc()\n"
        )
        report = check(tree, tmp_path)
        found = findings_of(report, "CL012")
        assert any("pkg_unknown_total" in f.message for f in found)

    def test_skipped_on_partial_scans(self, tmp_path):
        tree = dict(_OBS_BASE)
        tree["pkg/producer.py"] = "def produce(bus):\n    return None\n"
        report = check(tree, tmp_path, partial=True)
        assert findings_of(report, "CL012") == []


# ----------------------------------------------------------------------
# CL013 — wall-clock purity
# ----------------------------------------------------------------------


class TestWallClockPurityRule:
    def test_transitive_clock_read_is_flagged(self, tmp_path):
        report = check({
            "pkg/__init__.py": "",
            "pkg/helpers.py": (
                "import time\n"
                "\n"
                "def stamp():\n"
                "    return time.time()\n"
            ),
            "pkg/stages.py": (
                "from pkg.helpers import stamp\n"
                "\n"
                "class BlockStage:\n"
                "    def run(self, state, ctx):\n"
                "        return stamp()\n"
            ),
        }, tmp_path)
        found = findings_of(report, "CL013")
        assert len(found) == 1
        assert found[0].path == "pkg/helpers.py"
        assert "BlockStage.run" in found[0].message

    def test_direct_clock_read_in_stage_is_flagged(self, tmp_path):
        report = check({
            "pkg/__init__.py": "",
            "pkg/stages.py": (
                "from time import perf_counter\n"
                "\n"
                "class BlockStage:\n"
                "    def run(self, state, ctx):\n"
                "        return perf_counter()\n"
            ),
        }, tmp_path)
        assert len(findings_of(report, "CL013")) == 1

    def test_profiling_module_is_allowlisted(self, tmp_path):
        report = check({
            "pkg/__init__.py": "",
            "pkg/profiling.py": (
                "import time\n"
                "\n"
                "def stamp():\n"
                "    return time.time()\n"
            ),
            "pkg/stages.py": (
                "from pkg.profiling import stamp\n"
                "\n"
                "class BlockStage:\n"
                "    def run(self, state, ctx):\n"
                "        return stamp()\n"
            ),
        }, tmp_path)
        assert findings_of(report, "CL013") == []

    def test_clock_unreachable_from_stages_is_clean(self, tmp_path):
        report = check({
            "pkg/__init__.py": "",
            "pkg/cli.py": (
                "import time\n"
                "\n"
                "def banner():\n"
                "    return time.time()\n"
            ),
            "pkg/stages.py": (
                "class BlockStage:\n"
                "    def run(self, state, ctx):\n"
                "        return state\n"
            ),
        }, tmp_path)
        assert findings_of(report, "CL013") == []


# ----------------------------------------------------------------------
# CL014 — dead public API
# ----------------------------------------------------------------------


class TestDeadApiRule:
    def test_unreferenced_public_def_is_flagged(self, tmp_path):
        report = check({
            "pkg/__init__.py": "from .used import api\n",
            "pkg/used.py": "def api():\n    return 1\n",
            "pkg/dead.py": "def orphan():\n    return 2\n",
        }, tmp_path)
        found = findings_of(report, "CL014")
        assert len(found) == 1
        assert "orphan" in found[0].message

    def test_reexported_def_is_clean(self, tmp_path):
        report = check({
            "pkg/__init__.py": "from .used import api\n",
            "pkg/used.py": "def api():\n    return 1\n",
        }, tmp_path)
        assert findings_of(report, "CL014") == []

    def test_all_export_is_deliberate(self, tmp_path):
        report = check({
            "pkg/__init__.py": "",
            "pkg/mod.py": (
                "__all__ = [\"api\"]\n"
                "\n"
                "def api():\n"
                "    return 1\n"
            ),
        }, tmp_path)
        assert findings_of(report, "CL014") == []

    def test_module_attr_reference_counts(self, tmp_path):
        report = check({
            "pkg/__init__.py": "",
            "pkg/hooks.py": "def record(x):\n    return x\n",
            "pkg/core.py": (
                "from pkg import hooks\n"
                "\n"
                "def work():\n"
                "    return hooks.record(1)\n"
            ),
        }, tmp_path)
        assert not any("record" in f.message
                       for f in findings_of(report, "CL014"))

    def test_dangling_all_entry_is_flagged(self, tmp_path):
        report = check({
            "pkg/__init__.py": "",
            "pkg/mod.py": (
                "__all__ = [\"ghost\"]\n"
                "\n"
                "def api():\n"
                "    return 1\n"
            ),
        }, tmp_path)
        found = findings_of(report, "CL014")
        assert any("ghost" in f.message for f in found)

    def test_skipped_on_partial_scans(self, tmp_path):
        report = check({
            "pkg/__init__.py": "",
            "pkg/dead.py": "def orphan():\n    return 2\n",
        }, tmp_path, partial=True)
        assert findings_of(report, "CL014") == []


# ----------------------------------------------------------------------
# Baseline staleness and scoping
# ----------------------------------------------------------------------


_BAD_RNG_MOD = (
    "import numpy as np\n"
    "\n"
    "def f():\n"
    "    return np.random.default_rng()\n"
)


class TestBaselineStaleness:
    def test_deleted_file_entry_is_stale(self, tmp_path):
        (tmp_path / "core").mkdir()
        (tmp_path / "core" / "mod.py").write_text(_BAD_RNG_MOD)
        analyzer = Analyzer(use_cache=False, root=tmp_path)
        first = analyzer.run([tmp_path])
        baseline = baseline_from_findings(first.new_findings)
        (tmp_path / "core" / "mod.py").unlink()
        (tmp_path / "core" / "other.py").write_text("X = 1\n")
        report = Analyzer(use_cache=False, root=tmp_path).run(
            [tmp_path], baseline=baseline)
        assert len(report.stale_entries) == 1
        assert report.stale_entries[0].path == "core/mod.py"

    def test_out_of_scope_entries_are_not_stale(self, tmp_path):
        (tmp_path / "core").mkdir()
        (tmp_path / "other").mkdir()
        (tmp_path / "core" / "mod.py").write_text(_BAD_RNG_MOD)
        (tmp_path / "other" / "clean.py").write_text("X = 1\n")
        analyzer = Analyzer(use_cache=False, root=tmp_path)
        baseline = baseline_from_findings(
            analyzer.run([tmp_path]).new_findings)
        report = Analyzer(use_cache=False, root=tmp_path).run(
            [tmp_path / "other"], baseline=baseline)
        assert report.stale_entries == []
        assert report.new_findings == []

    def test_deleted_file_is_stale_even_out_of_scope(self, tmp_path):
        (tmp_path / "core").mkdir()
        (tmp_path / "other").mkdir()
        (tmp_path / "core" / "mod.py").write_text(_BAD_RNG_MOD)
        (tmp_path / "other" / "clean.py").write_text("X = 1\n")
        analyzer = Analyzer(use_cache=False, root=tmp_path)
        baseline = baseline_from_findings(
            analyzer.run([tmp_path]).new_findings)
        (tmp_path / "core" / "mod.py").unlink()
        report = Analyzer(use_cache=False, root=tmp_path).run(
            [tmp_path / "other"], baseline=baseline)
        assert len(report.stale_entries) == 1


# ----------------------------------------------------------------------
# Cache pruning
# ----------------------------------------------------------------------


class TestCachePruning:
    def test_findings_cache_drops_deleted_files(self, tmp_path):
        (tmp_path / "a.py").write_text("X = 1\n")
        (tmp_path / "b.py").write_text("Y = 2\n")
        Analyzer(use_cache=True, root=tmp_path).run([tmp_path])
        cache_path = tmp_path / ".corlint_cache" / "findings.json"
        entries = json.loads(cache_path.read_text())["entries"]
        assert set(entries) == {"a.py", "b.py"}
        (tmp_path / "b.py").unlink()
        Analyzer(use_cache=True, root=tmp_path).run([tmp_path])
        entries = json.loads(cache_path.read_text())["entries"]
        assert set(entries) == {"a.py"}


# ----------------------------------------------------------------------
# CLI: --changed, --check-baseline, --model-stats, --rule
# ----------------------------------------------------------------------


def _git(repo: Path, *args: str) -> None:
    subprocess.run(["git", *args], cwd=repo, check=True,
                   capture_output=True)


@pytest.fixture
def git_repo(tmp_path, monkeypatch):
    """A committed git repo with src/repro/mod.py, cwd inside it."""
    repo = tmp_path / "repo"
    (repo / "src" / "repro").mkdir(parents=True)
    (repo / "src" / "repro" / "mod.py").write_text("X = 1\n")
    _git(repo, "init", "-q")
    _git(repo, "config", "user.email", "test@example.com")
    _git(repo, "config", "user.name", "test")
    _git(repo, "add", "-A")
    _git(repo, "commit", "-qm", "seed")
    monkeypatch.chdir(repo)
    return repo


class TestCliChanged:
    def test_no_changes_exits_0(self, git_repo, capsys):
        code = corlint_main(["--changed", "HEAD", "--no-cache",
                             "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no Python files changed" in out

    def test_changed_file_with_finding_exits_1(self, git_repo, capsys):
        # mod.py lives outside the CL001 components; a changed file
        # under core/ trips the determinism rule.
        target = git_repo / "src" / "repro" / "core" / "mod.py"
        target.parent.mkdir()
        target.write_text(_BAD_RNG_MOD)
        _git(git_repo, "add", "-A")
        code = corlint_main(["--changed", "HEAD", "--no-cache",
                             "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 1, out
        assert "CL001" in out

    def test_changed_conflicts_with_paths(self, git_repo, capsys):
        code = corlint_main(["src", "--changed", "HEAD"])
        assert code == 2

    def test_changed_skips_whole_program_rules(self, git_repo, capsys):
        # An orphan public def would trip CL014 on a full scan; a
        # diff-aware scan must not pretend to know the whole tree.
        (git_repo / "src" / "repro" / "mod.py").write_text(
            "def orphan():\n    return 1\n")
        code = corlint_main(["--changed", "HEAD", "--no-cache",
                             "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 0, out


class TestCliCheckBaseline:
    def test_tight_baseline_exits_0(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(_BAD_RNG_MOD)
        baseline_path = tmp_path / "baseline.json"
        assert corlint_main([str(tmp_path), "--no-cache",
                             "--baseline", str(baseline_path),
                             "--update-baseline"]) == 0
        code = corlint_main([str(tmp_path), "--no-cache",
                             "--baseline", str(baseline_path),
                             "--check-baseline"])
        out = capsys.readouterr().out
        assert code == 0
        assert "tight" in out

    def test_stale_baseline_exits_1(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(_BAD_RNG_MOD)
        (tmp_path / "keep.py").write_text("X = 1\n")
        baseline_path = tmp_path / "baseline.json"
        assert corlint_main([str(tmp_path), "--no-cache",
                             "--baseline", str(baseline_path),
                             "--update-baseline"]) == 0
        (tmp_path / "mod.py").unlink()
        code = corlint_main([str(tmp_path), "--no-cache",
                             "--baseline", str(baseline_path),
                             "--check-baseline"])
        out = capsys.readouterr().out
        assert code == 1
        assert "stale baseline entry" in out


class TestCliModelStatsAndRule:
    def test_model_stats_prints_shape(self, tmp_path, capsys):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "__init__.py").write_text("")
        (tmp_path / "pkg" / "mod.py").write_text(
            "def f():\n    return 1\n\n\ndef g():\n    return f()\n")
        code = corlint_main([str(tmp_path), "--no-cache",
                             "--no-baseline", "--model-stats"])
        err = capsys.readouterr().err
        assert code in (0, 1)
        assert "semantic model" in err
        assert "modules: " in err
        assert "timings" in err

    def test_rule_flag_restricts_rules(self, tmp_path, capsys):
        (tmp_path / "core").mkdir()
        (tmp_path / "core" / "mod.py").write_text(_BAD_RNG_MOD)
        code = corlint_main([str(tmp_path), "--no-cache",
                             "--no-baseline", "--rule", "CL013"])
        assert code == 0
        code = corlint_main([str(tmp_path), "--no-cache",
                             "--no-baseline", "--rule", "CL001"])
        assert code == 1

    def test_unknown_rule_flag_is_usage_error(self, tmp_path, capsys):
        code = corlint_main([str(tmp_path), "--no-cache",
                             "--rule", "CL999"])
        assert code == 2


# ----------------------------------------------------------------------
# JSON reporter schema (golden)
# ----------------------------------------------------------------------


class TestJsonSchemaGolden:
    def test_report_schema_is_stable(self, tmp_path):
        (tmp_path / "core").mkdir()
        (tmp_path / "core" / "mod.py").write_text(_BAD_RNG_MOD)
        out_path = tmp_path / "report.json"
        corlint_main([str(tmp_path), "--no-cache", "--no-baseline",
                      "--format", "json", "--output", str(out_path)])
        payload = json.loads(out_path.read_text())
        assert sorted(payload) == sorted(
            ["tool", "version", "files_scanned", "findings",
             "stale_baseline_entries", "summary"])
        finding = payload["findings"][0]
        assert sorted(finding) == sorted(
            ["path", "line", "column", "rule", "severity", "message",
             "fingerprint", "line_content", "baselined"])
        assert finding["rule"] == "CL001"
        assert sorted(payload["summary"]) == sorted(
            ["new", "baselined", "stale", "new_by_rule",
             "baselined_by_rule"])
        second = tmp_path / "second.json"
        corlint_main([str(tmp_path), "--no-cache", "--no-baseline",
                      "--format", "json", "--output", str(second)])
        assert second.read_text() == out_path.read_text()
