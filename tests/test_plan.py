"""The columnar plan compiler, executor and spill layer (repro.plan).

Four layers of coverage: property tests over the compiler's greedy
cheapest-marginal-first ordering and predicate pushdown; a bit-exact
parity sweep (plan executor vs streaming, under rule permutations,
chunk geometries and the sharded executor's plan engine) on all three
synthetic datasets; the spill manager + external-candidates
persistence contract; and engine-level integration — a plan-enabled,
spill-backed hands-off run must reproduce the plan-disabled report
byte for byte, including through kill/resume at spill-referencing
checkpoints.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import (
    BlockerConfig,
    CorleoneConfig,
    ForestConfig,
    MatcherConfig,
    PlanConfig,
)
from repro.core.blocker import apply_rules_streaming
from repro.exceptions import ConfigurationError, DataError
from repro.exec import apply_rules_sharded
from repro.features.batch import cache_stats, reset_cache_stats
from repro.features.library import Feature, FeatureLibrary, \
    build_feature_library
from repro.features.vectorize import vectorize_pairs
from repro.persistence import load_candidates, save_candidates
from repro.plan import (
    PlanStats,
    SpillManager,
    apply_rules_plan,
    compile_blocking_plan,
    compile_vectorize_plan,
    open_readonly,
    spill_path,
)
from repro.rules.predicates import Predicate
from repro.rules.rule import Rule
from repro.synth.citations import generate_citations
from repro.synth.products import generate_products
from repro.synth.restaurants import generate_restaurants

_DATASETS = {
    "restaurants": lambda: generate_restaurants(
        n_a=60, n_b=45, n_matches=15, seed=11),
    "products": lambda: generate_products(
        n_a=40, n_b=60, n_matches=15, seed=17),
    "citations": lambda: generate_citations(
        n_a=30, n_b=60, n_matches=10, seed=5),
}


def _blocking_rules(library) -> list[Rule]:
    """Mixed-cost rules so plan ordering has real work to do."""
    rules = []
    for feature in library.features:
        if feature.measure in ("jaro_winkler", "levenshtein",
                               "jaccard_word", "cosine_tfidf"):
            index = library.names.index(feature.name)
            rules.append(Rule(
                [Predicate(index, feature.name, True, 0.45)],
                predicts_match=False,
            ))
        if len(rules) == 3:
            break
    assert len(rules) >= 2, "not enough string features in the library"
    return rules


# ----------------------------------------------------------------------
# Compiler properties
# ----------------------------------------------------------------------

def _toy_library(costs: list[float]) -> FeatureLibrary:
    """A feature library with the given per-column costs (no kernels)."""
    return FeatureLibrary([
        Feature(name=f"f{i}", attribute=f"a{i}", measure="exact",
                cost=cost, compute=lambda a, b: 0.0)
        for i, cost in enumerate(costs)
    ])


@st.composite
def _compile_inputs(draw):
    n_features = draw(st.integers(min_value=2, max_value=8))
    costs = draw(st.lists(
        st.floats(min_value=0.5, max_value=10.0, allow_nan=False),
        min_size=n_features, max_size=n_features))
    n_rules = draw(st.integers(min_value=1, max_value=6))
    rules = []
    for _ in range(n_rules):
        indices = draw(st.lists(
            st.integers(min_value=0, max_value=n_features - 1),
            min_size=1, max_size=4))
        rules.append(Rule(
            [Predicate(i, f"f{i}", True, 0.5) for i in indices],
            predicts_match=False,
        ))
    return costs, rules


class TestCompileBlockingPlan:
    @settings(max_examples=200, deadline=None)
    @given(_compile_inputs())
    def test_greedy_order_and_pushdown_invariants(self, inputs):
        """The compiled plan honours every structural contract at once:
        each rule exactly once, greedily minimal marginal cost at every
        position, shared-first/ascending-cost steps, exact accounting.
        """
        costs, rules = inputs
        library = _toy_library(costs)
        plan = compile_blocking_plan(rules, library)

        # Every input rule appears exactly once, by provenance index.
        assert sorted(n.source_index for n in plan.nodes) == \
            list(range(len(rules)))
        for node in plan.nodes:
            assert node.rule is rules[node.source_index]

        computed: set[int] = set()
        placed: set[int] = set()
        for position, node in enumerate(plan.nodes):
            assert node.position == position

            def marginal(rule) -> float:
                return sum(costs[i] for i in rule.feature_indices
                           if i not in computed)

            # Greedy minimality: no unplaced rule was strictly cheaper.
            assert node.marginal_cost == pytest.approx(marginal(node.rule))
            others = [marginal(rule) for src, rule in enumerate(rules)
                      if src not in placed and src != node.source_index]
            assert all(node.marginal_cost <= other + 1e-12
                       for other in others)

            # Pushdown: pre-paid feature groups first, then new groups
            # by ascending (cost, index); only a group's first step
            # pays, and groups never interleave.
            first_seen: list[int] = []
            for step in node.steps:
                index = step.predicate.feature_index
                if index not in first_seen:
                    first_seen.append(index)
                expected_shared = (index in computed
                                   or index in first_seen[:-1]
                                   or (index == first_seen[-1]
                                       and step is not next(
                                           s for s in node.steps
                                           if s.predicate.feature_index
                                           == index)))
                assert step.shared == expected_shared
                assert step.cost == (0.0 if step.shared
                                     else costs[index])
            assert len(first_seen) == len(set(first_seen))
            keys = [(0 if i in computed else 1,
                     0.0 if i in computed else costs[i], i)
                    for i in first_seen]
            assert keys == sorted(keys)
            assert node.marginal_cost == pytest.approx(
                sum(s.cost for s in node.steps))

            computed.update(node.rule.feature_indices)
            placed.add(node.source_index)

        assert plan.needed == tuple(sorted(computed))
        assert plan.total_cost == pytest.approx(
            sum(costs[i] for i in plan.needed))

    def test_shared_features_cost_nothing_for_later_rules(self):
        library = _toy_library([1.0, 6.0, 3.0])
        cheap = Rule([Predicate(1, "f1", True, 0.5)], predicts_match=False)
        free_rider = Rule([Predicate(1, "f1", False, 0.2),
                           Predicate(0, "f0", True, 0.5)],
                          predicts_match=False)
        plan = compile_blocking_plan([free_rider, cheap], library)
        # cheap (cost 6) runs first only if chosen... it is not: the
        # free_rider costs 7, so cheap's 6 wins; free_rider then pays
        # only f0 because f1 is already materialized.
        assert [n.source_index for n in plan.nodes] == [1, 0]
        assert plan.nodes[1].marginal_cost == pytest.approx(1.0)
        shared_steps = [s for s in plan.nodes[1].steps if s.shared]
        assert [s.predicate.feature_index for s in shared_steps] == [1]
        assert "[shared]" in plan.describe()


class TestCompileVectorizePlan:
    def test_covers_every_column_exactly_once(self):
        dataset = _DATASETS["restaurants"]()
        library = build_feature_library(dataset.table_a, dataset.table_b)
        plan = compile_vectorize_plan(library)
        assert sorted(s.column for s in plan.steps) == \
            list(range(len(library)))

    def test_grouped_by_attribute_ascending_cost(self):
        dataset = _DATASETS["restaurants"]()
        library = build_feature_library(dataset.table_a, dataset.table_b)
        plan = compile_vectorize_plan(library)
        seen_attributes: list[str] = []
        previous = None
        for step in plan.steps:
            attribute = step.feature.attribute
            if attribute not in seen_attributes:
                seen_attributes.append(attribute)
                previous = None
            else:
                assert attribute == seen_attributes[-1], \
                    "attribute groups interleaved"
                assert previous is not None
                assert step.feature.cost >= previous
            previous = step.feature.cost


# ----------------------------------------------------------------------
# Bit-exact parity sweep
# ----------------------------------------------------------------------

@pytest.fixture(scope="module", params=sorted(_DATASETS))
def parity_setup(request):
    dataset = _DATASETS[request.param]()
    library = build_feature_library(dataset.table_a, dataset.table_b)
    rules = _blocking_rules(library)
    golden = apply_rules_streaming(dataset.table_a, dataset.table_b,
                                   rules, library)
    assert 0 < len(golden) < len(dataset.table_a) * len(dataset.table_b)
    return dataset, library, rules, golden


class TestPlanParity:
    """The plan engine must return the identical candidate list."""

    def test_plan_matches_streaming(self, parity_setup):
        dataset, library, rules, golden = parity_setup
        assert apply_rules_plan(dataset.table_a, dataset.table_b,
                                rules, library) == golden

    def test_rule_order_never_changes_survivors(self, parity_setup):
        dataset, library, rules, golden = parity_setup
        for permuted in (list(reversed(rules)),
                         rules[1:] + rules[:1]):
            assert apply_rules_plan(dataset.table_a, dataset.table_b,
                                    permuted, library) == golden

    def test_chunk_geometry_invariant(self, parity_setup):
        dataset, library, rules, golden = parity_setup
        for chunk_size in (7, 64):
            assert apply_rules_plan(dataset.table_a, dataset.table_b,
                                    rules, library,
                                    chunk_size=chunk_size) == golden

    def test_sharded_plan_engine_matches_streaming(self, parity_setup):
        dataset, library, rules, golden = parity_setup
        for n_workers in (1, 3):
            assert apply_rules_sharded(
                dataset.table_a, dataset.table_b, rules, library,
                n_workers=n_workers, engine="plan") == golden

    def test_sharded_stats_are_worker_count_invariant(self, parity_setup):
        dataset, library, rules, _ = parity_setup
        snapshots = []
        for n_workers in (1, 3):
            stats = PlanStats()
            apply_rules_sharded(dataset.table_a, dataset.table_b, rules,
                                library, n_workers=n_workers,
                                engine="plan", stats=stats)
            snapshots.append(stats.as_dict())
        assert snapshots[0] == snapshots[1]
        assert snapshots[0]["pairs"] > 0
        assert snapshots[0]["cells_computed"] <= \
            snapshots[0]["pairs"] * snapshots[0]["needed_width"]

    def test_plan_prunes_cells(self, parity_setup):
        dataset, library, rules, _ = parity_setup
        stats = PlanStats()
        apply_rules_plan(dataset.table_a, dataset.table_b, rules,
                         library, stats=stats)
        assert stats.cells_computed < stats.cells_budget
        assert stats.cells_pruned == \
            stats.cells_budget - stats.cells_computed

    def test_vectorize_plan_engine_bit_identical(self, parity_setup):
        dataset, library, _, golden = parity_setup
        batched = vectorize_pairs(dataset.table_a, dataset.table_b,
                                  golden, library)
        planned = vectorize_pairs(dataset.table_a, dataset.table_b,
                                  golden, library, engine="plan")
        assert batched.features.tobytes() == planned.features.tobytes()

    def test_vectorize_out_buffer_is_filled_in_place(self, parity_setup):
        dataset, library, _, golden = parity_setup
        out = np.empty((len(golden), len(library)), dtype=np.float64)
        result = vectorize_pairs(dataset.table_a, dataset.table_b,
                                 golden, library, engine="plan", out=out)
        assert result.features.base is out or result.features is out

    def test_vectorize_out_shape_mismatch_rejected(self, parity_setup):
        dataset, library, _, golden = parity_setup
        bad = np.empty((len(golden) + 1, len(library)), dtype=np.float64)
        with pytest.raises(DataError):
            vectorize_pairs(dataset.table_a, dataset.table_b, golden,
                            library, out=bad)


class TestCacheMissAccounting:
    def test_warm_second_pass_adds_no_misses(self):
        dataset = _DATASETS["products"]()
        library = build_feature_library(dataset.table_a, dataset.table_b)
        rules = _blocking_rules(library)
        reset_cache_stats()
        apply_rules_plan(dataset.table_a, dataset.table_b, rules, library)
        cold = dict(cache_stats())
        assert cold, "cold pass recorded no cache misses"
        apply_rules_plan(dataset.table_a, dataset.table_b, rules, library)
        assert dict(cache_stats()) == cold

    def test_library_rebuild_shows_tfidf_table_waste(self):
        """The legacy per-rule TF/IDF rebuild becomes a visible count."""
        dataset = _DATASETS["products"]()
        library = build_feature_library(dataset.table_a, dataset.table_b)
        pairs = apply_rules_streaming(
            dataset.table_a, dataset.table_b,
            _blocking_rules(library), library)
        reset_cache_stats()
        vectorize_pairs(dataset.table_a, dataset.table_b, pairs, library)
        first = cache_stats().get("tfidf_table", 0)
        assert first > 0
        rebuilt = build_feature_library(dataset.table_a, dataset.table_b)
        vectorize_pairs(dataset.table_a, dataset.table_b, pairs, rebuilt)
        assert cache_stats().get("tfidf_table", 0) > first


# ----------------------------------------------------------------------
# Spill manager + external candidates persistence
# ----------------------------------------------------------------------

class TestSpillManager:
    def test_small_matrices_stay_on_heap(self, tmp_path):
        spill = SpillManager(tmp_path / "spill", threshold_bytes=1 << 20)
        array = spill.allocate("tiny", (4, 4))
        assert not isinstance(array, np.memmap)
        assert spill.bytes_spilled == 0
        assert spill_path(array) is None
        assert not (tmp_path / "spill").exists()

    def test_large_matrices_spill_to_npy(self, tmp_path):
        spill = SpillManager(tmp_path / "spill", threshold_bytes=64)
        array = spill.allocate("big", (8, 8))
        assert isinstance(array, np.memmap)
        assert spill.bytes_spilled == array.nbytes
        assert (tmp_path / "spill" / "big.npy").is_file()
        assert spill_path(array) == tmp_path / "spill" / "big.npy"
        assert "big" in spill.manifest()

    def test_threshold_zero_disables_spilling(self, tmp_path):
        spill = SpillManager(tmp_path / "spill", threshold_bytes=0)
        assert not isinstance(spill.allocate("x", (100, 100)), np.memmap)

    def test_spilled_bytes_roundtrip_readonly(self, tmp_path):
        spill = SpillManager(tmp_path / "spill", threshold_bytes=1)
        array = spill.allocate("data", (5, 3))
        array[:] = np.arange(15, dtype=np.float64).reshape(5, 3)
        spill.close()
        reread = open_readonly(tmp_path / "spill" / "data.npy")
        assert not reread.flags.writeable
        assert np.array_equal(
            reread, np.arange(15, dtype=np.float64).reshape(5, 3))

    def test_spill_path_sees_through_asarray_views(self, tmp_path):
        spill = SpillManager(tmp_path / "spill", threshold_bytes=1)
        array = spill.allocate("v", (4, 2))
        view = np.asarray(array)
        assert spill_path(view) == tmp_path / "spill" / "v.npy"


class TestExternalCandidates:
    def _candidates(self, tmp_path):
        dataset = _DATASETS["restaurants"]()
        library = build_feature_library(dataset.table_a, dataset.table_b)
        rules = _blocking_rules(library)
        pairs = apply_rules_streaming(dataset.table_a, dataset.table_b,
                                      rules, library)
        spill = SpillManager(tmp_path / "spill", threshold_bytes=1)
        out = spill.allocate("candidates", (len(pairs), len(library)))
        candidates = vectorize_pairs(dataset.table_a, dataset.table_b,
                                     pairs, library, out=out)
        spill.close()
        return candidates

    def test_external_roundtrip_is_bit_identical(self, tmp_path):
        candidates = self._candidates(tmp_path)
        path = tmp_path / "candidates.npz"
        save_candidates(candidates, path,
                        external_features="spill/candidates.npy")
        with np.load(path, allow_pickle=False) as data:
            assert "features" not in data.files
            assert str(data["features_file"][0]) == "spill/candidates.npy"
        loaded = load_candidates(path)
        assert loaded.pairs == candidates.pairs
        assert loaded.features.tobytes() == candidates.features.tobytes()
        assert isinstance(
            loaded.features if isinstance(loaded.features, np.memmap)
            else loaded.features.base, np.memmap)

    def test_missing_spill_file_fails_loudly(self, tmp_path):
        candidates = self._candidates(tmp_path)
        path = tmp_path / "candidates.npz"
        save_candidates(candidates, path,
                        external_features="spill/candidates.npy")
        (tmp_path / "spill" / "candidates.npy").unlink()
        with pytest.raises(DataError, match="spill file"):
            load_candidates(path)

    def test_swapped_spill_file_fails_fingerprint_check(self, tmp_path):
        candidates = self._candidates(tmp_path)
        path = tmp_path / "candidates.npz"
        save_candidates(candidates, path,
                        external_features="spill/candidates.npy")
        np.save(tmp_path / "spill" / "candidates.npy",
                np.zeros((2, 2), dtype=np.float64))
        with pytest.raises(DataError, match="recorded"):
            load_candidates(path)


class TestPlanConfig:
    def test_negative_spill_threshold_rejected(self):
        with pytest.raises(ConfigurationError, match="spill_threshold"):
            CorleoneConfig(plan=PlanConfig(spill_threshold_mb=-1.0))

    def test_threshold_mb_converts_to_bytes(self):
        assert PlanConfig(spill_threshold_mb=2.0).spill_threshold_bytes \
            == 2 * 1024 * 1024


# ----------------------------------------------------------------------
# Engine integration: plan + spill through checkpoints
# ----------------------------------------------------------------------

class TestEngineIntegration:
    def _config(self, plan: PlanConfig) -> CorleoneConfig:
        return CorleoneConfig(
            forest=ForestConfig(n_trees=5),
            blocker=BlockerConfig(t_b=1500, top_k_rules=10,
                                  max_labels_per_rule=60,
                                  executor="sharded", n_workers=2),
            matcher=MatcherConfig(batch_size=10, pool_size=40,
                                  n_converged=8, n_degrade=6,
                                  max_iterations=12),
            max_pipeline_iterations=1,
            seed=0,
            plan=plan,
        )

    def _run(self, config, dataset, crowd, **kwargs):
        from repro.core.pipeline import Corleone
        return Corleone(config, crowd(), seed=123, **kwargs).run(
            dataset.table_a, dataset.table_b, dataset.seed_labels)

    @pytest.fixture(scope="class")
    def engine_setup(self, tmp_path_factory):
        from repro import persistence
        from repro.crowd.simulated import PerfectCrowd
        dataset = generate_restaurants(n_a=60, n_b=40, n_matches=15,
                                       seed=7)

        def crowd():
            return PerfectCrowd(dataset.matches,
                                rng=np.random.default_rng(11))

        golden = self._run(self._config(PlanConfig()), dataset, crowd)
        golden_report = persistence.result_report(golden)

        # The uninterrupted plan+spill run every resume test compares
        # against (report AND checkpointed metrics must both match).
        run_dir = tmp_path_factory.mktemp("plan") / "golden_run"
        spill_plan = PlanConfig(enabled=True, spill_threshold_mb=0.001)
        result = self._run(self._config(spill_plan), dataset, crowd,
                           run_dir=run_dir)
        assert persistence.result_report(result) == golden_report
        return dataset, crowd, golden_report, run_dir, spill_plan

    def test_plan_engine_reproduces_plan_off_report(self, engine_setup):
        from repro import persistence
        dataset, crowd, golden_report, _, _ = engine_setup
        plan_only = PlanConfig(enabled=True)
        result = self._run(self._config(plan_only), dataset, crowd)
        assert persistence.result_report(result) == golden_report

    def test_spill_run_checkpoints_reference_the_spill_file(
            self, engine_setup):
        _, _, _, run_dir, _ = engine_setup
        assert (run_dir / "spill" / "candidates.npy").is_file()
        with np.load(run_dir / "candidates.npz",
                     allow_pickle=False) as data:
            assert "features_file" in data.files
            assert "features" not in data.files
        loaded = load_candidates(run_dir / "candidates.npz")
        spilled = open_readonly(run_dir / "spill" / "candidates.npy")
        assert loaded.features.tobytes() == spilled.tobytes()

    def test_spill_run_records_plan_and_spill_metrics(self, engine_setup):
        _, _, _, run_dir, _ = engine_setup
        families = json.loads(
            (run_dir / "metrics.json").read_text())["metrics"]
        cells = {
            series["labels"]["outcome"]: series["value"]
            for series in
            families["corleone_plan_feature_cells_total"]["series"]
        }
        assert cells["computed"] > 0
        spilled = families["corleone_spill_bytes_total"]["series"]
        assert spilled and spilled[0]["value"] > 0

    def test_kill_mid_blocking_resumes_bit_identically(
            self, engine_setup, tmp_path):
        from repro import persistence
        from repro.core.pipeline import Corleone
        from repro.engine.events import EVENT_SHARD_COMPLETED
        dataset, crowd, golden_report, golden_dir, spill_plan = \
            engine_setup
        run_dir = tmp_path / "run"

        class _Killed(Exception):
            pass

        seen = [0]

        def killer(event):
            if event.name == EVENT_SHARD_COMPLETED:
                seen[0] += 1
                if seen[0] >= 2:
                    raise _Killed()

        pipeline = Corleone(self._config(spill_plan), crowd(), seed=123,
                            run_dir=run_dir)
        pipeline.bus.subscribe(killer)
        with pytest.raises(_Killed):
            pipeline.run(dataset.table_a, dataset.table_b,
                         dataset.seed_labels)

        resumed = Corleone.resume(run_dir, crowd())
        assert persistence.result_report(resumed) == golden_report
        # The byte-identity contract extends to the plan/spill metrics:
        # the resumed run's metrics.json equals the uninterrupted one's.
        assert (run_dir / "metrics.json").read_text() == \
            (golden_dir / "metrics.json").read_text()

    def test_kill_at_spill_checkpoint_resumes_bit_identically(
            self, engine_setup, tmp_path, monkeypatch):
        """Die after checkpoint 3 (candidates already reference the
        spill file); resume memory-maps them back and converges."""
        from repro import persistence
        from repro.core.pipeline import Corleone
        from repro.engine.checkpoint import Checkpointer
        dataset, crowd, golden_report, golden_dir, spill_plan = \
            engine_setup
        run_dir = tmp_path / "run"

        class _Killed(Exception):
            pass

        original = Checkpointer.write
        written = [0]

        def killing_write(self, state, ctx):
            index = original(self, state, ctx)
            written[0] += 1
            if written[0] == 3:
                raise _Killed()
            return index

        monkeypatch.setattr(Checkpointer, "write", killing_write)
        with pytest.raises(_Killed):
            self._run(self._config(spill_plan), dataset, crowd,
                      run_dir=run_dir)
        monkeypatch.setattr(Checkpointer, "write", original)

        with np.load(run_dir / "candidates.npz",
                     allow_pickle=False) as data:
            assert "features_file" in data.files  # killed post-spill

        resumed = Corleone.resume(run_dir, crowd())
        assert persistence.result_report(resumed) == golden_report
        assert (run_dir / "metrics.json").read_text() == \
            (golden_dir / "metrics.json").read_text()
