"""Chaos harness: fault rates × kill points over the full pipeline.

Runs the complete Corleone engine behind the resilient-gateway stack
(``ResilientCrowd`` over ``FaultyCrowd``) and asserts the robustness
contract end to end:

* at recoverable fault rates the run completes with F1 within tolerance
  of the fault-free golden, and every answer the platform delivered is
  an answer the cost tracker charged;
* a permanent outage trips the circuit breaker into a typed
  :class:`~repro.exceptions.CrowdUnavailableError` carrying a partial
  result, and ``Corleone.resume`` with a recovered platform reaches a
  result bit-identical to the never-killed faulty run;
* the engine trace records the fault/retry/repost/circuit events.

Spam is tested separately with a loose bound: spammers corrupt labels
(worker-quality noise the gateway cannot see), whereas timeouts,
expiries, duplicates and outages are lossless through retry.

The gateway is sized so a permanent outage trips the breaker inside one
labelling call: the service retries each question up to 3 times, the
gateway up to ``max_attempts`` per try, so ``failure_threshold`` must be
at most ``3 * max_attempts`` for the typed error to escape (rather than
a plain ``TransientCrowdError`` after retry exhaustion).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import persistence
from repro.config import (
    BlockerConfig,
    CorleoneConfig,
    EstimatorConfig,
    ForestConfig,
    LocatorConfig,
    MatcherConfig,
)
from repro.core.pipeline import Corleone
from repro.crowd import (
    CircuitBreaker,
    FaultSpec,
    FaultyCrowd,
    PerfectCrowd,
    ResilientCrowd,
    RetryPolicy,
    SimulatedCrowd,
)
from repro.engine import (
    EVENT_CIRCUIT_OPENED,
    EVENT_FAULT_INJECTED,
    EVENT_HIT_REPOSTED,
    EVENT_RETRY_SCHEDULED,
)
from repro.engine.checkpoint import TRACE_FILE
from repro.engine.events import read_trace
from repro.exceptions import CrowdUnavailableError
from repro.synth.products import generate_products
from repro.synth.restaurants import generate_restaurants

FAULT_SEED = 77
"""Root seed for every FaultyCrowd in the sweep."""

F1_TOLERANCE = 0.005
"""Recoverable faults must stay within half an F1 point of golden."""


def _engine_config(max_pipeline_iterations: int, t_b: int) -> CorleoneConfig:
    """A fast full-pipeline configuration for the chaos sweeps."""
    return CorleoneConfig(
        forest=ForestConfig(n_trees=5),
        blocker=BlockerConfig(t_b=t_b, top_k_rules=10,
                              max_labels_per_rule=60),
        matcher=MatcherConfig(batch_size=10, pool_size=40,
                              n_converged=8, n_degrade=6,
                              max_iterations=12),
        estimator=EstimatorConfig(probe_size=25, max_probes=30),
        locator=LocatorConfig(min_difficult_pairs=30),
        max_pipeline_iterations=max_pipeline_iterations,
        seed=0,
    )


_SCENARIOS = {
    # name -> (dataset factory, config, crowd error rate)
    "restaurants": (
        lambda: generate_restaurants(n_a=60, n_b=40, n_matches=15, seed=7),
        _engine_config(max_pipeline_iterations=2, t_b=1500),
        0.05,
    ),
    "products": (
        lambda: generate_products(n_a=40, n_b=120, n_matches=18, seed=17),
        _engine_config(max_pipeline_iterations=2, t_b=3000),
        0.0,
    ),
}


def f1(predicted, truth) -> float:
    """F1 of a predicted match set against the synthetic ground truth."""
    if not predicted:
        return 0.0
    true_positives = len(set(predicted) & set(truth))
    precision = true_positives / len(predicted)
    recall = true_positives / len(truth)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def chaos_stack(crowd, spec: FaultSpec):
    """The standard chaos stack: gateway over fault injector over crowd.

    Returns ``(gateway, faulty)`` so tests can read the injector's
    delivery counters after the run.
    """
    faulty = FaultyCrowd(crowd, spec, seed=FAULT_SEED)
    gateway = ResilientCrowd(
        faulty,
        RetryPolicy(max_attempts=7),
        breaker=CircuitBreaker(failure_threshold=20),
    )
    return gateway, faulty


@pytest.fixture(scope="module", params=sorted(_SCENARIOS))
def scenario(request):
    """(name, dataset, config, crowd factory, golden F1) per dataset."""
    name = request.param
    make_dataset, config, error_rate = _SCENARIOS[name]
    dataset = make_dataset()

    def crowd():
        if error_rate:
            return SimulatedCrowd(dataset.matches, error_rate=error_rate,
                                  rng=np.random.default_rng(11))
        return PerfectCrowd(dataset.matches, rng=np.random.default_rng(11))

    golden = Corleone(config, crowd(), seed=123).run(
        dataset.table_a, dataset.table_b, dataset.seed_labels)
    golden_f1 = f1(golden.predicted_matches, dataset.matches)
    return name, dataset, config, crowd, golden_f1


class TestFaultRateSweep:
    """Recoverable faults: full runs at increasing uniform rates."""

    @pytest.mark.parametrize("rate", [0.02, 0.1])
    def test_f1_within_tolerance_and_accounting_exact(self, scenario, rate):
        _, dataset, config, crowd, golden_f1 = scenario
        spec = FaultSpec.uniform(rate, spammer_rate=0.0)
        gateway, faulty = chaos_stack(crowd(), spec)

        result = Corleone(config, gateway, seed=123).run(
            dataset.table_a, dataset.table_b, dataset.seed_labels)

        assert result.stop_reason != "crowd_unavailable"
        assert faulty.faults_injected > 0  # the sweep actually injected
        chaos_f1 = f1(result.predicted_matches, dataset.matches)
        assert abs(chaos_f1 - golden_f1) <= F1_TOLERANCE
        # Every answer the platform delivered was charged, and nothing
        # that failed (timeouts, expiries, outages) was.
        assert result.cost.answers == faulty.answers_delivered

    def test_gateway_alone_is_transparent(self, scenario):
        """At a 0% fault rate the stack must not perturb the run."""
        _, dataset, config, crowd, golden_f1 = scenario
        gateway, faulty = chaos_stack(crowd(), FaultSpec())

        result = Corleone(config, gateway, seed=123).run(
            dataset.table_a, dataset.table_b, dataset.seed_labels)

        assert faulty.faults_injected == 0
        assert f1(result.predicted_matches, dataset.matches) == golden_f1
        assert result.cost.answers == faulty.answers_delivered


class TestSpamDegradation:
    """Spam corrupts labels, so it gets a loose bound, not equivalence."""

    def test_spam_degrades_gracefully(self, scenario):
        _, dataset, config, crowd, golden_f1 = scenario
        spec = FaultSpec(spammer_rate=0.1, spammer_burst=2)
        gateway, faulty = chaos_stack(crowd(), spec)

        result = Corleone(config, gateway, seed=123).run(
            dataset.table_a, dataset.table_b, dataset.seed_labels)

        assert result.stop_reason != "crowd_unavailable"
        assert faulty.counts["spammer"] > 0
        # Spam answers are real (delivered, billed) answers with wrong
        # labels; the run must still complete and stay useful.
        assert f1(result.predicted_matches, dataset.matches) >= \
            golden_f1 - 0.25
        assert result.cost.answers == faulty.answers_delivered


class TestOutageKillAndResume:
    """Permanent outage: typed failure, then bit-identical resume."""

    RATE = 0.1

    def _spec(self, hard_outage_after=None) -> FaultSpec:
        return FaultSpec.uniform(self.RATE, spammer_rate=0.0,
                                 hard_outage_after=hard_outage_after)

    @pytest.fixture()
    def faulty_golden_report(self, scenario):
        """The never-killed faulty run every resume must reproduce."""
        _, dataset, config, crowd, _ = scenario
        gateway, _ = chaos_stack(crowd(), self._spec())
        result = Corleone(config, gateway, seed=123).run(
            dataset.table_a, dataset.table_b, dataset.seed_labels)
        return persistence.result_report(result)

    @pytest.mark.parametrize("kill_after", [10, 120])
    def test_kill_is_typed_and_resume_is_bit_identical(
            self, scenario, faulty_golden_report, tmp_path, kill_after):
        _, dataset, config, crowd, _ = scenario
        run_dir = tmp_path / "run"

        gateway, _ = chaos_stack(crowd(), self._spec(kill_after))
        with pytest.raises(CrowdUnavailableError) as excinfo:
            Corleone(config, gateway, seed=123, run_dir=run_dir).run(
                dataset.table_a, dataset.table_b, dataset.seed_labels)

        # The failure is typed, carries a partial result, and the trace
        # shows the circuit opening after the injected fault storm.
        error = excinfo.value
        assert error.failures >= 1
        assert error.partial is not None
        assert error.partial.stop_reason == "crowd_unavailable"
        trace_names = {event.name
                       for event in read_trace(run_dir / TRACE_FILE)}
        assert EVENT_CIRCUIT_OPENED in trace_names
        assert EVENT_FAULT_INJECTED in trace_names

        # Resume with a recovered platform (same faults, no kill switch):
        # the gateway state saved in the checkpoint fast-forwards it to
        # the exact point of failure.
        recovered, faulty = chaos_stack(crowd(), self._spec())
        resumed = Corleone.resume(run_dir, recovered)
        assert persistence.result_report(resumed) == faulty_golden_report
        assert resumed.cost.answers == faulty.answers_delivered

    def test_faulty_run_trace_records_recovery_events(
            self, scenario, tmp_path):
        """A surviving faulty run logs injections, retries and reposts."""
        _, dataset, config, crowd, _ = scenario
        run_dir = tmp_path / "run"
        gateway, _ = chaos_stack(crowd(), self._spec())

        Corleone(config, gateway, seed=123, run_dir=run_dir).run(
            dataset.table_a, dataset.table_b, dataset.seed_labels)

        trace_names = {event.name
                       for event in read_trace(run_dir / TRACE_FILE)}
        assert EVENT_FAULT_INJECTED in trace_names
        assert EVENT_RETRY_SCHEDULED in trace_names
        assert EVENT_HIT_REPOSTED in trace_names
        assert EVENT_CIRCUIT_OPENED not in trace_names
