"""The sharded multi-core A x B executor (repro.exec).

Covers the determinism contract from every angle: a parity sweep
asserting that streaming, legacy-parallel, sharded in-process and
sharded multi-worker execution return *identical* candidate lists (same
pairs, same order) on all three synthetic datasets; shard planning
invariants; kill/resume mid-shard at the executor level and mid-block
at the engine level; the NaN-never-blocks missing-value guard; and the
fallback events that replace the old silent degradations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import BlockerConfig, CorleoneConfig, ForestConfig, \
    MatcherConfig
from repro.core.blocker import (
    ChunkEvaluator,
    apply_rules_parallel,
    apply_rules_streaming,
)
from repro.data.table import AttrType, Record, Schema, Table
from repro.engine.events import (
    EVENT_BLOCKER_FALLBACK,
    EVENT_SHARD_COMPLETED,
    EVENT_SHARD_STARTED,
    EventBus,
)
from repro.exec import apply_rules_sharded, auto_shard_size, plan_shards
from repro.exec.sharding import ShardStore
from repro.features.library import build_feature_library
from repro.rules.predicates import Predicate
from repro.rules.rule import Rule
from repro.synth.citations import generate_citations
from repro.synth.products import generate_products
from repro.synth.restaurants import generate_restaurants

_DATASETS = {
    "restaurants": lambda: generate_restaurants(
        n_a=60, n_b=45, n_matches=15, seed=11),
    "products": lambda: generate_products(
        n_a=40, n_b=60, n_matches=15, seed=17),
    "citations": lambda: generate_citations(
        n_a=30, n_b=60, n_matches=10, seed=5),
}


def _blocking_rules(library) -> list[Rule]:
    """Two single-predicate rules over string-similarity features.

    Thresholds are mid-range so each dataset blocks some pairs and
    keeps others — a parity assertion over an empty or full survivor
    list would prove nothing.
    """
    rules = []
    for feature in library.features:
        if feature.measure in ("jaro_winkler", "levenshtein"):
            index = library.names.index(feature.name)
            rules.append(Rule(
                [Predicate(index, feature.name, True, 0.45)],
                predicts_match=False,
            ))
        if len(rules) == 2:
            break
    assert rules, "no string-similarity feature in the library"
    return rules


@pytest.fixture(scope="module", params=sorted(_DATASETS))
def parity_setup(request):
    dataset = _DATASETS[request.param]()
    library = build_feature_library(dataset.table_a, dataset.table_b)
    rules = _blocking_rules(library)
    golden = apply_rules_streaming(dataset.table_a, dataset.table_b,
                                   rules, library)
    assert 0 < len(golden) < len(dataset.table_a) * len(dataset.table_b)
    return dataset, library, rules, golden


class TestParitySweep:
    """All executors must return the identical candidate list."""

    def test_parallel_matches_streaming(self, parity_setup):
        dataset, library, rules, golden = parity_setup
        survivors = apply_rules_parallel(
            dataset.table_a, dataset.table_b, rules, library, n_workers=3)
        assert survivors == golden

    def test_sharded_in_process_matches_streaming(self, parity_setup):
        dataset, library, rules, golden = parity_setup
        survivors = apply_rules_sharded(
            dataset.table_a, dataset.table_b, rules, library, n_workers=1)
        assert survivors == golden

    def test_sharded_pool_matches_streaming(self, parity_setup):
        dataset, library, rules, golden = parity_setup
        survivors = apply_rules_sharded(
            dataset.table_a, dataset.table_b, rules, library, n_workers=3)
        assert survivors == golden

    def test_sharded_is_shard_size_invariant(self, parity_setup):
        dataset, library, rules, golden = parity_setup
        for shard_size in (1, 7, len(dataset.table_a) + 5):
            survivors = apply_rules_sharded(
                dataset.table_a, dataset.table_b, rules, library,
                n_workers=2, shard_size=shard_size)
            assert survivors == golden, f"shard_size={shard_size} diverged"

    def test_sharded_handles_corpus_dependent_features(self):
        """TF/IDF rules shard safely (the legacy pool could not)."""
        schema = Schema.from_pairs([("desc", AttrType.TEXT)])
        table_a = Table("a", schema, [
            Record(f"a{i}", {"desc": f"alpha beta gamma {i}"})
            for i in range(12)
        ])
        table_b = Table("b", schema, [
            Record(f"b{i}", {"desc": f"alpha beta delta {i}"})
            for i in range(12)
        ])
        library = build_feature_library(table_a, table_b)
        index = library.names.index("desc_cosine_tfidf")
        rule = Rule([Predicate(index, "desc_cosine_tfidf", True, 0.2)],
                    predicts_match=False)
        golden = apply_rules_streaming(table_a, table_b, [rule], library)
        survivors = apply_rules_sharded(table_a, table_b, [rule], library,
                                        n_workers=4)
        assert survivors == golden


class TestShardPlanning:
    def test_partition_is_exact_and_never_empty(self):
        for n_rows in range(1, 50):
            for shard_size in range(1, 12):
                shards = plan_shards(n_rows, shard_size)
                covered = [
                    row for shard in shards
                    for row in range(shard.start, shard.stop)
                ]
                assert covered == list(range(n_rows))
                assert all(shard.rows > 0 for shard in shards)
                assert [s.index for s in shards] == list(range(len(shards)))

    def test_zero_rows_plans_nothing(self):
        assert plan_shards(0, 4) == []

    def test_invalid_shard_size_raises(self):
        with pytest.raises(ValueError):
            plan_shards(10, 0)

    def test_auto_shard_size_targets_four_per_worker(self):
        assert auto_shard_size(1600, 4) == 100
        assert auto_shard_size(3, 8) == 1
        assert auto_shard_size(0, 1) == 1


class TestKillResume:
    def _setup(self):
        dataset = _DATASETS["restaurants"]()
        library = build_feature_library(dataset.table_a, dataset.table_b)
        rules = _blocking_rules(library)
        golden = apply_rules_streaming(dataset.table_a, dataset.table_b,
                                       rules, library)
        return dataset, library, rules, golden

    def test_resume_after_kill_mid_shard_is_bit_identical(
            self, tmp_path, monkeypatch):
        """Kill after k completed shards, for every k; resume to golden."""
        dataset, library, rules, golden = self._setup()
        shard_size = 9
        n_shards = len(plan_shards(len(dataset.table_a), shard_size))
        assert n_shards >= 5
        original_write = ShardStore.write

        for kill_at in range(1, n_shards):
            shard_dir = tmp_path / f"kill{kill_at}"
            written = [0]

            def killing_write(self, index, survivors, pairs_scanned,
                              *args, _kill_at=kill_at, _written=written,
                              **kwargs):
                original_write(self, index, survivors, pairs_scanned,
                               *args, **kwargs)
                _written[0] += 1
                if _written[0] >= _kill_at:
                    raise KeyboardInterrupt("simulated kill")

            monkeypatch.setattr(ShardStore, "write", killing_write)
            with pytest.raises(KeyboardInterrupt):
                apply_rules_sharded(
                    dataset.table_a, dataset.table_b, rules, library,
                    n_workers=1, shard_size=shard_size,
                    shard_dir=shard_dir)
            monkeypatch.setattr(ShardStore, "write", original_write)

            bus = EventBus()
            cached = []
            bus.subscribe(lambda e, _c=cached: _c.append(e)
                          if e.payload.get("cached") else None)
            resumed = apply_rules_sharded(
                dataset.table_a, dataset.table_b, rules, library,
                n_workers=1, shard_size=shard_size, shard_dir=shard_dir,
                bus=bus)
            assert resumed == golden, f"kill after {kill_at} diverged"
            # The killed run persisted exactly kill_at shards; all of
            # them must be loaded (not recomputed) on resume.
            assert len(cached) == 2 * kill_at  # started + completed each

    def test_stale_directory_from_other_config_is_recomputed(
            self, tmp_path):
        """A shard directory left by different rules must not be loaded."""
        dataset, library, rules, golden = self._setup()
        shard_dir = tmp_path / "shards"
        apply_rules_sharded(dataset.table_a, dataset.table_b, rules,
                            library, shard_size=9, shard_dir=shard_dir)
        # Same geometry, different rule set -> different fingerprint.
        survivors = apply_rules_sharded(
            dataset.table_a, dataset.table_b, rules[:1], library,
            shard_size=9, shard_dir=shard_dir)
        assert survivors == apply_rules_streaming(
            dataset.table_a, dataset.table_b, rules[:1], library)

    def test_resume_reemits_shard_events_for_loaded_shards(self, tmp_path):
        """Loaded shards re-emit events so resumed metrics converge."""
        dataset, library, rules, _ = self._setup()
        shard_dir = tmp_path / "shards"
        n_shards = len(plan_shards(len(dataset.table_a), 9))
        apply_rules_sharded(dataset.table_a, dataset.table_b, rules,
                            library, shard_size=9, shard_dir=shard_dir)
        bus = EventBus()
        names = []
        bus.subscribe(lambda e: names.append(e.name))
        apply_rules_sharded(dataset.table_a, dataset.table_b, rules,
                            library, shard_size=9, shard_dir=shard_dir,
                            bus=bus)
        assert names.count(EVENT_SHARD_STARTED) == n_shards
        assert names.count(EVENT_SHARD_COMPLETED) == n_shards


class TestMissingValueSemantics:
    """Blocking's NaN contract: a pair with missing evidence survives."""

    def _tables(self):
        schema = Schema.from_pairs([("name", AttrType.STRING)])
        table_a = Table("a", schema, [
            Record("a0", {"name": "alpha corp"}),
            Record("a1", {"name": None}),
        ])
        table_b = Table("b", schema, [
            Record("b0", {"name": "zzz unrelated"}),
            Record("b1", {"name": None}),
        ])
        return table_a, table_b

    def test_nan_never_blocks(self):
        table_a, table_b = self._tables()
        library = build_feature_library(table_a, table_b)
        index = library.names.index("name_jaro_winkler")
        # le=True with a high threshold blocks everything comparable.
        rule = Rule([Predicate(index, "name_jaro_winkler", True, 0.99)],
                    predicts_match=False)
        survivors = apply_rules_streaming(table_a, table_b, [rule],
                                          library)
        survivor_ids = {(p.a_id, p.b_id) for p in survivors}
        # Every pair touching a missing name carries no evidence and
        # must survive; the fully-present dissimilar pair is blocked.
        assert ("a0", "b0") not in survivor_ids
        assert {("a0", "b1"), ("a1", "b0"), ("a1", "b1")} <= survivor_ids

    def test_nan_satisfies_predicates_may_block(self):
        table_a, table_b = self._tables()
        library = build_feature_library(table_a, table_b)
        index = library.names.index("name_jaro_winkler")
        rule = Rule([Predicate(index, "name_jaro_winkler", True, 0.99,
                               nan_satisfies=True)],
                    predicts_match=False)
        evaluator = ChunkEvaluator(table_a, table_b, [rule], library)
        assert evaluator.nan_can_block
        survivors = apply_rules_streaming(table_a, table_b, [rule],
                                          library)
        assert survivors == []  # everything blocked, missing included

    def test_guard_preserves_executor_parity(self):
        table_a, table_b = self._tables()
        library = build_feature_library(table_a, table_b)
        index = library.names.index("name_jaro_winkler")
        rule = Rule([Predicate(index, "name_jaro_winkler", True, 0.99)],
                    predicts_match=False)
        golden = apply_rules_streaming(table_a, table_b, [rule], library)
        sharded = apply_rules_sharded(table_a, table_b, [rule], library,
                                      n_workers=2, shard_size=1)
        assert sharded == golden


class TestFallbackSurfacing:
    def test_fork_unavailable_emits_fallback_event(self, monkeypatch):
        from repro.exec import executor as executor_module
        dataset = _DATASETS["restaurants"]()
        library = build_feature_library(dataset.table_a, dataset.table_b)
        rules = _blocking_rules(library)
        golden = apply_rules_streaming(dataset.table_a, dataset.table_b,
                                       rules, library)
        monkeypatch.setattr(executor_module, "_fork_available",
                            lambda: False)
        bus = EventBus()
        events = []
        bus.subscribe(lambda e: events.append(e))
        survivors = apply_rules_sharded(
            dataset.table_a, dataset.table_b, rules, library,
            n_workers=4, bus=bus)
        assert survivors == golden
        fallbacks = [e for e in events
                     if e.name == EVENT_BLOCKER_FALLBACK]
        assert len(fallbacks) == 1
        assert fallbacks[0].payload["reason"] == "fork_unavailable"


class TestWorkerTelemetry:
    """Worker slots and captured sections (repro.obs.workers)."""

    def _setup(self):
        dataset = _DATASETS["restaurants"]()
        library = build_feature_library(dataset.table_a, dataset.table_b)
        rules = _blocking_rules(library)
        return dataset, library, rules

    def _shard_payloads(self, **kwargs):
        dataset, library, rules = self._setup()
        bus = EventBus()
        payloads = []
        bus.subscribe(lambda e: payloads.append((e.name, dict(e.payload))))
        apply_rules_sharded(dataset.table_a, dataset.table_b, rules,
                            library, bus=bus, **kwargs)
        return [p for name, p in payloads
                if name in (EVENT_SHARD_STARTED, EVENT_SHARD_COMPLETED)]

    def test_worker_slot_is_shard_index_mod_n_workers(self):
        for payload in self._shard_payloads(n_workers=3, shard_size=9):
            assert payload["worker"] == payload["shard"] % 3

    def test_worker_slot_identical_across_pool_and_fallback(
            self, monkeypatch):
        from repro.exec import executor as executor_module

        def by_shard(payloads):
            return sorted(payloads, key=lambda p: (p["shard"], len(p)))

        pooled = self._shard_payloads(n_workers=3, shard_size=9)
        monkeypatch.setattr(executor_module, "_fork_available",
                            lambda: False)
        fallback = self._shard_payloads(n_workers=3, shard_size=9)
        # The pool announces every shard_started upfront while the
        # fallback interleaves, so compare per-shard payloads, not
        # global order: the worker attribution must be identical.
        assert by_shard(pooled) == by_shard(fallback)

    def test_cached_shards_replay_worker_slot_and_sections(self, tmp_path):
        dataset, library, rules = self._setup()
        shard_dir = tmp_path / "shards"
        apply_rules_sharded(dataset.table_a, dataset.table_b, rules,
                            library, n_workers=2, shard_size=9,
                            shard_dir=shard_dir)
        # The persisted shard carries the worker's wall-clock sections.
        from repro.core.blocker import _STREAM_CHUNK
        from repro.exec.sharding import shard_fingerprint
        fingerprint = shard_fingerprint(dataset.table_a, dataset.table_b,
                                        rules, library, 9, _STREAM_CHUNK)
        store = ShardStore(shard_dir, fingerprint)
        _, _, _, sections = store.load(0)
        assert "blocker.shard_flush" in sections
        assert sections["blocker.shard_flush"]["calls"] >= 1
        # A resume loads every shard; the replayed events carry the
        # same deterministic worker slot as the fresh run.
        bus = EventBus()
        payloads = []
        bus.subscribe(lambda e: payloads.append(dict(e.payload))
                      if e.name == EVENT_SHARD_COMPLETED else None)
        apply_rules_sharded(dataset.table_a, dataset.table_b, rules,
                            library, n_workers=2, shard_size=9,
                            shard_dir=shard_dir, bus=bus)
        assert payloads and all(p["cached"] for p in payloads)
        for payload in payloads:
            assert payload["worker"] == payload["shard"] % 2

    def test_worker_sections_merge_into_active_profiler(self):
        from repro.obs.profiling import Profiler, activate, deactivate
        dataset, library, rules = self._setup()
        profiler = Profiler()
        activate(profiler)
        try:
            apply_rules_sharded(dataset.table_a, dataset.table_b, rules,
                                library, n_workers=2, shard_size=9)
        finally:
            deactivate(profiler)
        worker_keys = [name for name in profiler.sections
                       if name.startswith("worker")]
        assert any(name == "worker0.blocker.shard_flush"
                   for name in worker_keys)
        assert any(name == "worker1.blocker.shard_flush"
                   for name in worker_keys)
        # The parent-side prewarm stays unprefixed.
        assert "blocker.shard_prewarm" in profiler.sections


class TestEngineIntegration:
    def _config(self, executor: str) -> CorleoneConfig:
        return CorleoneConfig(
            forest=ForestConfig(n_trees=5),
            blocker=BlockerConfig(t_b=1500, top_k_rules=10,
                                  max_labels_per_rule=60,
                                  executor=executor, n_workers=2),
            matcher=MatcherConfig(batch_size=10, pool_size=40,
                                  n_converged=8, n_degrade=6,
                                  max_iterations=12),
            max_pipeline_iterations=1,
            seed=0,
        )

    def _run(self, config, dataset, crowd, **kwargs):
        from repro.core.pipeline import Corleone
        return Corleone(config, crowd(), seed=123, **kwargs).run(
            dataset.table_a, dataset.table_b, dataset.seed_labels)

    @pytest.fixture(scope="class")
    def engine_setup(self):
        from repro import persistence
        from repro.crowd.simulated import PerfectCrowd
        dataset = generate_restaurants(n_a=60, n_b=40, n_matches=15,
                                       seed=7)

        def crowd():
            return PerfectCrowd(dataset.matches,
                                rng=np.random.default_rng(11))

        golden = self._run(self._config("streaming"), dataset, crowd)
        return dataset, crowd, persistence.result_report(golden)

    def test_sharded_executor_reaches_streaming_golden(self, engine_setup):
        """Executor choice must not change the pipeline result at all."""
        from repro import persistence
        dataset, crowd, golden_report = engine_setup
        result = self._run(self._config("sharded"), dataset, crowd)
        assert persistence.result_report(result) == golden_report

    def test_kill_mid_blocking_resumes_bit_identically(
            self, engine_setup, tmp_path):
        """Kill the engine run mid-shard; resume reuses shard files."""
        import json

        from repro import persistence
        from repro.core.pipeline import Corleone
        dataset, crowd, golden_report = engine_setup
        config = self._config("sharded")
        run_dir = tmp_path / "run"

        class _Killed(Exception):
            pass

        seen = [0]

        def killer(event):
            if event.name == EVENT_SHARD_COMPLETED:
                seen[0] += 1
                if seen[0] >= 2:
                    raise _Killed()

        pipeline = Corleone(config, crowd(), seed=123, run_dir=run_dir)
        pipeline.bus.subscribe(killer)
        with pytest.raises(_Killed):
            pipeline.run(dataset.table_a, dataset.table_b,
                         dataset.seed_labels)
        shard_files = list((run_dir / "shards").glob("shard-*.npz"))
        assert len(shard_files) >= 2  # progress survived the kill

        resumed = Corleone.resume(run_dir, crowd())
        assert persistence.result_report(resumed) == golden_report

        # The resumed run's shard metrics converge to the full count:
        # loaded shards re-emitted their events.
        metrics = json.loads((run_dir / "metrics.json").read_text())
        families = metrics["metrics"]
        started = families["corleone_shards_started_total"]["series"]
        completed = families["corleone_shards_completed_total"]["series"]
        assert started and completed
        assert started[0]["value"] == completed[0]["value"] > 0
