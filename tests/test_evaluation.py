"""The experiment harness and report formatting."""

from __future__ import annotations

import pytest

from repro.evaluation.reporting import format_table, pct
from repro.metrics import Confusion


class TestPct:
    def test_basic(self):
        assert pct(0.965) == "96.5"
        assert pct(1.0) == "100.0"
        assert pct(0.12345, digits=2) == "12.35"


class TestFormatTable:
    def test_alignment_and_separator(self):
        out = format_table(["name", "value"],
                           [["restaurants", 96.5], ["x", 1]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert lines[2].startswith("restaurants")

    def test_column_width_fits_longest(self):
        out = format_table(["h"], [["a-very-long-cell"]])
        header, sep, row = out.splitlines()
        assert len(sep) == len("a-very-long-cell")

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert len(out.splitlines()) == 2


class TestHarness:
    def test_run_and_score(self, tiny_dataset, fast_config):
        from repro.evaluation.experiment import run_corleone
        summary = run_corleone(tiny_dataset, fast_config, error_rate=0.0,
                               seed=2, mode="one_iteration")
        assert isinstance(summary.confusion, Confusion)
        assert 0.0 <= summary.f1 <= 1.0
        assert summary.pairs_labeled > 0
        assert 0.0 <= summary.blocking_recall <= 1.0
        # The run used the dataset's gold matches through the crowd only.
        assert summary.dataset is tiny_dataset
