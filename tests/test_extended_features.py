"""Extended similarity measures and the opt-in library mode."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.features.extended import (
    containment,
    longest_common_substring_ratio,
    prefix_similarity,
    smith_waterman,
    soundex,
    soundex_similarity,
)
from repro.features.library import build_feature_library

words = st.text(alphabet="abcdef ", min_size=0, max_size=16)


class TestContainment:
    def test_subset_is_one(self):
        assert containment(["a", "b"], ["a", "b", "c", "d"]) == 1.0

    def test_symmetric_max(self):
        assert containment(["a", "b", "c", "d"], ["a", "b"]) == 1.0

    def test_disjoint(self):
        assert containment(["a"], ["b"]) == 0.0

    def test_empties(self):
        assert containment([], []) == 1.0
        assert containment(["a"], []) == 0.0

    token_lists = st.lists(st.sampled_from("abcde"), max_size=6)

    @given(token_lists, token_lists)
    def test_at_least_jaccard(self, ta, tb):
        from repro.features.similarity import jaccard
        assert containment(ta, tb) >= jaccard(ta, tb) - 1e-12


class TestPrefixSimilarity:
    def test_identical_prefix(self):
        assert prefix_similarity("KHX1800C9", "KHX1800XX") == 1.0

    def test_no_agreement(self):
        assert prefix_similarity("abcd", "wxyz") == 0.0

    def test_partial(self):
        assert prefix_similarity("abcd", "abxy") == 0.5

    def test_empty(self):
        assert prefix_similarity("", "") == 1.0

    @given(words, words)
    def test_unit_interval(self, s, t):
        assert 0.0 <= prefix_similarity(s, t) <= 1.0


class TestLcsRatio:
    def test_known(self):
        # 'bcd' is the longest common substring.
        assert longest_common_substring_ratio("abcd", "xbcdy") == \
            pytest.approx(3 / 5)

    def test_identical(self):
        assert longest_common_substring_ratio("same", "same") == 1.0

    def test_disjoint(self):
        assert longest_common_substring_ratio("aaa", "bbb") == 0.0

    @given(words, words)
    def test_symmetry_and_range(self, s, t):
        value = longest_common_substring_ratio(s, t)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(
            longest_common_substring_ratio(t, s)
        )


class TestSmithWaterman:
    def test_substring_alignment_perfect(self):
        assert smith_waterman("hyperx", "kingston hyperx kit") == 1.0

    def test_disjoint(self):
        assert smith_waterman("aaa", "bbb") == 0.0

    def test_typo_tolerant(self):
        clean = smith_waterman("corleone", "corleone")
        typo = smith_waterman("corleone", "corleome")
        assert clean == 1.0
        assert 0.5 < typo < 1.0

    @given(words, words)
    def test_unit_interval(self, s, t):
        assert 0.0 <= smith_waterman(s, t) <= 1.0 + 1e-12


class TestSoundex:
    @pytest.mark.parametrize("word, code", [
        ("robert", "R163"),
        ("rupert", "R163"),
        ("ashcraft", "A261"),
        ("ashcroft", "A261"),
        ("tymczak", "T522"),
        ("pfister", "P236"),
        ("honeyman", "H555"),
    ])
    def test_classic_vectors(self, word, code):
        assert soundex(word) == code

    def test_empty(self):
        assert soundex("") == ""
        assert soundex("123") == ""

    def test_padding(self):
        assert soundex("lee") == "L000"

    def test_similarity_phonetic_match(self):
        assert soundex_similarity("robert smith", "rupert smyth") == 1.0

    def test_similarity_disjoint(self):
        assert soundex_similarity("robert", "claire") == 0.0

    def test_similarity_empty(self):
        assert soundex_similarity("", "") == 1.0
        assert soundex_similarity("word", "") == 0.0


class TestExtendedLibrary:
    def test_extended_adds_measures(self, book_tables):
        table_a, table_b = book_tables
        plain = build_feature_library(table_a, table_b)
        extended = build_feature_library(table_a, table_b, extended=True)
        assert len(extended) > len(plain)
        plain_measures = {f.measure for f in plain}
        extended_measures = {f.measure for f in extended}
        assert "smith_waterman" in extended_measures - plain_measures
        assert "prefix" in extended_measures - plain_measures

    def test_extended_features_computable(self, book_tables):
        table_a, table_b = book_tables
        library = build_feature_library(table_a, table_b, extended=True)
        for feature in library:
            value = feature.value(table_a["a0"], table_b["b0"])
            assert value == value  # not NaN (no missing values in a0/b0)
