"""Crowd-free re-application of trained artifacts (Example 3.1's path)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    BlockerConfig,
    CorleoneConfig,
    EstimatorConfig,
    ForestConfig,
    LocatorConfig,
    MatcherConfig,
)
from repro.core.reapply import ReapplyResult, drift_report, reapply_matcher
from repro.data.table import AttrType, Record, Schema, Table
from repro.evaluation.experiment import run_corleone
from repro.exceptions import DataError
from repro.features.library import build_feature_library
from repro.persistence import (
    forest_from_dict,
    forest_to_dict,
    load_rules,
    save_rules,
)
from repro.synth.restaurants import generate_restaurants


@pytest.fixture(scope="module")
def trained():
    """A trained run on one restaurants batch plus a fresh second batch."""
    config = CorleoneConfig(
        forest=ForestConfig(n_trees=5),
        blocker=BlockerConfig(t_b=2500, top_k_rules=10,
                              max_labels_per_rule=60),
        matcher=MatcherConfig(batch_size=10, pool_size=40,
                              n_converged=8, n_degrade=6,
                              max_iterations=25),
        estimator=EstimatorConfig(probe_size=25, max_probes=30),
        locator=LocatorConfig(min_difficult_pairs=30),
        max_pipeline_iterations=1,
    )
    train_data = generate_restaurants(n_a=80, n_b=60, n_matches=20,
                                      seed=31)
    summary = run_corleone(train_data, config, seed=5,
                           mode="one_iteration")
    fresh_data = generate_restaurants(n_a=80, n_b=60, n_matches=20,
                                      seed=32)
    return train_data, summary, fresh_data


class TestReapply:
    def test_matches_fresh_batch_without_crowd(self, trained):
        train_data, summary, fresh_data = trained
        library = build_feature_library(fresh_data.table_a,
                                        fresh_data.table_b)
        forest = summary.result.iterations[0].matcher.forest
        result = reapply_matcher(
            fresh_data.table_a, fresh_data.table_b, library,
            summary.result.blocker.applied_rules, forest,
        )
        found = result.predicted_matches & fresh_data.matches
        assert len(found) >= 0.7 * len(fresh_data.matches)
        if result.predicted_matches:
            precision = len(found) / len(result.predicted_matches)
            assert precision >= 0.7

    def test_round_trips_through_persistence(self, trained, tmp_path):
        """The artifacts survive save/load and give identical output."""
        train_data, summary, fresh_data = trained
        library = build_feature_library(fresh_data.table_a,
                                        fresh_data.table_b)
        forest = summary.result.iterations[0].matcher.forest
        rules = summary.result.blocker.applied_rules

        save_rules(rules, tmp_path / "rules.json")
        loaded_rules = load_rules(tmp_path / "rules.json")
        loaded_forest = forest_from_dict(forest_to_dict(forest))

        direct = reapply_matcher(fresh_data.table_a, fresh_data.table_b,
                                 library, rules, forest)
        loaded = reapply_matcher(fresh_data.table_a, fresh_data.table_b,
                                 library, loaded_rules, loaded_forest)
        assert direct.predicted_matches == loaded.predicted_matches

    def test_feature_count_mismatch_rejected(self, trained):
        _, summary, fresh_data = trained
        wrong_schema = Schema.from_pairs([("name", AttrType.STRING)])
        table_a = Table("a", wrong_schema, [Record("a0", {"name": "x"})])
        table_b = Table("b", wrong_schema, [Record("b0", {"name": "x"})])
        small_library = build_feature_library(table_a, table_b)
        forest = summary.result.iterations[0].matcher.forest
        with pytest.raises(DataError):
            reapply_matcher(table_a, table_b, small_library, [], forest)


class TestDriftReport:
    def test_stable_data_no_refresh(self, trained):
        train_data, summary, fresh_data = trained
        library = build_feature_library(fresh_data.table_a,
                                        fresh_data.table_b)
        forest = summary.result.iterations[0].matcher.forest
        result = reapply_matcher(
            fresh_data.table_a, fresh_data.table_b, library,
            summary.result.blocker.applied_rules, forest,
        )
        # The thresholds are knobs: calibrate the low-confidence trigger
        # to the matcher's own training-time profile.
        training_low = float(
            (result.confidence < 0.7).mean()
        )
        report = drift_report(
            result,
            training_mean_confidence=result.mean_confidence,
            max_low_fraction=training_low + 0.05,
        )
        assert not report.refresh_recommended
        assert report.confidence_drop == pytest.approx(0.0)

    def test_big_drop_triggers_refresh(self, trained):
        _, summary, fresh_data = trained
        library = build_feature_library(fresh_data.table_a,
                                        fresh_data.table_b)
        forest = summary.result.iterations[0].matcher.forest
        result = reapply_matcher(
            fresh_data.table_a, fresh_data.table_b, library,
            summary.result.blocker.applied_rules, forest,
        )
        # Degrade the confidence profile explicitly: the trigger under
        # test is the report's drop logic, not this forest's profile.
        degraded = ReapplyResult(
            predicted_matches=result.predicted_matches,
            candidates=result.candidates,
            cartesian=result.cartesian,
            confidence=result.confidence * 0.5,
        )
        report = drift_report(degraded, training_mean_confidence=1.0,
                              max_drop=0.25)
        assert report.refresh_recommended

    def test_bad_training_confidence(self, trained):
        _, summary, fresh_data = trained
        library = build_feature_library(fresh_data.table_a,
                                        fresh_data.table_b)
        forest = summary.result.iterations[0].matcher.forest
        result = reapply_matcher(
            fresh_data.table_a, fresh_data.table_b, library, [], forest,
        )
        with pytest.raises(DataError):
            drift_report(result, training_mean_confidence=2.0)
