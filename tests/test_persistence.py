"""JSON persistence of rules, forests and run reports."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.config import ForestConfig
from repro.exceptions import DataError
from repro.forest.forest import train_forest
from repro.persistence import (
    forest_from_dict,
    forest_to_dict,
    load_forest,
    load_report,
    load_rules,
    result_report,
    rule_from_dict,
    rule_to_dict,
    save_forest,
    save_report,
    save_rules,
)
from repro.rules.predicates import Predicate
from repro.rules.rule import Rule


@pytest.fixture
def sample_rule() -> Rule:
    return Rule(
        [
            Predicate(0, "title_sim", True, 0.42, nan_satisfies=True),
            Predicate(3, "price_diff", False, 10.0),
        ],
        predicts_match=False,
        cost=7.5,
        source="tree3",
    )


@pytest.fixture
def sample_forest(rng):
    x = rng.random((200, 4))
    y = (x[:, 0] + x[:, 1]) > 1.0
    x[::13, 2] = np.nan
    return train_forest(x, y, ForestConfig(n_trees=4), rng), x


class TestRuleRoundTrip:
    def test_round_trip_identity(self, sample_rule):
        clone = rule_from_dict(rule_to_dict(sample_rule))
        assert clone == sample_rule
        assert clone.cost == sample_rule.cost
        assert clone.source == sample_rule.source
        assert clone.predicates[0].nan_satisfies is True

    def test_round_trip_behaviour(self, sample_rule, rng):
        matrix = rng.random((100, 5))
        matrix[::7, 0] = np.nan
        clone = rule_from_dict(rule_to_dict(sample_rule))
        np.testing.assert_array_equal(
            sample_rule.applies(matrix), clone.applies(matrix)
        )

    def test_file_round_trip(self, sample_rule, tmp_path):
        path = tmp_path / "rules.json"
        save_rules([sample_rule], path)
        loaded = load_rules(path)
        assert loaded == [sample_rule]

    def test_malformed_rule_rejected(self):
        with pytest.raises(DataError):
            rule_from_dict({"predicates": [{"bogus": 1}]})

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(DataError):
            load_rules(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("{not json")
        with pytest.raises(DataError):
            load_rules(path)


class TestForestRoundTrip:
    def test_predictions_identical(self, sample_forest, tmp_path):
        forest, x = sample_forest
        path = tmp_path / "forest.json"
        save_forest(forest, path, feature_names=list("abcd"))
        clone = load_forest(path)
        np.testing.assert_array_equal(
            forest.predict(x), clone.predict(x)
        )
        np.testing.assert_allclose(
            forest.vote_fractions(x), clone.vote_fractions(x)
        )

    def test_paths_preserved(self, sample_forest):
        forest, _ = sample_forest
        clone = forest_from_dict(forest_to_dict(forest))
        original = {
            (p.conditions, p.label) for p in forest.paths()
        }
        restored = {
            (p.conditions, p.label) for p in clone.paths()
        }
        assert original == restored

    def test_feature_names_stored(self, sample_forest):
        forest, _ = sample_forest
        document = forest_to_dict(forest, feature_names=list("abcd"))
        assert document["feature_names"] == list("abcd")

    def test_empty_forest_rejected(self):
        with pytest.raises(DataError):
            forest_from_dict({"format": "corleone-forest", "trees": []})

    def test_wrong_format_rejected(self):
        with pytest.raises(DataError):
            forest_from_dict({"format": "nope", "trees": []})


class TestRunReport:
    @pytest.fixture(scope="class")
    def run_result(self):
        from repro.evaluation.experiment import run_corleone
        from repro.synth.restaurants import generate_restaurants
        from repro.config import (
            BlockerConfig, CorleoneConfig, EstimatorConfig, ForestConfig,
            LocatorConfig, MatcherConfig,
        )
        dataset = generate_restaurants(n_a=40, n_b=30, n_matches=10,
                                       seed=9)
        config = CorleoneConfig(
            forest=ForestConfig(n_trees=5),
            blocker=BlockerConfig(t_b=2000, top_k_rules=8,
                                  max_labels_per_rule=40),
            matcher=MatcherConfig(batch_size=10, pool_size=40,
                                  n_converged=6, n_degrade=6,
                                  max_iterations=15),
            estimator=EstimatorConfig(probe_size=20, max_probes=20),
            locator=LocatorConfig(min_difficult_pairs=20),
            max_pipeline_iterations=1,
        )
        return run_corleone(dataset, config, seed=2,
                            mode="one_iteration").result

    def test_report_structure(self, run_result):
        report = result_report(run_result)
        assert report["format"] == "corleone-report"
        assert report["cost"]["pairs_labeled"] > 0
        assert len(report["predicted_matches"]) == len(
            run_result.predicted_matches
        )
        assert report["iterations"][0]["matcher_al_iterations"] > 0

    def test_report_is_json_serializable(self, run_result):
        json.dumps(result_report(run_result))

    def test_file_round_trip(self, run_result, tmp_path):
        path = tmp_path / "report.json"
        save_report(run_result, path)
        loaded = load_report(path)
        assert loaded["stop_reason"] == run_result.stop_reason


class TestCandidateRoundTrip:
    def test_round_trip(self, tmp_path, rng):
        import numpy as np
        from repro.data.pairs import CandidateSet, Pair
        from repro.persistence import load_candidates, save_candidates
        pairs = [Pair(f"a{i}", f"b{i}") for i in range(25)]
        matrix = rng.random((25, 4))
        matrix[::5, 2] = np.nan
        original = CandidateSet(pairs, matrix, ["w", "x", "y", "z"])
        path = tmp_path / "candidates.npz"
        save_candidates(original, path)
        loaded = load_candidates(path)
        assert loaded.pairs == original.pairs
        assert loaded.feature_names == original.feature_names
        np.testing.assert_array_equal(loaded.features, original.features)

    def test_missing_file(self, tmp_path):
        import pytest
        from repro.exceptions import DataError
        from repro.persistence import load_candidates
        with pytest.raises(DataError):
            load_candidates(tmp_path / "nope.npz")

    def test_malformed_file(self, tmp_path):
        import numpy as np
        import pytest
        from repro.exceptions import DataError
        from repro.persistence import load_candidates
        path = tmp_path / "bad.npz"
        np.savez(path, wrong_key=np.zeros(3))
        with pytest.raises(DataError):
            load_candidates(path)
