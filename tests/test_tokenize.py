"""Normalization, word tokens and q-grams."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.features.tokenize import normalize, qgrams, word_tokens


class TestNormalize:
    def test_lowercases_and_collapses(self):
        assert normalize("  Hello   WORLD ") == "hello world"

    def test_keeps_punctuation(self):
        assert normalize("KHX-1800/4G") == "khx-1800/4g"

    @given(st.text(max_size=40))
    def test_idempotent(self, text):
        assert normalize(normalize(text)) == normalize(text)


class TestWordTokens:
    def test_strips_punctuation(self):
        assert word_tokens("Hello, world!") == ["hello", "world"]

    def test_keeps_digits(self):
        assert word_tokens("4GB kit") == ["4gb", "kit"]

    def test_empty(self):
        assert word_tokens("") == []
        assert word_tokens("...") == []

    @given(st.text(max_size=40))
    def test_all_tokens_alphanumeric(self, text):
        for token in word_tokens(text):
            assert token.isalnum()
            assert token == token.lower()


class TestQgrams:
    def test_padding(self):
        assert qgrams("ab", q=2) == ["#a", "ab", "b#"]

    def test_q3_known(self):
        grams = qgrams("abc", q=3)
        assert grams == ["##a", "#ab", "abc", "bc#", "c##"]

    def test_empty_text(self):
        assert qgrams("", q=3) == []

    def test_q1_is_characters(self):
        assert qgrams("abc", q=1) == ["a", "b", "c"]

    def test_bad_q(self):
        with pytest.raises(ValueError):
            qgrams("abc", q=0)

    @given(st.text(alphabet="abc", min_size=1, max_size=20),
           st.integers(1, 5))
    def test_count_formula(self, text, q):
        # Padded length is len + 2(q-1); gram count is that minus q-1... i.e.
        # len(text) + q - 1 grams for normalized non-empty text.
        expected = len(normalize(text)) + q - 1
        assert len(qgrams(text, q)) == expected
