"""Confusion matrices, P/R/F1 and blocking recall."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.metrics import (
    Confusion,
    blocking_recall,
    confusion_from_labels,
    confusion_from_sets,
    density,
    prf1,
    summarize,
)


class TestConfusion:
    def test_basic_counts(self):
        c = Confusion(tp=3, fp=1, fn=2, tn=4)
        assert c.total == 10
        assert c.predicted_positives == 4
        assert c.actual_positives == 5
        assert c.precision == 0.75
        assert c.recall == 0.6
        assert c.accuracy == 0.7

    def test_f1_harmonic_mean(self):
        c = Confusion(tp=3, fp=1, fn=2)
        p, r = 0.75, 0.6
        assert c.f1 == pytest.approx(2 * p * r / (p + r))

    def test_degenerate_zero(self):
        c = Confusion()
        assert c.precision == 0.0
        assert c.recall == 0.0
        assert c.f1 == 0.0
        assert c.accuracy == 0.0

    def test_addition(self):
        total = Confusion(tp=1, fp=2, fn=3, tn=4) + Confusion(tp=5, fp=6,
                                                              fn=7, tn=8)
        assert total == Confusion(tp=6, fp=8, fn=10, tn=12)


class TestFromLabels:
    def test_counts_each_quadrant(self):
        predicted = [True, True, False, False]
        actual = [True, False, True, False]
        c = confusion_from_labels(predicted, actual)
        assert (c.tp, c.fp, c.fn, c.tn) == (1, 1, 1, 1)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            confusion_from_labels([True], [True, False])

    def test_accepts_generators(self):
        c = confusion_from_labels((b for b in [True]), iter([True]))
        assert c.tp == 1


class TestFromSets:
    def test_overlap(self):
        c = confusion_from_sets({1, 2, 3}, {2, 3, 4})
        assert (c.tp, c.fp, c.fn) == (2, 1, 1)

    def test_universe_gives_tn(self):
        c = confusion_from_sets({1}, {2}, universe_size=10)
        assert c.tn == 8

    def test_universe_too_small_raises(self):
        with pytest.raises(ValueError):
            confusion_from_sets({1, 2}, {3, 4}, universe_size=3)

    def test_prf1_wrapper(self):
        p, r, f1 = prf1({1, 2}, {2, 3})
        assert p == 0.5 and r == 0.5 and f1 == 0.5


class TestBlockingRecall:
    def test_full_retention(self):
        assert blocking_recall({1, 2, 3}, {1, 2}) == 1.0

    def test_partial(self):
        assert blocking_recall({1}, {1, 2}) == 0.5

    def test_empty_gold_is_perfect(self):
        assert blocking_recall(set(), set()) == 1.0


class TestDensityAndSummaries:
    def test_density(self):
        assert density(5, 100) == 0.05
        assert density(0, 0) == 0.0

    def test_summarize_percentages(self):
        out = summarize({"x": Confusion(tp=1, fp=0, fn=0)})
        assert out["x"]["precision"] == 100.0
        assert out["x"]["f1"] == 100.0


@given(tp=st.integers(0, 100), fp=st.integers(0, 100),
       fn=st.integers(0, 100), tn=st.integers(0, 100))
def test_metrics_always_in_unit_interval(tp, fp, fn, tn):
    c = Confusion(tp=tp, fp=fp, fn=fn, tn=tn)
    for value in (c.precision, c.recall, c.f1, c.accuracy if c.total else 0):
        assert 0.0 <= value <= 1.0


@given(st.sets(st.integers(0, 50)), st.sets(st.integers(0, 50)))
def test_set_confusion_partitions_union(predicted, actual):
    c = confusion_from_sets(predicted, actual)
    assert c.tp + c.fp == len(predicted)
    assert c.tp + c.fn == len(actual)


@given(st.lists(st.tuples(st.booleans(), st.booleans()), max_size=60))
def test_label_and_set_views_agree(pairs):
    predicted = [p for p, _ in pairs]
    actual = [a for _, a in pairs]
    by_labels = confusion_from_labels(predicted, actual)
    predicted_ids = {i for i, p in enumerate(predicted) if p}
    actual_ids = {i for i, a in enumerate(actual) if a}
    by_sets = confusion_from_sets(predicted_ids, actual_ids,
                                  universe_size=len(pairs))
    assert by_labels == by_sets
