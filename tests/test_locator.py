"""The difficult-pairs locator (Section 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    BlockerConfig,
    CorleoneConfig,
    ForestConfig,
    LocatorConfig,
)
from repro.core.locator import DifficultPairsLocator
from repro.crowd.service import LabelingService
from repro.crowd.simulated import PerfectCrowd
from repro.data.pairs import CandidateSet, Pair
from repro.forest.forest import train_forest


def overlap_candidates(n: int = 1500, seed: int = 0):
    """Mostly separable data plus a confusable band around f0 ~ 0.5."""
    rng = np.random.default_rng(seed)
    features = rng.random((n, 3))
    labels = features[:, 0] > 0.5
    # The band [0.45, 0.55] is noisy: labels flip with probability 0.4.
    band = (features[:, 0] > 0.45) & (features[:, 0] < 0.55)
    flips = band & (rng.random(n) < 0.4)
    labels = labels ^ flips
    pairs = [Pair(f"a{i}", f"b{i}") for i in range(n)]
    matches = {pairs[i] for i in np.flatnonzero(labels)}
    return CandidateSet(pairs, features, ["f0", "f1", "f2"]), matches, labels


def make_locator(matches, min_difficult=50, seed=1):
    config = CorleoneConfig(
        forest=ForestConfig(n_trees=5),
        blocker=BlockerConfig(max_labels_per_rule=60),
        locator=LocatorConfig(min_difficult_pairs=min_difficult),
    )
    crowd = PerfectCrowd(matches, rng=np.random.default_rng(seed))
    service = LabelingService(crowd, config.crowd)
    return (DifficultPairsLocator(config, service,
                                  np.random.default_rng(seed)), service)


@pytest.fixture
def fitted():
    candidates, matches, labels = overlap_candidates()
    rng = np.random.default_rng(2)
    rows = rng.choice(len(candidates), size=500, replace=False)
    forest = train_forest(candidates.features[rows], labels[rows],
                          ForestConfig(), rng)
    return candidates, matches, labels, forest


class TestLocate:
    def test_difficult_set_concentrates_on_band(self, fitted):
        candidates, matches, labels, forest = fitted
        locator, _ = make_locator(matches)
        result = locator.locate(candidates, forest)
        if not result.should_continue:
            pytest.skip(f"locator stopped: {result.stop_reason}")
        f0 = result.difficult.features[:, 0]
        # The noisy band should be over-represented among difficult pairs.
        band_fraction = np.mean((f0 > 0.4) & (f0 < 0.6))
        overall = np.mean(
            (candidates.features[:, 0] > 0.4)
            & (candidates.features[:, 0] < 0.6)
        )
        assert band_fraction > overall

    def test_rules_are_crowd_certified(self, fitted):
        candidates, matches, _, forest = fitted
        locator, _ = make_locator(matches)
        result = locator.locate(candidates, forest)
        accepted = {ev.rule for ev in result.evaluations if ev.accepted}
        assert set(result.accepted_rules) == accepted

    def test_both_polarities_extracted(self, fitted):
        candidates, matches, _, forest = fitted
        locator, _ = make_locator(matches)
        result = locator.locate(candidates, forest)
        polarities = {rule.predicts_match for rule in result.accepted_rules}
        # On separable-plus-band data both kinds of precise rules exist.
        assert polarities == {True, False}

    def test_too_small_stops_iteration(self, fitted):
        candidates, matches, _, forest = fitted
        locator, _ = make_locator(matches, min_difficult=10**9)
        result = locator.locate(candidates, forest)
        assert not result.should_continue
        assert result.stop_reason == "too_small"
        assert result.difficult is None

    def test_no_reduction_stops_iteration(self, fitted):
        candidates, matches, _, forest = fitted
        # An untrained-forest stand-in: single-class forest has no rules.
        rng = np.random.default_rng(0)
        trivial = train_forest(
            candidates.features[:20], np.ones(20, dtype=bool),
            ForestConfig(n_trees=3), rng,
        )
        locator, _ = make_locator(matches)
        result = locator.locate(candidates, trivial)
        assert not result.should_continue
        assert result.stop_reason in ("no_rules", "no_reduction")

    def test_cost_attributed(self, fitted):
        candidates, matches, _, forest = fitted
        locator, service = make_locator(matches)
        result = locator.locate(candidates, forest)
        assert result.pairs_labeled == service.tracker.pairs_labeled
