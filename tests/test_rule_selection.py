"""Top-k rule selection by precision upper bound (§4.2 step 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rules.predicates import Predicate
from repro.rules.rule import Rule
from repro.rules.selection import select_top_k


def neg_rule(threshold: float) -> Rule:
    return Rule([Predicate(0, "f0", True, threshold)], predicts_match=False)


@pytest.fixture
def sample():
    # Feature values 0.05, 0.15, ..., 0.95.
    return np.arange(0.05, 1.0, 0.1).reshape(-1, 1)


class TestSelectTopK:
    def test_ranks_by_upper_bound(self, sample):
        # Rule covering rows < 0.5 includes a crowd-positive at row 1,
        # rule covering rows < 0.3 does not.
        wide = neg_rule(0.5)   # covers 5 rows, one contrary -> bound 0.8
        narrow = neg_rule(0.3)  # covers 3 rows, one contrary -> bound 2/3
        clean = neg_rule(0.15)  # covers 2 rows, none contrary -> bound 1.0
        known = {1: True}
        ranked = select_top_k([wide, narrow, clean], sample, known, k=3)
        assert ranked[0].rule == clean
        assert ranked[0].precision_upper_bound == 1.0
        assert ranked[1].rule == wide
        assert ranked[2].rule == narrow

    def test_tie_broken_by_coverage(self, sample):
        small = neg_rule(0.2)  # 2 rows, bound 1.0
        large = neg_rule(0.4)  # 4 rows, bound 1.0
        ranked = select_top_k([small, large], sample, {}, k=2)
        assert ranked[0].rule == large
        assert ranked[0].coverage == 4

    def test_k_limits_output(self, sample):
        rules = [neg_rule(t) for t in (0.2, 0.4, 0.6, 0.8)]
        ranked = select_top_k(rules, sample, {}, k=2)
        assert len(ranked) == 2

    def test_zero_coverage_skipped(self, sample):
        ranked = select_top_k([neg_rule(-1.0)], sample, {}, k=5)
        assert ranked == []

    def test_k_zero(self, sample):
        assert select_top_k([neg_rule(0.5)], sample, {}, k=0) == []

    def test_min_coverage_filter(self, sample):
        ranked = select_top_k([neg_rule(0.15)], sample, {}, k=5,
                              min_coverage=3)
        assert ranked == []

    def test_positive_rule_contrary_is_negative_label(self, sample):
        positive = Rule([Predicate(0, "f0", False, 0.5)],
                        predicts_match=True)  # covers rows > 0.5 (5 rows)
        # Row 7 labelled negative contradicts a positive rule.
        ranked = select_top_k([positive], sample, {7: False}, k=1)
        assert ranked[0].precision_upper_bound == pytest.approx(4 / 5)

    def test_known_positives_do_not_penalize_positive_rules(self, sample):
        positive = Rule([Predicate(0, "f0", False, 0.5)],
                        predicts_match=True)
        ranked = select_top_k([positive], sample, {7: True}, k=1)
        assert ranked[0].precision_upper_bound == 1.0
