"""Extracting rules from forests (Figure 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ForestConfig
from repro.exceptions import RuleError
from repro.forest.forest import train_forest
from repro.rules.extraction import (
    extract_negative_rules,
    extract_positive_rules,
    extract_rules,
)


@pytest.fixture
def forest_and_data(rng):
    x = rng.random((400, 4))
    y = (x[:, 0] > 0.5) & (x[:, 1] > 0.5)
    forest = train_forest(x, y, ForestConfig(n_trees=5), rng)
    return forest, x, y


NAMES = ["f0", "f1", "f2", "f3"]
COSTS = [1.0, 2.0, 4.0, 8.0]


class TestExtraction:
    def test_polarity_filter(self, forest_and_data):
        forest, _, _ = forest_and_data
        negative = extract_negative_rules(forest, NAMES)
        positive = extract_positive_rules(forest, NAMES)
        both = extract_rules(forest, NAMES)
        assert all(r.is_negative for r in negative)
        assert all(not r.is_negative for r in positive)
        assert len(both) <= len(negative) + len(positive)
        assert negative and positive

    def test_rules_cover_their_leaf_examples(self, forest_and_data):
        """Every training example is covered by at least one extracted
        rule of the label its forest trees assign."""
        forest, x, _ = forest_and_data
        rules = extract_rules(forest, NAMES)
        covered = np.zeros(len(x), dtype=bool)
        for rule in rules:
            covered |= rule.applies(x)
        assert covered.all()

    def test_negative_rules_identify_negatives(self, forest_and_data):
        """A negative rule from a tree grown on clean separable data
        should cover mostly true negatives."""
        forest, x, y = forest_and_data
        rules = extract_negative_rules(forest, NAMES)
        for rule in rules[:10]:
            mask = rule.applies(x)
            if mask.sum() >= 20:
                assert (~y[mask]).mean() >= 0.9

    def test_deduplication(self, forest_and_data):
        forest, _, _ = forest_and_data
        rules = extract_rules(forest, NAMES)
        assert len(set(rules)) == len(rules)

    def test_cost_from_distinct_features(self, forest_and_data):
        forest, _, _ = forest_and_data
        rules = extract_rules(forest, NAMES, COSTS)
        for rule in rules:
            expected = sum(COSTS[i] for i in rule.feature_indices)
            assert rule.cost == expected

    def test_default_cost_counts_features(self, forest_and_data):
        forest, _, _ = forest_and_data
        rules = extract_rules(forest, NAMES)
        for rule in rules:
            assert rule.cost == len(rule.feature_indices)

    def test_name_count_mismatch(self, forest_and_data):
        forest, _, _ = forest_and_data
        with pytest.raises(RuleError):
            extract_rules(forest, ["only_one"])

    def test_cost_count_mismatch(self, forest_and_data):
        forest, _, _ = forest_and_data
        with pytest.raises(RuleError):
            extract_rules(forest, NAMES, [1.0])

    def test_unsplit_tree_yields_no_rules(self, rng):
        # Single-class training -> single-leaf trees -> no conditions.
        x = rng.random((20, 4))
        forest = train_forest(x, np.ones(20, dtype=bool),
                              ForestConfig(n_trees=3), rng)
        assert extract_rules(forest, NAMES) == []

    def test_source_records_tree(self, forest_and_data):
        forest, _, _ = forest_and_data
        rules = extract_rules(forest, NAMES)
        assert all(rule.source.startswith("tree") for rule in rules)
