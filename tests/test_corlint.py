"""corlint: the repo gate plus fixture tests for every rule.

Two layers: (1) the tier-1 gate — ``src/repro`` must produce zero
non-baselined findings against the checked-in baseline, with no stale
entries; (2) framework tests — per-rule fixture snippets (positive,
negative, suppressed, baselined), baseline semantics, reporter
round-trips and the CLI contract.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Analyzer,
    Baseline,
    Severity,
    baseline_from_findings,
    render_json,
    render_text,
    run_analysis,
)
from repro.analysis.cli import main as corlint_main
from repro.analysis.reporters import JSON_REPORT_VERSION

ROOT = Path(__file__).parent.parent
SRC = ROOT / "src" / "repro"
BASELINE = ROOT / "corlint-baseline.json"


def check(tree: dict[str, str], tmp_path: Path,
          baseline: Baseline | None = None):
    """Write ``relpath -> source`` fixtures and analyze the tree."""
    for relpath, source in tree.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    analyzer = Analyzer(use_cache=False, root=tmp_path)
    return analyzer.run([tmp_path], baseline=baseline)


def rule_ids(report) -> set[str]:
    """The distinct rule ids among a report's new findings."""
    return {finding.rule_id for finding in report.new_findings}


# ----------------------------------------------------------------------
# The repo gate (tier-1): src/repro is corlint-clean
# ----------------------------------------------------------------------


class TestRepoIsClean:
    def test_src_repro_has_no_new_findings(self):
        report = run_analysis([SRC], baseline_path=BASELINE)
        rendered = render_text(report)
        assert not report.new_findings, (
            "corlint found non-baselined findings:\n" + rendered
        )

    def test_baseline_has_no_stale_entries(self):
        report = run_analysis([SRC], baseline_path=BASELINE)
        assert not report.stale_entries, (
            "stale corlint baseline entries: "
            + ", ".join(e.fingerprint for e in report.stale_entries)
        )

    def test_every_baseline_entry_is_justified(self):
        payload = json.loads(BASELINE.read_text())
        for entry in payload["entries"]:
            justification = entry.get("justification", "")
            assert justification and "TODO" not in justification, (
                f"baseline entry {entry['fingerprint']} lacks a real "
                "justification"
            )


# ----------------------------------------------------------------------
# CL001 determinism
# ----------------------------------------------------------------------


class TestDeterminismRule:
    def test_unseeded_default_rng_flagged(self, tmp_path):
        report = check({"core/mod.py": (
            "import numpy as np\n"
            "def f():\n"
            "    return np.random.default_rng()\n"
        )}, tmp_path)
        assert rule_ids(report) == {"CL001"}
        assert len(report.new_findings) == 1

    def test_seeded_default_rng_ok(self, tmp_path):
        report = check({"core/mod.py": (
            "import numpy as np\n"
            "def f(seed):\n"
            "    return np.random.default_rng(seed)\n"
        )}, tmp_path)
        assert report.new_findings == []

    def test_legacy_numpy_global_rng_flagged(self, tmp_path):
        report = check({"forest/mod.py": (
            "import numpy as np\n"
            "def f():\n"
            "    np.random.seed(4)\n"
            "    return np.random.rand(3)\n"
        )}, tmp_path)
        assert rule_ids(report) == {"CL001"}
        assert len(report.new_findings) == 2

    def test_stdlib_random_flagged(self, tmp_path):
        report = check({"crowd/mod.py": (
            "import random\n"
            "def f():\n"
            "    return random.random()\n"
        )}, tmp_path)
        assert rule_ids(report) == {"CL001"}

    def test_wall_clock_and_datetime_flagged(self, tmp_path):
        report = check({"rules/mod.py": (
            "import time\n"
            "from datetime import datetime\n"
            "def f():\n"
            "    return time.time(), datetime.now()\n"
        )}, tmp_path)
        assert rule_ids(report) == {"CL001"}
        assert len(report.new_findings) == 2

    def test_threaded_generator_parameter_ok(self, tmp_path):
        report = check({"core/mod.py": (
            "import numpy as np\n"
            "def f(rng: np.random.Generator):\n"
            "    return rng.random()\n"
        )}, tmp_path)
        assert report.new_findings == []

    def test_out_of_scope_module_not_flagged(self, tmp_path):
        report = check({"synth/mod.py": (
            "import numpy as np\n"
            "def f():\n"
            "    return np.random.default_rng()\n"
        )}, tmp_path)
        assert report.new_findings == []

    def test_inline_suppression(self, tmp_path):
        report = check({"core/mod.py": (
            "import numpy as np\n"
            "def f():\n"
            "    return np.random.default_rng()"
            "  # corlint: disable=CL001\n"
        )}, tmp_path)
        assert report.new_findings == []

    def test_disable_next_line_suppression(self, tmp_path):
        report = check({"core/mod.py": (
            "import numpy as np\n"
            "def f():\n"
            "    # corlint: disable-next-line=CL001\n"
            "    return np.random.default_rng()\n"
        )}, tmp_path)
        assert report.new_findings == []

    def test_pragma_in_string_literal_does_not_suppress(self, tmp_path):
        report = check({"core/mod.py": (
            "import numpy as np\n"
            "def f():\n"
            "    s = '# corlint: disable=CL001'\n"
            "    return np.random.default_rng(), s\n"
        )}, tmp_path)
        assert rule_ids(report) == {"CL001"}


# ----------------------------------------------------------------------
# CL002 accounting
# ----------------------------------------------------------------------

_DIRECT_ASK = (
    "def label(platform, pair):\n"
    "    return platform.ask(pair).label\n"
)


class TestAccountingRule:
    def test_direct_ask_flagged(self, tmp_path):
        report = check({"core/mod.py": _DIRECT_ASK}, tmp_path)
        assert rule_ids(report) == {"CL002"}

    def test_ask_many_flagged(self, tmp_path):
        report = check({"evaluation/mod.py": (
            "def label(platform, pairs):\n"
            "    return platform.ask_many(pairs, 3)\n"
        )}, tmp_path)
        assert rule_ids(report) == {"CL002"}

    def test_service_module_exempt(self, tmp_path):
        report = check({"crowd/service.py": _DIRECT_ASK}, tmp_path)
        assert report.new_findings == []

    def test_platform_subclass_forwarding_exempt(self, tmp_path):
        report = check({"crowd/wrapper.py": (
            "from .base import CrowdPlatform\n"
            "class Proxy(CrowdPlatform):\n"
            "    def ask(self, pair):\n"
            "        return self._inner.ask(pair)\n"
        )}, tmp_path)
        assert report.new_findings == []

    def test_test_modules_exempt(self, tmp_path):
        report = check({"tests/test_mod.py": _DIRECT_ASK}, tmp_path)
        assert report.new_findings == []


# ----------------------------------------------------------------------
# CL003 kernel parity
# ----------------------------------------------------------------------

_LIBRARY_TEMPLATE = (
    "_MEASURE_COSTS = {{\n{measures}}}\n"
)
_BATCH_TEMPLATE = (
    "def _k(*args):\n"
    "    return None\n"
    "_KERNELS = {{\n{kernels}}}\n"
    "def kernel_for(measure, attr_type):\n"
    "    if measure == 'exact':\n"
    "        return _k\n"
    "    return _KERNELS.get(measure)\n"
)


def _parity_tree(measures: str, kernels: str) -> dict[str, str]:
    return {
        "features/library.py": _LIBRARY_TEMPLATE.format(measures=measures),
        "features/batch.py": _BATCH_TEMPLATE.format(kernels=kernels),
    }


class TestKernelParityRule:
    def test_matched_registries_ok(self, tmp_path):
        tree = _parity_tree(
            "    'exact': 1.0,\n    'jaccard': 3.0,\n",
            "    'jaccard': _k,\n",
        )
        report = check(tree, tmp_path)
        assert report.new_findings == []

    def test_measure_without_kernel_flagged(self, tmp_path):
        tree = _parity_tree(
            "    'exact': 1.0,\n    'orphan_measure': 3.0,\n",
            "",
        )
        report = check(tree, tmp_path)
        assert rule_ids(report) == {"CL003"}
        (finding,) = report.new_findings
        assert "orphan_measure" in finding.message
        assert finding.path.endswith("features/library.py")

    def test_kernel_without_measure_flagged(self, tmp_path):
        tree = _parity_tree(
            "    'exact': 1.0,\n",
            "    'orphan_kernel': _k,\n",
        )
        report = check(tree, tmp_path)
        assert rule_ids(report) == {"CL003"}
        (finding,) = report.new_findings
        assert "orphan_kernel" in finding.message
        assert finding.path.endswith("features/batch.py")

    def test_rule_silent_without_both_registries(self, tmp_path):
        report = check({
            "features/library.py": "_MEASURE_COSTS = {'exact': 1.0}\n",
        }, tmp_path)
        assert report.new_findings == []


# ----------------------------------------------------------------------
# CL004 numeric hygiene
# ----------------------------------------------------------------------


class TestNumericHygieneRule:
    def test_float_literal_equality_flagged(self, tmp_path):
        report = check({"features/mod.py": (
            "def f(x):\n"
            "    return x == 0.5\n"
        )}, tmp_path)
        assert rule_ids(report) == {"CL004"}
        assert report.new_findings[0].severity is Severity.WARNING

    def test_nan_idiom_flagged(self, tmp_path):
        report = check({"core/mod.py": (
            "def f(x):\n"
            "    return x != x\n"
        )}, tmp_path)
        assert rule_ids(report) == {"CL004"}
        assert "isnan" in report.new_findings[0].message

    def test_untyped_comparison_not_flagged(self, tmp_path):
        report = check({"features/mod.py": (
            "def f(a, b):\n"
            "    return a == b\n"
        )}, tmp_path)
        assert report.new_findings == []

    def test_union_find_parent_lookup_not_flagged(self, tmp_path):
        # parent[x] != x is NOT the NaN idiom: the sides differ.
        report = check({"core/mod.py": (
            "def find(parent, x):\n"
            "    while parent[x] != x:\n"
            "        x = parent[x]\n"
            "    return x\n"
        )}, tmp_path)
        assert report.new_findings == []

    def test_intent_comment_suppresses(self, tmp_path):
        report = check({"rules/mod.py": (
            "def f(d):\n"
            "    # corlint: disable-next-line=CL004 — exact-zero guard\n"
            "    if d == 0.0:\n"
            "        return 0.0\n"
            "    return 1.0 / d\n"
        )}, tmp_path)
        assert report.new_findings == []


# ----------------------------------------------------------------------
# CL005 picklability
# ----------------------------------------------------------------------


class TestPicklabilityRule:
    def test_lambda_into_pool_flagged(self, tmp_path):
        report = check({"core/mod.py": (
            "def run(pool, jobs):\n"
            "    return pool.map(lambda job: job, jobs)\n"
        )}, tmp_path)
        assert rule_ids(report) == {"CL005"}

    def test_nested_def_into_pool_flagged(self, tmp_path):
        report = check({"core/mod.py": (
            "def run(pool, jobs):\n"
            "    def worker(job):\n"
            "        return job\n"
            "    return pool.map(worker, jobs)\n"
        )}, tmp_path)
        assert rule_ids(report) == {"CL005"}

    def test_module_level_worker_ok(self, tmp_path):
        report = check({"core/mod.py": (
            "def worker(job):\n"
            "    return job\n"
            "def run(pool, jobs):\n"
            "    return pool.map(worker, jobs)\n"
        )}, tmp_path)
        assert report.new_findings == []

    def test_partial_of_nested_def_flagged(self, tmp_path):
        report = check({"core/mod.py": (
            "from functools import partial\n"
            "def run(pool, jobs):\n"
            "    def worker(job, k):\n"
            "        return job + k\n"
            "    return pool.map(partial(worker, k=1), jobs)\n"
        )}, tmp_path)
        assert rule_ids(report) == {"CL005"}

    def test_non_pool_map_not_flagged(self, tmp_path):
        report = check({"core/mod.py": (
            "def run(frame, jobs):\n"
            "    return frame.map(lambda j: j, jobs)\n"
        )}, tmp_path)
        assert report.new_findings == []


# ----------------------------------------------------------------------
# CL006 generic hygiene
# ----------------------------------------------------------------------


class TestGenericHygieneRule:
    def test_mutable_default_flagged(self, tmp_path):
        report = check({"anywhere/mod.py": (
            "def f(items=[]):\n"
            "    return items\n"
        )}, tmp_path)
        assert rule_ids(report) == {"CL006"}

    def test_none_default_ok(self, tmp_path):
        report = check({"anywhere/mod.py": (
            "def f(items=None):\n"
            "    return items or []\n"
        )}, tmp_path)
        assert report.new_findings == []

    def test_shadowed_builtin_flagged(self, tmp_path):
        report = check({"anywhere/mod.py": (
            "def f(values):\n"
            "    list = sorted(values)\n"
            "    return list\n"
        )}, tmp_path)
        assert rule_ids(report) == {"CL006"}

    def test_ordinary_names_ok(self, tmp_path):
        report = check({"anywhere/mod.py": (
            "def f(values):\n"
            "    ordered = sorted(values)\n"
            "    return ordered\n"
        )}, tmp_path)
        assert report.new_findings == []


# ----------------------------------------------------------------------
# CL007 RNG stream sharing
# ----------------------------------------------------------------------


_SHARED_RNG = (
    "class Pipeline:\n"
    "    def run(self):\n"
    "        blocker = Blocker(self.config, self.rng)\n"
    "        matcher = Matcher(self.config, rng=self.rng)\n"
    "        return blocker, matcher\n"
)


class TestRngSharingRule:
    def test_two_constructors_sharing_self_rng_flagged(self, tmp_path):
        report = check({"core/mod.py": _SHARED_RNG}, tmp_path)
        assert rule_ids(report) == {"CL007"}
        assert len(report.new_findings) == 1

    def test_single_constructor_ok(self, tmp_path):
        report = check({"engine/mod.py": (
            "class Pipeline:\n"
            "    def run(self):\n"
            "        return Blocker(self.config, rng=self.rng)\n"
        )}, tmp_path)
        assert report.new_findings == []

    def test_distinct_streams_ok(self, tmp_path):
        report = check({"core/mod.py": (
            "class Pipeline:\n"
            "    def run(self, ctx):\n"
            "        blocker = Blocker(self.config, ctx.rng('blocker'))\n"
            "        matcher = Matcher(self.config, ctx.rng('matcher'))\n"
            "        return blocker, matcher\n"
        )}, tmp_path)
        assert report.new_findings == []

    def test_sharing_across_functions_ok(self, tmp_path):
        report = check({"core/mod.py": (
            "class Pipeline:\n"
            "    def block(self):\n"
            "        return Blocker(self.config, self.rng)\n"
            "    def match(self):\n"
            "        return Matcher(self.config, self.rng)\n"
        )}, tmp_path)
        assert report.new_findings == []

    def test_lowercase_helpers_ok(self, tmp_path):
        report = check({"core/mod.py": (
            "class Pipeline:\n"
            "    def run(self):\n"
            "        a = shuffle(self.rng)\n"
            "        b = sample(self.rng)\n"
            "        return a, b\n"
        )}, tmp_path)
        assert report.new_findings == []

    def test_outside_scope_ok(self, tmp_path):
        report = check({"crowd/mod.py": _SHARED_RNG}, tmp_path)
        assert report.new_findings == []

    def test_suppressed_with_pragma(self, tmp_path):
        report = check({"core/mod.py": (
            "class Pipeline:\n"
            "    def run(self):\n"
            "        blocker = Blocker(self.config, self.rng)\n"
            "        matcher = Matcher(self.config, rng=self.rng)"
            "  # corlint: disable=CL007\n"
            "        return blocker, matcher\n"
        )}, tmp_path)
        assert report.new_findings == []

    def test_baselined_sharing_allowed(self, tmp_path):
        first = check({"core/mod.py": _SHARED_RNG}, tmp_path)
        assert rule_ids(first) == {"CL007"}
        baseline = baseline_from_findings(first.new_findings)
        second = check({"core/mod.py": _SHARED_RNG}, tmp_path,
                       baseline=baseline)
        assert second.new_findings == []
        assert len(second.baselined_findings) == 1


_SWALLOWED = (
    "def fetch(platform, pair):\n"
    "    try:\n"
    "        return platform.submit(pair)\n"
    "    except CrowdError:\n"
    "        return None\n"
)


class TestSwallowedCrowdErrorRule:
    def test_silent_handler_flagged(self, tmp_path):
        report = check({"crowd/mod.py": _SWALLOWED}, tmp_path)
        assert rule_ids(report) == {"CL008"}
        assert len(report.new_findings) == 1

    def test_reraise_ok(self, tmp_path):
        report = check({"crowd/mod.py": (
            "def fetch(platform, pair):\n"
            "    try:\n"
            "        return platform.submit(pair)\n"
            "    except TransientCrowdError:\n"
            "        cleanup()\n"
            "        raise\n"
        )}, tmp_path)
        assert report.new_findings == []

    def test_conditional_raise_ok(self, tmp_path):
        report = check({"crowd/mod.py": (
            "def fetch(platform, pair, attempt, limit):\n"
            "    try:\n"
            "        return platform.submit(pair)\n"
            "    except TransientCrowdError as error:\n"
            "        if attempt >= limit:\n"
            "            raise CrowdUnavailableError(attempt) from error\n"
            "        return None\n"
        )}, tmp_path)
        assert report.new_findings == []

    def test_emit_ok(self, tmp_path):
        report = check({"crowd/mod.py": (
            "def fetch(platform, pair, bus):\n"
            "    try:\n"
            "        return platform.submit(pair)\n"
            "    except CrowdError as error:\n"
            "        bus.emit('fault_injected', kind=str(error))\n"
            "        return None\n"
        )}, tmp_path)
        assert report.new_findings == []

    def test_budget_exhausted_exempt(self, tmp_path):
        report = check({"crowd/mod.py": (
            "def fetch(platform, pair):\n"
            "    try:\n"
            "        return platform.submit(pair)\n"
            "    except BudgetExhaustedError:\n"
            "        return None\n"
        )}, tmp_path)
        assert report.new_findings == []

    def test_tuple_clause_flagged(self, tmp_path):
        report = check({"crowd/mod.py": (
            "def fetch(platform, pair):\n"
            "    try:\n"
            "        return platform.submit(pair)\n"
            "    except (ValueError, HitExpiredError):\n"
            "        return None\n"
        )}, tmp_path)
        assert rule_ids(report) == {"CL008"}

    def test_test_modules_exempt(self, tmp_path):
        report = check({"test_mod.py": _SWALLOWED}, tmp_path)
        assert report.new_findings == []

    def test_suppressed_with_pragma(self, tmp_path):
        report = check({"crowd/mod.py": (
            "def fetch(platform, pair):\n"
            "    try:\n"
            "        return platform.submit(pair)\n"
            "    except CrowdError:  # corlint: disable=CL008\n"
            "        return None\n"
        )}, tmp_path)
        assert report.new_findings == []


_EVENT_REGISTRY = (
    "EVENT_STAGE_STARTED = \"stage_started\"\n"
    "EVENT_STAGE_FINISHED = \"stage_finished\"\n"
    "EVENT_NAMES = (\n"
    "    EVENT_STAGE_STARTED,\n"
    "    EVENT_STAGE_FINISHED,\n"
    ")\n"
)


class TestEventRegistryRule:
    def test_undeclared_literal_emit_flagged(self, tmp_path):
        report = check({
            "engine/events.py": _EVENT_REGISTRY,
            "engine/mod.py": (
                "def go(bus):\n"
                "    bus.emit(\"stage_stated\", stage=\"block\")\n"
            ),
        }, tmp_path)
        assert rule_ids(report) == {"CL009"}
        assert len(report.new_findings) == 1
        assert "stage_stated" in report.new_findings[0].message

    def test_declared_literal_emit_ok(self, tmp_path):
        report = check({
            "engine/events.py": _EVENT_REGISTRY,
            "engine/mod.py": (
                "def go(bus):\n"
                "    bus.emit(\"stage_started\", stage=\"block\")\n"
            ),
        }, tmp_path)
        assert report.new_findings == []

    def test_emit_via_constant_ok(self, tmp_path):
        report = check({
            "engine/events.py": _EVENT_REGISTRY,
            "engine/mod.py": (
                "from .events import EVENT_STAGE_FINISHED\n"
                "def go(bus):\n"
                "    bus.emit(EVENT_STAGE_FINISHED, stage=\"block\")\n"
            ),
        }, tmp_path)
        assert report.new_findings == []

    def test_constant_missing_from_tuple_flagged(self, tmp_path):
        report = check({
            "engine/events.py": (
                _EVENT_REGISTRY
                + "EVENT_ORPHANED = \"orphaned\"\n"
            ),
        }, tmp_path)
        assert rule_ids(report) == {"CL009"}
        assert "EVENT_ORPHANED" in report.new_findings[0].message

    def test_non_event_constant_in_registry_module_ok(self, tmp_path):
        report = check({
            "engine/events.py": (
                _EVENT_REGISTRY
                + "TRACE_FILE = \"trace.jsonl\"\n"
            ),
        }, tmp_path)
        assert report.new_findings == []

    def test_no_registry_in_scan_stays_silent(self, tmp_path):
        report = check({
            "engine/mod.py": (
                "def go(bus):\n"
                "    bus.emit(\"anything_at_all\")\n"
            ),
        }, tmp_path)
        assert report.new_findings == []

    def test_test_modules_exempt(self, tmp_path):
        report = check({
            "engine/events.py": _EVENT_REGISTRY,
            "test_mod.py": (
                "def test_go(bus):\n"
                "    bus.emit(\"made_up_event\")\n"
            ),
        }, tmp_path)
        assert report.new_findings == []

    def test_suppressed_with_pragma(self, tmp_path):
        report = check({
            "engine/events.py": _EVENT_REGISTRY,
            "engine/mod.py": (
                "def go(bus):\n"
                "    bus.emit(\"made_up\")"
                "  # corlint: disable=CL009\n"
            ),
        }, tmp_path)
        assert report.new_findings == []


_TELEMETRY_REGISTRIES = {
    "obs/profiling.py": (
        "SECTION_NAMES = (\n"
        "    \"blocker.stream_flush\",\n"
        "    \"forest.train_forest\",\n"
        ")\n"
    ),
    "obs/spans.py": (
        "SPAN_NAMES = (\n"
        "    \"run\",\n"
        "    \"stage\",\n"
        ")\n"
    ),
}


class TestTelemetryNameRule:
    def test_unregistered_section_literal_flagged(self, tmp_path):
        report = check({
            **_TELEMETRY_REGISTRIES,
            "core/mod.py": (
                "def go():\n"
                "    with profile_section(\"blocker.steam_flush\"):\n"
                "        pass\n"
            ),
        }, tmp_path)
        assert rule_ids(report) == {"CL017"}
        assert "blocker.steam_flush" in report.new_findings[0].message

    def test_registered_section_literal_ok(self, tmp_path):
        report = check({
            **_TELEMETRY_REGISTRIES,
            "core/mod.py": (
                "def go():\n"
                "    with profile_section(\"forest.train_forest\"):\n"
                "        pass\n"
            ),
        }, tmp_path)
        assert report.new_findings == []

    def test_computed_section_name_flagged(self, tmp_path):
        report = check({
            **_TELEMETRY_REGISTRIES,
            "core/mod.py": (
                "def go(index):\n"
                "    with profile_section(f\"node.{index}\"):\n"
                "        pass\n"
            ),
        }, tmp_path)
        assert rule_ids(report) == {"CL017"}
        assert "not a string literal" in report.new_findings[0].message

    def test_unregistered_tracer_start_flagged(self, tmp_path):
        report = check({
            **_TELEMETRY_REGISTRIES,
            "obs/mod.py": (
                "def go(tracer):\n"
                "    return tracer.start(\"stge\", stage=\"block\")\n"
            ),
        }, tmp_path)
        assert rule_ids(report) == {"CL017"}
        assert "stge" in report.new_findings[0].message

    def test_registered_tracer_attribute_start_ok(self, tmp_path):
        report = check({
            **_TELEMETRY_REGISTRIES,
            "obs/mod.py": (
                "def go(self):\n"
                "    return self.tracer.start(\"run\", mode=\"fresh\")\n"
            ),
        }, tmp_path)
        assert report.new_findings == []

    def test_non_tracer_start_skipped(self, tmp_path):
        # Matcher objects expose .start too; only tracer receivers are
        # span-name call sites.
        report = check({
            **_TELEMETRY_REGISTRIES,
            "core/mod.py": (
                "def go(matcher, working):\n"
                "    return matcher.start(working, None)\n"
            ),
        }, tmp_path)
        assert report.new_findings == []

    def test_unregistered_span_literal_flagged(self, tmp_path):
        report = check({
            **_TELEMETRY_REGISTRIES,
            "engine/mod.py": (
                "def go(ctx):\n"
                "    with ctx.span(\"stages\", stage=\"block\"):\n"
                "        pass\n"
            ),
        }, tmp_path)
        assert rule_ids(report) == {"CL017"}
        assert "stages" in report.new_findings[0].message

    def test_forwarded_span_name_skipped(self, tmp_path):
        # The run context's span() wrapper forwards a non-literal name;
        # .span is only audited when the name is a literal.
        report = check({
            **_TELEMETRY_REGISTRIES,
            "engine/mod.py": (
                "def span(self, name, **attrs):\n"
                "    return self.telemetry.tracer.span(name, **attrs)\n"
            ),
        }, tmp_path)
        assert report.new_findings == []

    def test_silent_without_registries_in_scan(self, tmp_path):
        report = check({
            "core/mod.py": (
                "def go():\n"
                "    with profile_section(\"anything.at.all\"):\n"
                "        pass\n"
            ),
        }, tmp_path)
        assert report.new_findings == []

    def test_test_modules_exempt(self, tmp_path):
        report = check({
            **_TELEMETRY_REGISTRIES,
            "test_mod.py": (
                "def test_go(tracer):\n"
                "    return tracer.start(\"bogus\")\n"
            ),
        }, tmp_path)
        assert report.new_findings == []

    def test_suppressed_with_pragma(self, tmp_path):
        report = check({
            **_TELEMETRY_REGISTRIES,
            "core/mod.py": (
                "def go(index):\n"
                "    with profile_section(f\"node.{index}\"):"
                "  # corlint: disable=CL017\n"
                "        pass\n"
            ),
        }, tmp_path)
        assert report.new_findings == []


class TestSpillOwnershipRule:
    def test_open_memmap_outside_spill_flagged(self, tmp_path):
        report = check({
            "engine/mod.py": (
                "import numpy as np\n"
                "def f(path):\n"
                "    return np.lib.format.open_memmap(path, mode=\"w+\")\n"
            ),
        }, tmp_path)
        assert rule_ids(report) == {"CL015"}
        assert "SpillManager" in report.new_findings[0].message

    def test_raw_memmap_outside_spill_flagged(self, tmp_path):
        report = check({
            "engine/mod.py": (
                "import numpy as np\n"
                "def f(path):\n"
                "    return np.memmap(path, dtype=\"float64\")\n"
            ),
        }, tmp_path)
        assert rule_ids(report) == {"CL015"}

    def test_bare_open_memmap_import_flagged(self, tmp_path):
        report = check({
            "engine/mod.py": (
                "from numpy.lib.format import open_memmap\n"
                "def f(path):\n"
                "    return open_memmap(path, mode=\"w+\")\n"
            ),
        }, tmp_path)
        assert rule_ids(report) == {"CL015"}

    def test_load_with_mmap_mode_flagged(self, tmp_path):
        report = check({
            "engine/mod.py": (
                "import numpy as np\n"
                "def f(path):\n"
                "    return np.load(path, mmap_mode=\"r\")\n"
            ),
        }, tmp_path)
        assert rule_ids(report) == {"CL015"}
        assert "open_readonly" in report.new_findings[0].message

    def test_plain_load_ok(self, tmp_path):
        report = check({
            "engine/mod.py": (
                "import numpy as np\n"
                "def f(path):\n"
                "    return np.load(path, allow_pickle=False)\n"
            ),
        }, tmp_path)
        assert report.new_findings == []

    def test_load_mmap_mode_none_ok(self, tmp_path):
        report = check({
            "engine/mod.py": (
                "import numpy as np\n"
                "def f(path):\n"
                "    return np.load(path, mmap_mode=None)\n"
            ),
        }, tmp_path)
        assert report.new_findings == []

    def test_owner_module_exempt(self, tmp_path):
        report = check({
            "plan/spill.py": (
                "import numpy as np\n"
                "def allocate(path, shape):\n"
                "    return np.lib.format.open_memmap(\n"
                "        path, mode=\"w+\", shape=shape)\n"
                "def open_readonly(path):\n"
                "    return np.load(path, mmap_mode=\"r\")\n"
            ),
        }, tmp_path)
        assert report.new_findings == []

    def test_test_modules_exempt(self, tmp_path):
        report = check({
            "test_mod.py": (
                "import numpy as np\n"
                "def test_f(path):\n"
                "    return np.load(path, mmap_mode=\"r\")\n"
            ),
        }, tmp_path)
        assert report.new_findings == []

    def test_suppressed_with_pragma(self, tmp_path):
        report = check({
            "engine/mod.py": (
                "import numpy as np\n"
                "def f(path):\n"
                "    return np.memmap(path)"
                "  # corlint: disable=CL015\n"
            ),
        }, tmp_path)
        assert report.new_findings == []


class TestStorageOwnershipRule:
    def test_os_replace_outside_storage_flagged(self, tmp_path):
        report = check({
            "engine/mod.py": (
                "import os\n"
                "def f(tmp, path):\n"
                "    os.replace(tmp, path)\n"
            ),
        }, tmp_path)
        assert rule_ids(report) == {"CL016"}
        assert "repro.storage.writer" in report.new_findings[0].message

    def test_os_rename_and_fsync_flagged(self, tmp_path):
        report = check({
            "engine/mod.py": (
                "import os\n"
                "def f(tmp, path, fd):\n"
                "    os.rename(tmp, path)\n"
                "    os.fsync(fd)\n"
            ),
        }, tmp_path)
        assert rule_ids(report) == {"CL016"}
        assert len(report.new_findings) == 2

    def test_bare_replace_import_flagged(self, tmp_path):
        report = check({
            "engine/mod.py": (
                "from os import replace\n"
                "def f(tmp, path):\n"
                "    replace(tmp, path)\n"
            ),
        }, tmp_path)
        assert rule_ids(report) == {"CL016"}

    def test_aliased_os_import_flagged(self, tmp_path):
        report = check({
            "engine/mod.py": (
                "import os as operating_system\n"
                "def f(tmp, path):\n"
                "    operating_system.replace(tmp, path)\n"
            ),
        }, tmp_path)
        assert rule_ids(report) == {"CL016"}

    def test_unowned_os_calls_ok(self, tmp_path):
        report = check({
            "engine/mod.py": (
                "import os\n"
                "def f(path):\n"
                "    os.remove(path)\n"
                "    return os.cpu_count()\n"
            ),
        }, tmp_path)
        assert report.new_findings == []

    def test_storage_package_exempt(self, tmp_path):
        report = check({
            "repro/storage/writer.py": (
                "import os\n"
                "def atomic(tmp, path, fd):\n"
                "    os.fsync(fd)\n"
                "    os.replace(tmp, path)\n"
            ),
        }, tmp_path)
        assert report.new_findings == []

    def test_test_modules_exempt(self, tmp_path):
        report = check({
            "test_mod.py": (
                "import os\n"
                "def test_f(tmp, path):\n"
                "    os.replace(tmp, path)\n"
            ),
        }, tmp_path)
        assert report.new_findings == []

    def test_suppressed_with_pragma(self, tmp_path):
        report = check({
            "engine/mod.py": (
                "import os\n"
                "def f(tmp, path):\n"
                "    os.replace(tmp, path)"
                "  # corlint: disable=CL016\n"
            ),
        }, tmp_path)
        assert report.new_findings == []


# ----------------------------------------------------------------------
# Baseline semantics
# ----------------------------------------------------------------------

_BAD_RNG = {
    "core/mod.py": (
        "import numpy as np\n"
        "def f():\n"
        "    return np.random.default_rng()\n"
    ),
}


class TestBaseline:
    def test_baselined_finding_does_not_fail(self, tmp_path):
        first = check(_BAD_RNG, tmp_path)
        assert len(first.new_findings) == 1
        baseline = baseline_from_findings(first.new_findings)
        second = check(_BAD_RNG, tmp_path, baseline=baseline)
        assert second.new_findings == []
        assert len(second.baselined_findings) == 1
        assert second.stale_entries == []
        assert second.clean

    def test_fixed_finding_turns_entry_stale(self, tmp_path):
        first = check(_BAD_RNG, tmp_path)
        baseline = baseline_from_findings(first.new_findings)
        fixed = {"core/mod.py": (
            "import numpy as np\n"
            "def f(seed):\n"
            "    return np.random.default_rng(seed)\n"
        )}
        second = check(fixed, tmp_path, baseline=baseline)
        assert second.new_findings == []
        assert len(second.stale_entries) == 1
        assert not second.clean

    def test_fingerprint_survives_line_shift(self, tmp_path):
        first = check(_BAD_RNG, tmp_path)
        baseline = baseline_from_findings(first.new_findings)
        shifted = {"core/mod.py": (
            "import numpy as np\n"
            "\n"
            "# an unrelated comment pushes the finding down\n"
            "def f():\n"
            "    return np.random.default_rng()\n"
        )}
        second = check(shifted, tmp_path, baseline=baseline)
        assert second.new_findings == []
        assert len(second.baselined_findings) == 1

    def test_update_preserves_justifications(self, tmp_path):
        first = check(_BAD_RNG, tmp_path)
        baseline = baseline_from_findings(first.new_findings)
        entry = baseline.entries[0]
        object.__setattr__(entry, "justification", "kept on purpose")
        again = baseline_from_findings(first.new_findings,
                                       previous=baseline)
        assert again.entries[0].justification == "kept on purpose"

    def test_roundtrip_through_file(self, tmp_path):
        first = check(_BAD_RNG, tmp_path)
        baseline = baseline_from_findings(first.new_findings)
        target = tmp_path / "baseline.json"
        baseline.write(target)
        loaded = Baseline.load(target)
        assert [e.fingerprint for e in loaded.entries] == [
            e.fingerprint for e in baseline.entries
        ]


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------


class TestReporters:
    def test_json_report_is_stable_and_parseable(self, tmp_path):
        report = check(_BAD_RNG, tmp_path)
        once = render_json(report)
        twice = render_json(check(_BAD_RNG, tmp_path))
        assert once == twice
        payload = json.loads(once)
        assert payload["version"] == JSON_REPORT_VERSION
        assert payload["tool"] == "corlint"
        (finding,) = payload["findings"]
        assert finding["rule"] == "CL001"
        assert finding["severity"] == "error"
        assert finding["baselined"] is False
        assert payload["summary"]["new_by_rule"] == {"CL001": 1}

    def test_json_findings_sorted_by_location(self, tmp_path):
        report = check({
            "core/b.py": _BAD_RNG["core/mod.py"],
            "core/a.py": _BAD_RNG["core/mod.py"],
        }, tmp_path)
        payload = json.loads(render_json(report))
        paths = [f["path"] for f in payload["findings"]]
        assert paths == sorted(paths)

    def test_text_report_names_rule_and_location(self, tmp_path):
        report = check(_BAD_RNG, tmp_path)
        rendered = render_text(report)
        assert "core/mod.py:3" in rendered
        assert "CL001 error" in rendered
        assert "1 new finding(s)" in rendered


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestCli:
    def test_dirty_tree_exits_1(self, tmp_path, capsys):
        target = tmp_path / "core"
        target.mkdir()
        (target / "mod.py").write_text(_BAD_RNG["core/mod.py"])
        code = corlint_main([str(tmp_path), "--no-cache"])
        out = capsys.readouterr().out
        assert code == 1
        assert "CL001" in out

    def test_clean_tree_exits_0(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("X = 1\n")
        code = corlint_main([str(tmp_path), "--no-cache"])
        assert code == 0

    def test_select_restricts_rules(self, tmp_path, capsys):
        target = tmp_path / "core"
        target.mkdir()
        (target / "mod.py").write_text(_BAD_RNG["core/mod.py"])
        code = corlint_main([str(tmp_path), "--no-cache",
                             "--select", "CL006"])
        assert code == 0

    def test_select_does_not_stale_other_rules_baseline(self, tmp_path,
                                                        capsys):
        # A CL001 baseline entry must not be reported stale when the
        # run is restricted to an unrelated rule.
        target = tmp_path / "core"
        target.mkdir()
        (target / "mod.py").write_text(_BAD_RNG["core/mod.py"])
        baseline_path = tmp_path / "baseline.json"
        assert corlint_main([str(tmp_path), "--no-cache",
                             "--baseline", str(baseline_path),
                             "--update-baseline"]) == 0
        code = corlint_main([str(tmp_path), "--no-cache",
                             "--baseline", str(baseline_path),
                             "--select", "CL006"])
        out = capsys.readouterr().out
        assert code == 0, out

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        code = corlint_main([str(tmp_path), "--no-cache",
                             "--select", "CL999"])
        assert code == 2

    def test_list_rules_catalogs_all_six(self, capsys):
        code = corlint_main(["--list-rules"])
        out = capsys.readouterr().out
        assert code == 0
        for rule_id in ("CL001", "CL002", "CL003", "CL004", "CL005",
                        "CL006"):
            assert rule_id in out

    def test_update_baseline_writes_file(self, tmp_path, capsys):
        target = tmp_path / "core"
        target.mkdir()
        (target / "mod.py").write_text(_BAD_RNG["core/mod.py"])
        baseline_path = tmp_path / "baseline.json"
        code = corlint_main([str(tmp_path), "--no-cache",
                             "--baseline", str(baseline_path),
                             "--update-baseline"])
        assert code == 0
        assert baseline_path.is_file()
        rerun = corlint_main([str(tmp_path), "--no-cache",
                              "--baseline", str(baseline_path)])
        assert rerun == 0

    def test_json_output_to_file(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("X = 1\n")
        out_path = tmp_path / "report.json"
        code = corlint_main([str(tmp_path), "--no-cache",
                             "--format", "json",
                             "--output", str(out_path)])
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["tool"] == "corlint"


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------


class TestCache:
    def test_warm_cache_reproduces_findings(self, tmp_path):
        target = tmp_path / "core"
        target.mkdir()
        (target / "mod.py").write_text(_BAD_RNG["core/mod.py"])
        analyzer = Analyzer(use_cache=True, root=tmp_path)
        cold = analyzer.run([tmp_path])
        assert (tmp_path / ".corlint_cache" / "findings.json").is_file()
        warm = Analyzer(use_cache=True, root=tmp_path).run([tmp_path])
        assert [f.to_dict() for f in warm.new_findings] == [
            f.to_dict() for f in cold.new_findings
        ]

    def test_cache_invalidates_on_edit(self, tmp_path):
        target = tmp_path / "core"
        target.mkdir()
        (target / "mod.py").write_text(_BAD_RNG["core/mod.py"])
        analyzer = Analyzer(use_cache=True, root=tmp_path)
        first = analyzer.run([tmp_path])
        assert len(first.new_findings) == 1
        (target / "mod.py").write_text(
            "import numpy as np\n"
            "def f(seed):\n"
            "    return np.random.default_rng(seed)\n"
        )
        second = Analyzer(use_cache=True, root=tmp_path).run([tmp_path])
        assert second.new_findings == []
