"""Single-table deduplication (the "other EM setting" extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dedup import (
    Deduplicator,
    canonical_pair,
    cluster_duplicates,
)
from repro.crowd.simulated import PerfectCrowd
from repro.data.pairs import Pair
from repro.data.table import Record, Table
from repro.exceptions import DataError
from repro.synth.restaurants import RESTAURANT_SCHEMA, generate_restaurants


class TestCanonicalPair:
    def test_orders_ids(self):
        assert canonical_pair("b", "a") == Pair("a", "b")
        assert canonical_pair("a", "b") == Pair("a", "b")

    def test_self_pair_rejected(self):
        with pytest.raises(DataError):
            canonical_pair("x", "x")


class TestClustering:
    def test_transitive_closure(self):
        pairs = {Pair("a", "b"), Pair("b", "c"), Pair("x", "y")}
        clusters = cluster_duplicates(pairs)
        assert ["a", "b", "c"] in clusters
        assert ["x", "y"] in clusters

    def test_largest_first(self):
        pairs = {Pair("a", "b"), Pair("b", "c"), Pair("x", "y")}
        clusters = cluster_duplicates(pairs)
        assert len(clusters[0]) >= len(clusters[-1])

    def test_empty(self):
        assert cluster_duplicates(set()) == []

    def test_chain_collapses(self):
        pairs = {Pair(f"r{i}", f"r{i + 1}") for i in range(6)}
        clusters = cluster_duplicates(pairs)
        assert clusters == [[f"r{i}" for i in range(7)]]


@pytest.fixture(scope="module")
def dirty_table():
    """A single table containing duplicate restaurant listings.

    Built by merging the A and B sides of a generated dataset: matched
    pairs become in-table duplicates with known ground truth.
    """
    dataset = generate_restaurants(n_a=40, n_b=30, n_matches=12, seed=13)
    table = Table("dirty", RESTAURANT_SCHEMA)
    for source in (dataset.table_a, dataset.table_b):
        for record in source:
            table.add(Record(f"{source.name}_{record.record_id}",
                             record.values))
    duplicates = {
        canonical_pair(f"fodors_{pair.a_id}", f"zagat_{pair.b_id}")
        for pair in dataset.matches
    }
    return table, duplicates


class TestDeduplicator:
    def test_finds_planted_duplicates(self, dirty_table, fast_config):
        table, duplicates = dirty_table
        crowd = PerfectCrowd(duplicates, rng=np.random.default_rng(2))
        dedup = Deduplicator(fast_config, crowd,
                             rng=np.random.default_rng(3))
        seeds = dict.fromkeys(sorted(duplicates)[:2], True)
        non_dups = [
            canonical_pair(table.at(0).record_id, table.at(i).record_id)
            for i in range(1, 8)
        ]
        seeds.update(dict.fromkeys(
            [p for p in non_dups if p not in duplicates][:2], False
        ))
        result = dedup.run(table, seeds, mode="one_iteration")

        found = result.duplicate_pairs & duplicates
        assert len(found) >= 0.6 * len(duplicates)
        # Precision matters too: most findings are real duplicates.
        if result.duplicate_pairs:
            precision = len(found) / len(result.duplicate_pairs)
            assert precision >= 0.6

    def test_no_self_pairs_or_mirrors(self, dirty_table, fast_config):
        table, duplicates = dirty_table
        crowd = PerfectCrowd(duplicates, rng=np.random.default_rng(2))
        dedup = Deduplicator(fast_config, crowd,
                             rng=np.random.default_rng(3))
        seeds = dict.fromkeys(sorted(duplicates)[:2], True)
        ids = table.record_ids
        seeds[canonical_pair(ids[0], ids[1])] = (
            canonical_pair(ids[0], ids[1]) in duplicates
        )
        seeds[canonical_pair(ids[2], ids[3])] = (
            canonical_pair(ids[2], ids[3]) in duplicates
        )
        if sum(seeds.values()) == len(seeds):
            seeds[canonical_pair(ids[4], ids[5])] = False
        result = dedup.run(table, seeds, mode="one_iteration")
        for pair in result.duplicate_pairs:
            assert pair.a_id != pair.b_id
            assert pair.a_id < pair.b_id  # canonical order

    def test_clusters_cover_duplicate_pairs(self, dirty_table,
                                            fast_config):
        table, duplicates = dirty_table
        crowd = PerfectCrowd(duplicates, rng=np.random.default_rng(2))
        dedup = Deduplicator(fast_config, crowd,
                             rng=np.random.default_rng(3))
        seeds = dict.fromkeys(sorted(duplicates)[:2], True)
        seeds[canonical_pair(table.at(0).record_id,
                             table.at(5).record_id)] = False
        seeds[canonical_pair(table.at(1).record_id,
                             table.at(6).record_id)] = False
        result = dedup.run(table, seeds, mode="one_iteration")
        in_clusters = {
            record_id
            for cluster in result.clusters for record_id in cluster
        }
        for pair in result.duplicate_pairs:
            assert pair.a_id in in_clusters
            assert pair.b_id in in_clusters
        assert result.n_duplicates == len(in_clusters)

    def test_tiny_table_rejected(self, fast_config):
        table = Table("t", RESTAURANT_SCHEMA, [Record("only", {})])
        dedup = Deduplicator(fast_config,
                             PerfectCrowd(set(),
                                          rng=np.random.default_rng(0)))
        with pytest.raises(DataError):
            dedup.run(table, {})
