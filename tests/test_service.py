"""The labelling service: cache, HIT packing, budget."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CrowdConfig
from repro.crowd.aggregation import VoteScheme
from repro.crowd.cost import CostTracker
from repro.crowd.service import CachedLabel, LabelingService, _satisfies
from repro.crowd.simulated import PerfectCrowd, SimulatedCrowd
from repro.data.pairs import Pair
from repro.exceptions import BudgetExhaustedError

MATCHES = {Pair(f"a{i}", f"b{i}") for i in range(40)}


def make_service(error_rate: float = 0.0, budget: float | None = None,
                 **crowd_kwargs) -> LabelingService:
    config = CrowdConfig(**crowd_kwargs)
    crowd = SimulatedCrowd(MATCHES, error_rate=error_rate,
                           rng=np.random.default_rng(0))
    tracker = CostTracker(price_per_question=config.price_per_question,
                          budget=budget)
    return LabelingService(crowd, config, tracker)


def pairs(n: int, matched: bool = True) -> list[Pair]:
    if matched:
        return [Pair(f"a{i}", f"b{i}") for i in range(n)]
    return [Pair(f"a{i}", f"b{i + 1}") for i in range(n)]


class TestLabelAll:
    def test_labels_everything(self):
        service = make_service()
        result = service.label_all(pairs(7))
        assert len(result) == 7
        assert all(result.values())

    def test_non_matches_labelled_false(self):
        service = make_service()
        result = service.label_all(pairs(5, matched=False))
        assert not any(result.values())

    def test_cache_reuse_costs_nothing(self):
        service = make_service()
        service.label_all(pairs(5))
        answers_before = service.tracker.answers
        service.label_all(pairs(5))
        assert service.tracker.answers == answers_before

    def test_pairs_counted_once(self):
        service = make_service()
        service.label_all(pairs(5))
        service.label_all(pairs(5), scheme=VoteScheme.STRONG_MAJORITY)
        assert service.tracker.pairs_labeled == 5


class TestHitPacking:
    def test_full_batch_posts_two_hits(self):
        service = make_service()
        result = service.label_batch(pairs(20))
        assert len(result) == 20
        assert service.tracker.hits == 2

    def test_partial_hit_dropped_when_cache_serves(self):
        service = make_service()
        cached = pairs(15)
        service.label_all(cached)
        hits_before = service.tracker.hits
        # 15 cached + 5 fresh: no full HIT of fresh questions -> only the
        # cached labels return.
        fresh = pairs(5, matched=False)
        result = service.label_batch(cached + fresh)
        assert len(result) == 15
        assert all(pair in result for pair in cached)
        assert service.tracker.hits == hits_before

    def test_paper_example_k_3(self):
        """k=3 cached of 20 -> one HIT of 10 posted, 13 labels back."""
        service = make_service()
        cached = pairs(3)
        service.label_all(cached)
        result = service.label_batch(cached + pairs(17, matched=False))
        assert len(result) == 13

    def test_empty_batch_posts_padded_hit(self):
        """A batch with nothing cached and no full HIT still labels."""
        service = make_service()
        result = service.label_batch(pairs(4))
        assert len(result) == 4

    def test_duplicates_in_request_deduped(self):
        service = make_service()
        result = service.label_batch(pairs(10) + pairs(10))
        assert len(result) == 10


class TestCacheSchemes:
    def test_weak_positive_not_reused_for_strong(self):
        service = make_service()
        target = [Pair("a0", "b0")]
        service.label_all(target, scheme=VoteScheme.MAJORITY_2PLUS1)
        answers_before = service.tracker.answers
        service.label_all(target, scheme=VoteScheme.STRONG_MAJORITY)
        assert service.tracker.answers > answers_before

    def test_asymmetric_negative_reusable(self):
        service = make_service()
        target = [Pair("a0", "b5")]  # a non-match
        service.label_all(target, scheme=VoteScheme.MAJORITY_2PLUS1)
        answers_before = service.tracker.answers
        service.label_all(target, scheme=VoteScheme.ASYMMETRIC)
        assert service.tracker.answers == answers_before

    def test_asymmetric_positive_is_strong(self):
        service = make_service()
        target = [Pair("a0", "b0")]
        service.label_all(target, scheme=VoteScheme.ASYMMETRIC)
        answers_before = service.tracker.answers
        service.label_all(target, scheme=VoteScheme.STRONG_MAJORITY)
        assert service.tracker.answers == answers_before

    def test_satisfies_matrix(self):
        weak_pos = CachedLabel(True, strong=False)
        weak_neg = CachedLabel(False, strong=False)
        strong_pos = CachedLabel(True, strong=True)
        assert _satisfies(weak_pos, VoteScheme.MAJORITY_2PLUS1)
        assert not _satisfies(weak_pos, VoteScheme.STRONG_MAJORITY)
        assert not _satisfies(weak_pos, VoteScheme.ASYMMETRIC)
        assert _satisfies(weak_neg, VoteScheme.ASYMMETRIC)
        assert not _satisfies(weak_neg, VoteScheme.STRONG_MAJORITY)
        assert _satisfies(strong_pos, VoteScheme.STRONG_MAJORITY)


class TestSeedsAndViews:
    def test_seeded_labels_served_free(self):
        service = make_service()
        service.seed({Pair("a0", "b0"): True, Pair("a0", "b1"): False})
        result = service.label_all([Pair("a0", "b0"), Pair("a0", "b1")])
        assert result == {Pair("a0", "b0"): True, Pair("a0", "b1"): False}
        assert service.tracker.answers == 0

    def test_positive_pairs_view(self):
        service = make_service()
        service.label_all(pairs(3) + pairs(2, matched=False))
        assert service.positive_pairs() == set(pairs(3))

    def test_cached_label_lookup(self):
        service = make_service()
        assert service.cached_label(Pair("a0", "b0")) is None
        service.label_all([Pair("a0", "b0")])
        assert service.cached_label(Pair("a0", "b0")) is True

    def test_labeled_pairs_is_copy(self):
        service = make_service()
        service.label_all(pairs(1))
        view = service.labeled_pairs()
        view.clear()
        assert service.cache_size == 1


class TestBudget:
    def test_budget_exhaustion_raises(self):
        service = make_service(budget=0.10)  # ten answers at 1 cent
        with pytest.raises(BudgetExhaustedError):
            service.label_all(pairs(30))

    def test_cost_accounting(self):
        service = make_service()
        service.label_all(pairs(10))  # perfect crowd, 2+... asymmetric
        # Every positive needs at least 3 answers under asymmetric.
        assert service.tracker.answers >= 30
        assert service.tracker.dollars == pytest.approx(
            service.tracker.answers * 0.01
        )


class TestNoisyLabels:
    def test_majority_recovers_truth_mostly(self):
        service = make_service(error_rate=0.15)
        result = service.label_all(pairs(30))
        correct = sum(1 for v in result.values() if v)
        assert correct >= 27  # strong majority suppresses 15% noise


class FlakyCrowd(SimulatedCrowd):
    """Raises CrowdError on a configurable schedule of ask() calls."""

    def __init__(self, matches, fail_on: set[int], **kwargs):
        super().__init__(matches, **kwargs)
        self._fail_on = fail_on
        self._calls = 0

    def ask(self, pair):
        self._calls += 1
        if self._calls in self._fail_on:
            from repro.exceptions import CrowdError
            raise CrowdError(f"transient failure on call {self._calls}")
        return super().ask(pair)


class TestPlatformRetries:
    def _service(self, fail_on, retries=2):
        config = CrowdConfig(max_platform_retries=retries)
        crowd = FlakyCrowd(MATCHES, fail_on,
                           rng=np.random.default_rng(0))
        tracker = CostTracker(price_per_question=0.01)
        return LabelingService(crowd, config, tracker), crowd

    def test_transient_failure_is_retried(self):
        service, _ = self._service(fail_on={2})
        labels = service.label_all(pairs(3))
        assert len(labels) == 3
        assert all(labels.values())

    def test_partial_answers_still_paid(self):
        # Call 2 fails after call 1 consumed an answer: that answer is
        # metered even though the aggregation was retried.
        service, _ = self._service(fail_on={2})
        service.label_all(pairs(1))
        # Successful attempt needs >= 3 answers (asymmetric positive),
        # plus the 1 pre-failure answer.
        assert service.tracker.answers >= 4

    def test_persistent_failure_propagates(self):
        from repro.exceptions import CrowdError
        service, _ = self._service(fail_on=set(range(1, 100)),
                                   retries=2)
        with pytest.raises(CrowdError):
            service.label_all(pairs(1))

    def test_zero_retries_fails_fast(self):
        from repro.exceptions import CrowdError
        service, _ = self._service(fail_on={1}, retries=0)
        with pytest.raises(CrowdError):
            service.label_all(pairs(1))

    def test_budget_exhaustion_not_retried(self):
        from repro.exceptions import BudgetExhaustedError
        config = CrowdConfig(max_platform_retries=5)
        crowd = SimulatedCrowd(MATCHES, 0.0,
                               rng=np.random.default_rng(0))
        tracker = CostTracker(price_per_question=1.0, budget=0.5)
        service = LabelingService(crowd, config, tracker)
        tracker.record_answers(1)  # blow the budget
        with pytest.raises(BudgetExhaustedError):
            service.label_all(pairs(1))
