"""Per-stage RNG stream isolation: the coupling the engine removed.

Under the old orchestration a single ``self.rng`` flowed into every
stage, so one extra draw in the blocker shifted the matcher's monitor
rows, the estimator's probes and everything after — the coupling
corlint CL007 now flags.  These tests pin the fix: streams derived from
one root seed are independent, and perturbing one stage's stream leaves
the others' draw sequences (and the pipeline's training samples)
untouched.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import persistence
from repro.core.pipeline import Corleone
from repro.crowd.simulated import PerfectCrowd
from repro.engine import RNG_STREAMS, RunContext


@pytest.fixture
def context_pair(fast_config):
    """Two independent contexts built from the same root seed."""
    def build():
        crowd = PerfectCrowd(frozenset(), rng=np.random.default_rng(0))
        return RunContext(fast_config, crowd, seed=999)
    return build(), build()


class TestStreamIsolation:
    def test_extra_blocker_draws_leave_other_streams_unchanged(
            self, context_pair):
        plain, perturbed = context_pair
        perturbed.rng("blocker").random(100)  # the "extra draw", at bulk
        plain.rng("blocker").random(1)
        for name in ("matcher", "estimator", "locator", "engine"):
            np.testing.assert_array_equal(plain.rng(name).random(8),
                                          perturbed.rng(name).random(8))

    def test_every_stream_is_isolated_from_every_other(self, context_pair):
        plain, perturbed = context_pair
        for victim in RNG_STREAMS:
            others = [name for name in RNG_STREAMS if name != victim]
            perturbed.rng(victim).random(17)
            for name in others:
                np.testing.assert_array_equal(
                    plain.rng(name).random(3),
                    perturbed.rng(name).random(3),
                )
            plain.rng(victim).random(17)  # realign the victim stream
            np.testing.assert_array_equal(plain.rng(victim).random(3),
                                          perturbed.rng(victim).random(3))


def _run_tiny(dataset, config, extra_blocker_draws: int):
    """One one_iteration run, with the blocker stream pre-perturbed."""
    crowd = PerfectCrowd(dataset.matches, rng=np.random.default_rng(5))
    pipeline = Corleone(config, crowd, seed=321)
    if extra_blocker_draws:
        pipeline.context.rng("blocker").random(extra_blocker_draws)
    result = pipeline.run(dataset.table_a, dataset.table_b,
                          dataset.seed_labels, mode="one_iteration")
    return persistence.result_report(result), result


class TestPipelineLevelPinning:
    def test_blocker_draws_do_not_change_matcher_training(
            self, tiny_dataset, fast_config):
        """The headline regression pin for the engine refactor.

        On the tiny dataset the blocker never triggers (Cartesian size
        below ``t_b``), so consuming draws from the blocker stream must
        not move a single matcher training sample — under the old
        shared-``self.rng`` design it reshuffled all of them.
        """
        baseline_report, baseline = _run_tiny(tiny_dataset, fast_config, 0)
        perturbed_report, perturbed = _run_tiny(tiny_dataset, fast_config,
                                                13)
        base_matcher = baseline.iterations[0].matcher
        pert_matcher = perturbed.iterations[0].matcher
        assert pert_matcher.labeled_rows == base_matcher.labeled_rows
        assert (pert_matcher.confidence_history
                == base_matcher.confidence_history)
        assert perturbed_report == baseline_report


class TestSeedPlumbingEquivalence:
    def test_seed_kwarg_equals_generator_backcompat(self, tiny_dataset,
                                                    fast_config):
        """``seed=n`` and ``rng=default_rng(n)`` are the same run.

        MultiTaskRunner switched from the latter to the former; this
        pins that the switch is bit-identical.
        """
        def run(**kwargs):
            crowd = PerfectCrowd(tiny_dataset.matches,
                                 rng=np.random.default_rng(5))
            pipeline = Corleone(fast_config, crowd, **kwargs)
            return persistence.result_report(pipeline.run(
                tiny_dataset.table_a, tiny_dataset.table_b,
                tiny_dataset.seed_labels, mode="one_iteration"))

        assert run(seed=44) == run(rng=np.random.default_rng(44))
