"""The benchmark results collector script."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

SCRIPT = Path(__file__).parent.parent / "benchmarks" / "collect_results.py"


@pytest.fixture
def collector(tmp_path, monkeypatch):
    spec = importlib.util.spec_from_file_location("collect_results",
                                                  SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    monkeypatch.setattr(module, "RESULTS_DIR", tmp_path / "results")
    monkeypatch.setattr(module, "OUTPUT", tmp_path / "RESULTS.md")
    return module, tmp_path


def test_collects_in_experiment_order(collector):
    module, tmp_path = collector
    results = tmp_path / "results"
    results.mkdir()
    (results / "sec93_sensitivity.txt").write_text("sensitivity body")
    (results / "table2_overall.txt").write_text("table2 body")
    (results / "zzz_custom.txt").write_text("custom body")
    module.main()
    output = (tmp_path / "RESULTS.md").read_text()
    assert output.index("table2_overall") < output.index(
        "sec93_sensitivity"
    )
    # Unknown tables still appear, after the known ones.
    assert "zzz_custom" in output
    assert "custom body" in output


def test_fenced_blocks(collector):
    module, tmp_path = collector
    results = tmp_path / "results"
    results.mkdir()
    (results / "table1_datasets.txt").write_text("line one\nline two")
    module.main()
    output = (tmp_path / "RESULTS.md").read_text()
    assert "```text\nline one\nline two\n```" in output


def test_missing_results_dir_fails_clearly(collector):
    module, tmp_path = collector
    with pytest.raises(SystemExit):
        module.main()


def test_distill_substrates_baseline(collector):
    import json
    module, tmp_path = collector
    dump = {
        "benchmarks": [
            {
                "name": "test_vectorize_products_10k_scalar",
                "stats": {"mean": 4.0, "stddev": 0.1, "rounds": 2},
                "extra_info": {"engine": "scalar", "pairs": 10_000},
            },
            {
                "name": "test_vectorize_products_10k_batched",
                "stats": {"mean": 0.5, "stddev": 0.01, "rounds": 5},
                "extra_info": {"engine": "batched", "pairs": 10_000},
            },
            {
                "name": "test_levenshtein",
                "stats": {"mean": 0.001, "stddev": 0.0, "rounds": 100},
            },
        ],
    }
    source = tmp_path / "bench.json"
    source.write_text(json.dumps(dump))
    output = tmp_path / "BENCH_substrates.json"
    baseline = module.distill_substrates(source, output=output)
    assert baseline["vectorize_products_10k"]["speedup"] == 8.0
    assert baseline["vectorize_products_10k"][
        "batched_pairs_per_second"] == 20_000.0
    assert "test_levenshtein" in baseline["benchmarks"]
    assert json.loads(output.read_text()) == baseline


def test_distill_substrates_without_engine_pair(collector):
    """A dump missing the engine comparison still produces a baseline."""
    import json
    module, tmp_path = collector
    dump = {"benchmarks": [
        {"name": "test_levenshtein",
         "stats": {"mean": 0.001, "stddev": 0.0, "rounds": 100}},
    ]}
    source = tmp_path / "bench.json"
    source.write_text(json.dumps(dump))
    output = tmp_path / "BENCH_substrates.json"
    baseline = module.distill_substrates(source, output=output)
    assert "vectorize_products_10k" not in baseline
    assert output.is_file()


def test_collect_lint_records_per_rule_counts(collector):
    import json
    module, tmp_path = collector
    output = tmp_path / "BENCH_lint.json"
    payload = module.collect_lint(output=output)
    assert payload["files_scanned"] > 0
    # Every shipped rule is reported, and src/repro is corlint-clean:
    # nothing new, only justified baseline entries.
    for rule_id in ("CL001", "CL002", "CL003", "CL004", "CL005", "CL006"):
        assert rule_id in payload["rules"]
        assert payload["rules"][rule_id]["new"] == 0
    assert payload["totals"]["new"] == 0
    assert payload["totals"]["stale_baseline_entries"] == 0
    assert json.loads(output.read_text()) == payload
    table = (tmp_path / "results" / "lint_findings.txt").read_text()
    assert "CL001" in table and "baselined" in table


def test_order_constant_covers_known_artifacts():
    spec = importlib.util.spec_from_file_location("collect_results",
                                                  SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    for required in ("table2_overall", "figure3_confidence_real",
                     "sec93_estimator_savings", "ext_money_time",
                     "engine_overhead", "fault_gateway", "obs_overhead",
                     "shard_scaling"):
        assert required in module.ORDER


def _fake_obs_payload(overhead: float) -> dict:
    return {"run": {"instrumentation_overhead_fraction": overhead,
                    "acceptance_bar_fraction": 0.05}}


@pytest.mark.parametrize(
    "committed,fresh,expected",
    [
        (0.01, 0.012, 0),   # tiny wobble: fine
        (0.01, 0.06, 1),    # fresh measurement breaks the 5% bar
        (0.005, 0.045, 1),  # under the bar but regressed > 3pp
        (0.04, 0.01, 0),    # improvements never fail the gate
    ],
)
def test_check_regress_gate(collector, monkeypatch, committed, fresh,
                            expected):
    """--check-regress compares fresh vs committed overhead numbers."""
    import json
    module, tmp_path = collector
    record = tmp_path / "BENCH_obs.json"
    record.write_text(json.dumps(_fake_obs_payload(committed)))
    monkeypatch.setattr(module, "OBS_OUTPUT", record)
    monkeypatch.setattr(
        module, "collect_obs",
        lambda output=None, repeats=3, keep_run_dir=None,
        write_table=True: _fake_obs_payload(fresh))
    assert module.check_regress() == expected


def test_check_regress_without_committed_record(collector, monkeypatch):
    module, tmp_path = collector
    monkeypatch.setattr(module, "OBS_OUTPUT",
                        tmp_path / "BENCH_obs.json")
    assert module.check_regress() == 2


def test_collect_shard_scaling_curve(collector):
    """--shard records the worker curve and the determinism check."""
    import json
    module, tmp_path = collector
    output = tmp_path / "BENCH_shard.json"
    payload = module.collect_shard(output=output, repeats=1,
                                   n_a=20, n_b=40,
                                   worker_counts=(1, 2))
    assert payload["run"]["pairs"] == 20 * 40
    assert payload["run"]["cpu_count"] >= 1
    assert set(payload["workers"]) == {"1", "2"}
    for entry in payload["workers"].values():
        assert entry["bit_identical"]
        assert entry["seconds"] > 0
        assert entry["speedup_vs_streaming"] > 0
    assert payload["merge_determinism_ok"]
    assert json.loads(output.read_text()) == payload
    table = (tmp_path / "results" / "shard_scaling.txt").read_text()
    assert "workers" in table and "bit-identical" in table
    assert "stream" in table
