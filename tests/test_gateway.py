"""ResilientCrowd: retry, backoff, repost, circuit breaker, metering.

Property tests (hypothesis) pin the backoff-determinism contract —
identical seeds yield bit-identical retry schedules and final labels
across two gateway runs, including through a state round-trip — and
unit tests cover the breaker state machine, HIT repost metering, the
shared-clock accounting and the answers-consumed == answers-charged
invariant through the labelling service.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CrowdConfig, GatewayConfig
from repro.crowd import (
    CIRCUIT_CLOSED,
    CIRCUIT_HALF_OPEN,
    CIRCUIT_OPEN,
    CircuitBreaker,
    CostTracker,
    FaultSpec,
    FaultyCrowd,
    LabelingService,
    LatencyModel,
    PerfectCrowd,
    ResilientCrowd,
    RetryPolicy,
    SimulatedClock,
    TimedCrowd,
    find_clock,
)
from repro.data.pairs import Pair
from repro.exceptions import (
    AnswerTimeoutError,
    BudgetExhaustedError,
    ConfigurationError,
    CrowdUnavailableError,
    HitExpiredError,
    TransientCrowdError,
)

MATCHES = {Pair("a1", "b1"), Pair("a2", "b2")}
PAIR = Pair("a1", "b1")


def stack(spec: FaultSpec, seed: int = 0, *, max_attempts: int = 6,
          threshold: int = 50,
          jitter: float = 0.1) -> tuple[ResilientCrowd, FaultyCrowd]:
    """A gateway over a faulty perfect oracle; returns both layers."""
    faulty = FaultyCrowd(PerfectCrowd(MATCHES), spec, seed=seed)
    gateway = ResilientCrowd(
        faulty,
        RetryPolicy(max_attempts=max_attempts, jitter_fraction=jitter),
        breaker=CircuitBreaker(failure_threshold=threshold),
    )
    return gateway, faulty


class _AlwaysDown(PerfectCrowd):
    """A platform that never answers (permanent transient failure)."""

    def ask(self, pair):
        raise TransientCrowdError("down")


class TestRetryPolicy:
    def test_delays_grow_exponentially_to_the_cap(self):
        policy = RetryPolicy(base_delay_seconds=10.0, backoff_factor=2.0,
                             max_delay_seconds=35.0, jitter_fraction=0.0)
        rng = np.random.default_rng(0)
        delays = [policy.delay_seconds(k, rng) for k in range(4)]
        assert delays == [10.0, 20.0, 35.0, 35.0]

    def test_jitter_stays_within_the_fraction(self):
        policy = RetryPolicy(base_delay_seconds=100.0, backoff_factor=1.0,
                             jitter_fraction=0.2)
        rng = np.random.default_rng(3)
        for _ in range(50):
            delay = policy.delay_seconds(0, rng)
            assert 80.0 <= delay <= 120.0

    def test_jitter_is_deterministic(self):
        policy = RetryPolicy()
        a = [policy.delay_seconds(k, np.random.default_rng(5))
             for k in range(5)]
        b = [policy.delay_seconds(k, np.random.default_rng(5))
             for k in range(5)]
        assert a == b

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay_seconds": -1.0},
        {"backoff_factor": 0.5},
        {"jitter_fraction": 1.0},
        {"question_timeout_seconds": -5.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_negative_attempt_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy().delay_seconds(-1, np.random.default_rng(0))


class TestCircuitBreaker:
    def test_opens_at_the_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3)
        assert breaker.state == CIRCUIT_CLOSED
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True  # newly opened
        assert breaker.state == CIRCUIT_OPEN
        assert breaker.allow() is False

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        assert breaker.consecutive_failures == 0
        breaker.record_failure()
        assert breaker.state == CIRCUIT_CLOSED

    def test_half_open_after_cooldown_admits_one_trial(self):
        clock = SimulatedClock()
        breaker = CircuitBreaker(failure_threshold=1,
                                 cooldown_seconds=60.0, clock=clock)
        breaker.record_failure()
        assert breaker.allow() is False
        clock.advance(61.0)
        assert breaker.state == CIRCUIT_HALF_OPEN
        assert breaker.allow() is True   # the single trial
        assert breaker.allow() is False  # no second one in flight

    def test_half_open_trial_success_closes(self):
        clock = SimulatedClock()
        breaker = CircuitBreaker(failure_threshold=1,
                                 cooldown_seconds=60.0, clock=clock)
        breaker.record_failure()
        clock.advance(61.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CIRCUIT_CLOSED

    def test_half_open_trial_failure_reopens(self):
        clock = SimulatedClock()
        breaker = CircuitBreaker(failure_threshold=1,
                                 cooldown_seconds=60.0, clock=clock)
        breaker.record_failure()
        clock.advance(61.0)
        assert breaker.allow()
        assert breaker.record_failure() is False  # re-opened, not new
        assert breaker.state == CIRCUIT_OPEN  # cooldown restarted

    def test_state_roundtrip(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        state = json.loads(json.dumps(breaker.state_dict()))
        other = CircuitBreaker(failure_threshold=2)
        other.load_state(state)
        assert other.state_dict() == breaker.state_dict()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(cooldown_seconds=-1.0)


class TestGatewayRetries:
    def test_clean_platform_passes_straight_through(self):
        gateway, faulty = stack(FaultSpec())
        for _ in range(20):
            gateway.ask(PAIR)
        assert gateway.retries_scheduled == 0
        assert gateway.answers_recovered == 0
        assert faulty.answers_delivered == 20

    def test_transient_faults_are_retried_to_an_answer(self):
        gateway, faulty = stack(FaultSpec.uniform(0.1), seed=3)
        answers = [gateway.ask(PAIR) for _ in range(50)]
        assert len(answers) == 50
        assert gateway.retries_scheduled > 0
        assert gateway.answers_recovered > 0

    def test_retries_exhausted_reraises_the_last_error(self):
        gateway = ResilientCrowd(
            FaultyCrowd(PerfectCrowd(MATCHES),
                        FaultSpec(timeout_rate=1.0)),
            RetryPolicy(max_attempts=3),
            breaker=CircuitBreaker(failure_threshold=50),
        )
        with pytest.raises(AnswerTimeoutError):
            gateway.ask(PAIR)
        assert gateway.retries_scheduled == 2  # between the 3 attempts

    def test_budget_exhaustion_is_never_retried(self):
        class Broke(PerfectCrowd):
            def ask(self, pair):
                raise BudgetExhaustedError(5.0, 5.0)

        gateway = ResilientCrowd(Broke(MATCHES))
        with pytest.raises(BudgetExhaustedError):
            gateway.ask(PAIR)
        assert gateway.retries_scheduled == 0
        assert gateway.breaker.consecutive_failures == 0

    def test_circuit_opens_and_raises_typed_error(self):
        gateway = ResilientCrowd(
            _AlwaysDown(MATCHES),
            RetryPolicy(max_attempts=10),
            breaker=CircuitBreaker(failure_threshold=4),
        )
        with pytest.raises(CrowdUnavailableError) as info:
            gateway.ask(PAIR)
        assert info.value.failures == 4
        # The circuit stays open: fail fast without touching the platform.
        with pytest.raises(CrowdUnavailableError):
            gateway.ask(PAIR)

    def test_observer_hooks_fire(self):
        events = []
        gateway = ResilientCrowd(
            FaultyCrowd(PerfectCrowd(MATCHES),
                        FaultSpec(expiry_rate=1.0)),
            RetryPolicy(max_attempts=2),
            breaker=CircuitBreaker(failure_threshold=2),
        )
        gateway.on_retry = lambda kind, attempt, delay: events.append(
            ("retry", kind, attempt))
        gateway.on_repost = lambda pair, attempt: events.append(
            ("repost", attempt))
        gateway.on_circuit_open = lambda failures: events.append(
            ("open", failures))
        with pytest.raises(CrowdUnavailableError):
            gateway.ask(PAIR)
        assert ("repost", 0) in events
        assert ("retry", "HitExpiredError", 0) in events
        assert ("open", 2) in events


class TestMeteringAndClock:
    def test_reposted_hits_are_charged(self):
        tracker = CostTracker(price_per_question=0.01)
        gateway = ResilientCrowd(
            FaultyCrowd(PerfectCrowd(MATCHES),
                        FaultSpec(expiry_rate=0.3), seed=2),
            RetryPolicy(max_attempts=8),
            breaker=CircuitBreaker(failure_threshold=100),
            tracker=tracker,
        )
        for _ in range(40):
            gateway.ask(PAIR)
        assert gateway.hits_reposted > 0
        assert tracker.hits == gateway.hits_reposted

    def test_timeouts_charge_the_deadline_to_the_clock(self):
        gateway = ResilientCrowd(
            FaultyCrowd(PerfectCrowd(MATCHES),
                        FaultSpec(timeout_rate=1.0)),
            RetryPolicy(max_attempts=2, question_timeout_seconds=300.0,
                        base_delay_seconds=30.0, jitter_fraction=0.0),
            breaker=CircuitBreaker(failure_threshold=100),
        )
        with pytest.raises(AnswerTimeoutError):
            gateway.ask(PAIR)
        # Two timeouts waited out plus one backoff sleep.
        assert gateway.clock.now == pytest.approx(630.0)
        assert gateway.retry_seconds == pytest.approx(630.0)

    def test_gateway_shares_a_timed_crowd_clock(self):
        timed = TimedCrowd(PerfectCrowd(MATCHES), LatencyModel(),
                           pay_per_question=0.01)
        gateway = ResilientCrowd(timed)
        assert gateway.clock is timed.clock
        assert find_clock(gateway) is timed.clock
        gateway.ask(PAIR)
        assert timed.elapsed_seconds > 0

    def test_timed_crowd_accrues_latency_for_failed_attempts(self):
        """The satellite fix: retried questions cost simulated time."""
        faulty = FaultyCrowd(PerfectCrowd(MATCHES),
                             FaultSpec(timeout_rate=1.0))
        timed = TimedCrowd(faulty, LatencyModel(), pay_per_question=0.01)
        with pytest.raises(AnswerTimeoutError):
            timed.ask(PAIR)
        assert timed.retry_seconds > 0
        assert timed.elapsed_seconds >= timed.retry_seconds

    def test_from_config_applies_every_knob(self):
        config = GatewayConfig(max_attempts=7, base_delay_seconds=1.0,
                               backoff_factor=3.0, max_delay_seconds=9.0,
                               jitter_fraction=0.0,
                               question_timeout_seconds=42.0,
                               failure_threshold=11,
                               cooldown_seconds=120.0)
        gateway = ResilientCrowd.from_config(PerfectCrowd(MATCHES), config)
        assert gateway.policy.max_attempts == 7
        assert gateway.policy.question_timeout_seconds == 42.0
        assert gateway.breaker.failure_threshold == 11
        assert gateway.breaker.cooldown_seconds == 120.0


class TestAccountingInvariant:
    def test_answers_consumed_equals_answers_charged(self):
        """The tentpole invariant, through the full labelling service."""
        tracker = CostTracker(price_per_question=0.01)
        faulty = FaultyCrowd(PerfectCrowd(MATCHES),
                             FaultSpec.uniform(0.1), seed=4)
        gateway = ResilientCrowd(
            faulty, RetryPolicy(max_attempts=8),
            breaker=CircuitBreaker(failure_threshold=100),
            tracker=tracker,
        )
        service = LabelingService(gateway, CrowdConfig(), tracker)
        pairs = [Pair(f"a{i}", f"b{i}") for i in range(30)]
        service.label_all(pairs)
        assert faulty.answers_delivered == tracker.answers

    def test_invariant_holds_even_when_the_circuit_opens(self):
        tracker = CostTracker(price_per_question=0.01)
        faulty = FaultyCrowd(PerfectCrowd(MATCHES),
                             FaultSpec.uniform(0.1,
                                               hard_outage_after=25),
                             seed=4)
        gateway = ResilientCrowd(
            faulty, RetryPolicy(max_attempts=4),
            breaker=CircuitBreaker(failure_threshold=5),
            tracker=tracker,
        )
        service = LabelingService(gateway, CrowdConfig(), tracker)
        pairs = [Pair(f"a{i}", f"b{i}") for i in range(30)]
        with pytest.raises(CrowdUnavailableError):
            service.label_all(pairs)
        assert faulty.answers_delivered == tracker.answers

    def test_padded_hit_not_double_charged(self):
        """The satellite fix: hits equal questions actually consumed."""
        tracker = CostTracker(price_per_question=0.01)
        service = LabelingService(PerfectCrowd(MATCHES), CrowdConfig(),
                                  tracker)
        # Three uncached pairs: a padded HIT (less than one full HIT).
        result = service.label_batch([Pair("a1", "b1"), Pair("a2", "b2"),
                                      Pair("a9", "b9")])
        assert len(result) == 3
        assert tracker.hits == 1

    def test_aborted_batch_charges_only_consumed_hits(self):
        tracker = CostTracker(price_per_question=0.01)
        service = LabelingService(_AlwaysDown(MATCHES), CrowdConfig(),
                                  tracker)
        with pytest.raises(TransientCrowdError):
            service.label_batch([Pair(f"a{i}", f"b{i}")
                                 for i in range(10)])
        # The first question died before any answer arrived: nothing
        # was consumed, so nothing is charged.
        assert tracker.hits == 0
        assert tracker.answers == 0


def persistent_ask(gateway: ResilientCrowd, pair: Pair):
    """Ask until an answer arrives, tolerating exhausted retry rounds.

    Mirrors what the labelling service's own retry layer does above the
    gateway; the determinism properties must hold through exhaustion
    and re-ask cycles too.
    """
    while True:
        try:
            return gateway.ask(pair)
        except TransientCrowdError:
            continue


class TestBackoffDeterminismProperties:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           rate=st.floats(min_value=0.0, max_value=0.25),
           n=st.integers(min_value=1, max_value=40))
    def test_identical_seeds_bit_identical_schedules_and_labels(
            self, seed, rate, n):
        """Two identically seeded gateway runs agree on everything."""
        def run():
            gateway, faulty = stack(FaultSpec.uniform(rate), seed=seed,
                                    max_attempts=10, threshold=10_000)
            labels = []
            for i in range(n):
                labels.append(
                    persistent_ask(gateway,
                                   Pair(f"a{i % 3}", f"b{i % 3}")).label)
            return labels, gateway.state_dict(), faulty.state_dict()

        labels_a, gw_a, fc_a = run()
        labels_b, gw_b, fc_b = run()
        assert labels_a == labels_b
        assert gw_a == gw_b
        assert fc_a == fc_b

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           split=st.integers(min_value=0, max_value=30))
    def test_schedule_survives_a_state_roundtrip(self, seed, split):
        """Checkpoint at ``split`` asks, restore, continue: identical."""
        rate = 0.15
        total = 30

        def asks(gateway, start, stop):
            return [
                persistent_ask(gateway, Pair(f"a{i % 3}", f"b{i % 3}"))
                .label
                for i in range(start, stop)
            ]

        straight, _ = stack(FaultSpec.uniform(rate), seed=seed,
                            max_attempts=10, threshold=10_000)
        golden = asks(straight, 0, total)

        first, _ = stack(FaultSpec.uniform(rate), seed=seed,
                         max_attempts=10, threshold=10_000)
        head = asks(first, 0, split)
        state = json.loads(json.dumps(first.state_dict()))

        resumed, _ = stack(FaultSpec.uniform(rate), seed=seed,
                           max_attempts=10, threshold=10_000)
        resumed.load_state(state)
        tail = asks(resumed, split, total)
        assert head + tail == golden
        assert resumed.state_dict() == straight.state_dict()


class TestGatewayStateRoundtrip:
    def test_full_stack_state_is_json_compatible(self):
        gateway, _ = stack(FaultSpec.uniform(0.2), seed=6)
        for _ in range(30):
            try:
                gateway.ask(PAIR)
            except TransientCrowdError:
                pass
        state = json.loads(json.dumps(gateway.state_dict()))
        fresh, _ = stack(FaultSpec.uniform(0.2), seed=6)
        fresh.load_state(state)
        assert fresh.state_dict() == gateway.state_dict()
        assert fresh.retries_scheduled == gateway.retries_scheduled
        assert fresh.retry_seconds == gateway.retry_seconds
