"""White-box tests for the estimator's option selection and corrections."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CorleoneConfig, EstimatorConfig
from repro.core.estimator import AccuracyEstimate, AccuracyEstimator
from repro.crowd.service import LabelingService
from repro.crowd.simulated import PerfectCrowd
from repro.data.pairs import CandidateSet, Pair
from repro.rules.predicates import Predicate
from repro.rules.rule import Rule


def make_estimator(matches=frozenset(), **estimator_kwargs):
    config = CorleoneConfig(
        estimator=EstimatorConfig(**estimator_kwargs)
    )
    crowd = PerfectCrowd(matches, rng=np.random.default_rng(0))
    service = LabelingService(crowd, config.crowd)
    return AccuracyEstimator(config, service, np.random.default_rng(1))


def simple_candidates(n=200):
    values = np.linspace(0.0, 1.0, n, endpoint=False).reshape(-1, 1)
    pairs = [Pair(f"a{i}", f"b{i}") for i in range(n)]
    return CandidateSet(pairs, values, ["f0"])


def neg_rule(threshold: float) -> Rule:
    return Rule([Predicate(0, "f0", True, threshold)],
                predicts_match=False)


def blank_estimate(density=0.1, recall=0.8):
    return AccuracyEstimate(
        precision=0.0, recall=recall, eps_precision=1.0, eps_recall=1.0,
        n_labeled=0, n_probes=0, density=density, converged=False,
    )


class TestSelectOption:
    def test_no_rules_returns_empty(self):
        estimator = make_estimator()
        candidates = simple_candidates()
        option = estimator._select_option(
            candidates, np.ones(len(candidates), bool), {},
            blank_estimate(), [],
        )
        assert option == []

    def test_big_cheap_rule_selected_on_skewed_data(self):
        """When density is tiny, removing most of the population beats
        raw sampling, so a wide rule gets picked."""
        estimator = make_estimator()
        candidates = simple_candidates(n=2000)
        rule = neg_rule(0.9)  # covers 90% of rows
        option = estimator._select_option(
            candidates, np.ones(len(candidates), bool), {},
            blank_estimate(density=0.005), [rule],
        )
        assert option == [rule]

    def test_zero_coverage_rules_never_selected(self):
        estimator = make_estimator()
        candidates = simple_candidates()
        option = estimator._select_option(
            candidates, np.ones(len(candidates), bool), {},
            blank_estimate(density=0.005), [neg_rule(-1.0)],
        )
        assert option == []

    def test_empty_active_set(self):
        estimator = make_estimator()
        candidates = simple_candidates()
        option = estimator._select_option(
            candidates, np.zeros(len(candidates), bool), {},
            blank_estimate(), [neg_rule(0.5)],
        )
        assert option == []

    def test_small_rule_not_worth_evaluating_at_high_density(self):
        """A rule whose coverage barely changes the density cannot repay
        its own evaluation cost, so the empty option wins."""
        estimator = make_estimator()
        candidates = simple_candidates(n=300)
        option = estimator._select_option(
            candidates, np.ones(len(candidates), bool), {},
            blank_estimate(density=0.5), [neg_rule(0.1)],
        )
        assert option == []


class TestRemovedCorrections:
    def test_extrapolation_per_stratum(self):
        estimator = make_estimator()
        n = 100
        predictions = np.zeros(n, bool)
        predictions[:40] = True  # rows 0-39 predicted positive
        removed = np.zeros(n, bool)
        removed[:60] = True      # 40 removed-pp rows + 20 removed-pn rows
        # Audit samples: 10 of the pp stratum (3 positive), 10 of the pn
        # stratum (1 positive).
        removed_sampled = {i: (i < 3) for i in range(10)}
        removed_sampled.update({40 + i: (i < 1) for i in range(10)})

        tp_removed, ap_removed, pp_removed = (
            estimator._removed_corrections(predictions, removed,
                                           removed_sampled)
        )
        assert pp_removed == 40
        assert tp_removed == pytest.approx(0.3 * 40)    # 12
        assert ap_removed == pytest.approx(12 + 0.1 * 20)  # + 2

    def test_empty_region(self):
        estimator = make_estimator()
        predictions = np.zeros(10, bool)
        removed = np.zeros(10, bool)
        tp_removed, ap_removed, pp_removed = (
            estimator._removed_corrections(predictions, removed, {})
        )
        assert (tp_removed, ap_removed, pp_removed) == (0.0, 0.0, 0)

    def test_unsampled_stratum_contributes_zero(self):
        estimator = make_estimator()
        predictions = np.zeros(10, bool)
        removed = np.ones(10, bool)
        tp_removed, ap_removed, _ = estimator._removed_corrections(
            predictions, removed, {}
        )
        assert tp_removed == 0.0 and ap_removed == 0.0


class TestAuditHarvest:
    def test_cached_labels_harvested_for_free(self):
        matches = {Pair("a0", "b0"), Pair("a5", "b5")}
        estimator = make_estimator(matches, removed_audit_cap=5)
        candidates = simple_candidates(n=20)
        # Pre-label some removed rows through the service cache.
        estimator.service.label_all(
            [candidates.pairs[i] for i in range(8)]
        )
        answers_before = estimator.service.tracker.answers
        removed = np.zeros(20, bool)
        removed[:10] = True
        predictions = np.zeros(20, bool)
        removed_sampled: dict[int, bool] = {}
        estimator._audit_removed(candidates, predictions, removed,
                                 removed_sampled)
        # Rows 0-7 came from the cache; at most cap-adjusted fresh labels
        # were bought for the remainder.
        assert all(row in removed_sampled for row in range(8))
        fresh = estimator.service.tracker.answers - answers_before
        assert fresh <= 3 * 2  # at most two fresh pairs aggregated
