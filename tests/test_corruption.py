"""The corruption toolkit behind the synthetic generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.synth.corruption import Corruptor


@pytest.fixture
def corruptor() -> Corruptor:
    return Corruptor(np.random.default_rng(7))


class TestMaybe:
    def test_extremes(self, corruptor):
        assert not any(corruptor.maybe(0.0) for _ in range(50))
        assert all(corruptor.maybe(1.0) for _ in range(50))

    def test_rate(self, corruptor):
        hits = sum(corruptor.maybe(0.3) for _ in range(5000))
        assert hits / 5000 == pytest.approx(0.3, abs=0.03)


class TestTypos:
    def test_single_typo_edit_distance_one_ish(self, corruptor):
        from repro.features.similarity import levenshtein_distance
        word = "restaurant"
        for _ in range(50):
            mutated = corruptor.typo(word)
            assert levenshtein_distance(word, mutated) <= 2  # swap = 2

    def test_short_strings_untouched(self, corruptor):
        assert corruptor.typo("a") == "a"
        assert corruptor.typo("") == ""

    def test_typos_probability_zero_is_identity(self, corruptor):
        text = "some words in a sentence"
        assert corruptor.typos(text, 0.0) == text

    def test_typos_probability_one_touches_words(self, corruptor):
        text = "alpha bravo charlie delta echo"
        mutated = corruptor.typos(text, 1.0)
        assert mutated != text
        assert len(mutated.split()) == 5


class TestTokenOps:
    def test_abbreviate_word(self, corruptor):
        short = corruptor.abbreviate_word("boulevard")
        assert short.endswith(".")
        assert len(short) <= 4
        assert corruptor.abbreviate_word("st") == "st"

    def test_initial(self, corruptor):
        assert corruptor.initial("michael") == "m."
        assert corruptor.initial("") == ""

    def test_drop_tokens_keeps_at_least_one(self, corruptor):
        text = "a b c d"
        for _ in range(30):
            assert len(corruptor.drop_tokens(text, 0.99).split()) >= 1

    def test_drop_tokens_single_word_safe(self, corruptor):
        assert corruptor.drop_tokens("word", 1.0) == "word"

    def test_truncate(self, corruptor):
        assert corruptor.truncate_tokens("a b c d e", 2) == "a b"

    def test_shuffle_preserves_tokens(self, corruptor):
        text = "one two three four five six"
        shuffled = corruptor.shuffle_tokens(text)
        assert sorted(shuffled.split()) == sorted(text.split())


class TestNumbers:
    def test_perturb_preserves_sign(self, corruptor):
        for _ in range(100):
            assert corruptor.perturb_number(10.0, 0.5) >= 0
            assert corruptor.perturb_number(-10.0, 0.5) <= 0

    def test_perturb_mean(self, corruptor):
        draws = [corruptor.perturb_number(100.0, 0.05)
                 for _ in range(3000)]
        assert np.mean(draws) == pytest.approx(100.0, rel=0.01)


class TestChoice:
    def test_choice_from_list(self, corruptor):
        options = ["x", "y", "z"]
        seen = {corruptor.choice(options) for _ in range(100)}
        assert seen == set(options)
