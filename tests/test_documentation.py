"""Documentation quality gates.

The deliverable promises doc comments on every public item; these tests
make that promise executable.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro


def _public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, "repro."):
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


MODULES = list(_public_modules())


@pytest.mark.parametrize("module", MODULES,
                         ids=[m.__name__ for m in MODULES])
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module.__name__} lacks a module docstring"
    )


def _public_members():
    seen = set()
    for module in MODULES:
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", "").startswith("repro"):
                key = (obj.__module__, obj.__qualname__)
                if key not in seen:
                    seen.add(key)
                    yield obj


MEMBERS = list(_public_members())


@pytest.mark.parametrize(
    "obj", MEMBERS,
    ids=[f"{o.__module__}.{o.__qualname__}" for o in MEMBERS],
)
def test_public_item_has_docstring(obj):
    assert inspect.getdoc(obj), (
        f"{obj.__module__}.{obj.__qualname__} lacks a docstring"
    )


def test_public_classes_document_public_methods():
    undocumented = []
    for obj in MEMBERS:
        if not inspect.isclass(obj):
            continue
        for name, member in vars(obj).items():
            if name.startswith("_") or not inspect.isfunction(member):
                continue
            if not inspect.getdoc(member):
                undocumented.append(f"{obj.__qualname__}.{name}")
    assert not undocumented, (
        "public methods without docstrings: " + ", ".join(undocumented)
    )


def test_all_exports_resolve():
    for module in MODULES:
        exported = getattr(module, "__all__", None)
        if exported is None:
            continue
        for name in exported:
            assert hasattr(module, name), (
                f"{module.__name__}.__all__ names missing {name!r}"
            )
