"""FaultyCrowd: the deterministic fault taxonomy.

Covers each fault kind's behaviour (which exception, whether an answer
is consumed), determinism of the per-kind RNG streams (same seed ⇒ same
fault schedule; raising one rate never shifts another kind's schedule),
the hard-outage kill switch, and the checkpoint state round-trip.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.crowd import (
    FAULT_KINDS,
    FaultSpec,
    FaultyCrowd,
    PerfectCrowd,
    fault_stream_seed,
)
from repro.data.pairs import Pair
from repro.exceptions import (
    AnswerTimeoutError,
    ConfigurationError,
    HitExpiredError,
    TransientCrowdError,
)

MATCHES = {Pair("a1", "b1"), Pair("a2", "b2")}
PAIR = Pair("a1", "b1")
OTHER = Pair("a3", "b3")


def make(spec: FaultSpec, seed: int = 0) -> FaultyCrowd:
    """A FaultyCrowd over a perfect oracle for MATCHES."""
    return FaultyCrowd(PerfectCrowd(MATCHES), spec, seed=seed)


def drive(platform: FaultyCrowd, n: int, pair: Pair = PAIR) -> list:
    """Ask ``n`` times, collecting answers or exception types."""
    out = []
    for _ in range(n):
        try:
            out.append(platform.ask(pair))
        except TransientCrowdError as error:
            out.append(type(error))
    return out


class TestFaultSpec:
    def test_defaults_inject_nothing(self):
        faulty = make(FaultSpec())
        answers = drive(faulty, 50)
        assert all(not isinstance(a, type) for a in answers)
        assert faulty.faults_injected == 0
        assert faulty.answers_delivered == 50

    def test_uniform_sets_every_rate(self):
        spec = FaultSpec.uniform(0.25)
        assert spec.timeout_rate == spec.expiry_rate == 0.25
        assert spec.spammer_rate == spec.duplicate_rate == 0.25
        assert spec.outage_rate == 0.25

    def test_uniform_overrides(self):
        spec = FaultSpec.uniform(0.1, outage_rate=0.0, spammer_burst=5)
        assert spec.outage_rate == 0.0
        assert spec.spammer_burst == 5

    @pytest.mark.parametrize("kwargs", [
        {"timeout_rate": -0.1},
        {"expiry_rate": 1.5},
        {"spammer_burst": 0},
        {"outage_length": 0},
        {"hard_outage_after": -1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultSpec(**kwargs)

    def test_to_dict_is_json_compatible(self):
        spec = FaultSpec.uniform(0.1, hard_outage_after=40)
        data = json.loads(json.dumps(spec.to_dict()))
        assert FaultSpec(**data) == spec


class TestTaxonomy:
    def test_timeout_raises_and_consumes_nothing(self):
        faulty = make(FaultSpec(timeout_rate=1.0))
        with pytest.raises(AnswerTimeoutError):
            faulty.ask(PAIR)
        assert faulty.answers_delivered == 0
        assert faulty.counts["timeout"] == 1

    def test_expiry_raises_and_consumes_nothing(self):
        faulty = make(FaultSpec(expiry_rate=1.0))
        with pytest.raises(HitExpiredError):
            faulty.ask(PAIR)
        assert faulty.answers_delivered == 0
        assert faulty.counts["expiry"] == 1

    def test_outage_rejects_for_its_whole_window(self):
        faulty = make(FaultSpec(outage_rate=1.0, outage_length=4))
        for _ in range(4):
            with pytest.raises(TransientCrowdError):
                faulty.ask(PAIR)
        assert faulty.counts["outage"] == 4

    def test_duplicate_redelivers_the_previous_submission(self):
        faulty = make(FaultSpec(duplicate_rate=1.0))
        first = faulty.ask(PAIR)  # nothing cached yet: real answer
        second = faulty.ask(PAIR)
        assert second == first
        assert faulty.counts["duplicate"] == 1
        # Duplicates are delivered (and billed) answers.
        assert faulty.answers_delivered == 2

    def test_duplicate_needs_a_previous_submission(self):
        faulty = make(FaultSpec(duplicate_rate=1.0))
        answer = faulty.ask(OTHER)
        assert answer.pair == OTHER
        assert faulty.counts["duplicate"] == 0

    def test_random_spammer_burst_counts_and_delivers(self):
        spec = FaultSpec(spammer_rate=1.0, spammer_burst=3)
        faulty = make(spec)
        answers = drive(faulty, 3)
        assert faulty.counts["spammer"] == 3
        assert faulty.answers_delivered == 3
        assert all(a.worker_id < 0 for a in answers)

    def test_adversarial_spam_inverts_truth(self):
        spec = FaultSpec(spammer_rate=1.0, spammer_burst=10,
                         adversarial_spam=True)
        faulty = make(spec)
        # PAIR is a true match: the adversary always answers False.
        answers = drive(faulty, 5)
        assert all(a.label is False for a in answers)

    def test_spam_burst_is_finite(self):
        spec = FaultSpec(spammer_rate=0.0, spammer_burst=2)
        faulty = make(spec)
        # Force one burst by hand, then confirm it ends.
        faulty._spam_remaining = 2
        drive(faulty, 2)
        assert faulty.counts["spammer"] == 2
        clean = faulty.ask(PAIR)
        assert clean.worker_id >= 0

    def test_observer_sees_every_fault(self):
        seen = []
        faulty = FaultyCrowd(PerfectCrowd(MATCHES),
                             FaultSpec(timeout_rate=1.0),
                             on_fault=lambda kind, pair: seen.append(
                                 (kind, pair)))
        with pytest.raises(AnswerTimeoutError):
            faulty.ask(PAIR)
        assert seen == [("timeout", PAIR)]


class TestHardOutage:
    def test_goes_dark_after_the_scheduled_answer_count(self):
        faulty = make(FaultSpec(hard_outage_after=3))
        drive(faulty, 3)
        assert faulty.answers_delivered == 3
        with pytest.raises(TransientCrowdError):
            faulty.ask(PAIR)
        with pytest.raises(TransientCrowdError):
            faulty.ask(PAIR)

    def test_hard_outage_consumes_no_randomness(self):
        """The kill switch must not perturb the fault streams.

        A run with the switch armed is bit-identical to one without it,
        up to the kill point — the property the chaos resume sweep
        relies on.
        """
        spec = FaultSpec.uniform(0.2)
        plain = make(spec, seed=5)
        armed = make(FaultSpec.uniform(0.2, hard_outage_after=10), seed=5)
        seq_plain, seq_armed = [], []
        while armed.answers_delivered < 10:
            seq_plain.append(drive(plain, 1)[0])
            seq_armed.append(drive(armed, 1)[0])
        assert seq_plain == seq_armed


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        spec = FaultSpec.uniform(0.15)
        a, b = make(spec, seed=42), make(spec, seed=42)
        assert drive(a, 80) == drive(b, 80)
        assert a.counts == b.counts
        assert a.state_dict() == b.state_dict()

    def test_different_seed_different_schedule(self):
        spec = FaultSpec.uniform(0.15)
        a, b = make(spec, seed=1), make(spec, seed=2)
        assert drive(a, 80) != drive(b, 80)

    def test_streams_are_independent(self):
        """Enabling a later-evaluated kind must not shift an earlier one.

        ``ask`` evaluates timeout before expiry, so adding expiry faults
        cannot change how many timeout draws are made — and with
        independent streams it cannot change their values either.
        """
        with_expiry = make(FaultSpec(timeout_rate=0.2, expiry_rate=0.3),
                           seed=7)
        without = make(FaultSpec(timeout_rate=0.2), seed=7)
        drive(with_expiry, 100)
        drive(without, 100)
        assert with_expiry.counts["timeout"] == without.counts["timeout"]

    def test_stream_seeds_differ_by_kind(self):
        seeds = {fault_stream_seed(0, kind).spawn_key
                 for kind in FAULT_KINDS}
        assert len(seeds) == len(FAULT_KINDS)

    def test_seed_sequence_root_accepted(self):
        root = np.random.SeedSequence(123)
        a = make(FaultSpec.uniform(0.2), seed=123)
        b = FaultyCrowd(PerfectCrowd(MATCHES), FaultSpec.uniform(0.2),
                        seed=root)
        assert drive(a, 40) == drive(b, 40)


class TestStateRoundtrip:
    def test_state_is_json_and_resumes_identically(self):
        spec = FaultSpec.uniform(0.2)
        original = make(spec, seed=9)
        drive(original, 60)
        state = json.loads(json.dumps(original.state_dict()))

        restored = make(spec, seed=9)
        restored.load_state(state)
        assert restored.state_dict() == original.state_dict()
        assert drive(restored, 40) == drive(original, 40)

    def test_state_recurses_into_the_inner_platform(self):
        spec = FaultSpec()
        faulty = make(spec, seed=0)
        drive(faulty, 5)
        state = faulty.state_dict()
        assert "inner" in state  # PerfectCrowd is stateful (rng + count)
