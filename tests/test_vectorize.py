"""Pair vectorization into candidate sets."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.data.pairs import Pair
from repro.data.table import Record
from repro.exceptions import DataError
from repro.features.vectorize import vectorize_pairs


class TestVectorize:
    def test_shape_and_alignment(self, book_tables, book_candidates):
        candidates, library = book_candidates
        assert candidates.features.shape == (9, len(library))
        assert candidates.feature_names == library.names

    def test_matching_pair_scores_high(self, book_candidates):
        candidates, _ = book_candidates
        title_col = candidates.feature_index("title_levenshtein")
        match = candidates.vector(Pair("a0", "b0"))[title_col]
        non_match = candidates.vector(Pair("a0", "b2"))[title_col]
        assert match > non_match

    def test_unknown_record_raises(self, book_tables, book_candidates):
        table_a, table_b = book_tables
        _, library = book_candidates
        with pytest.raises(DataError):
            vectorize_pairs(table_a, table_b, [Pair("ghost", "b0")], library)

    def test_empty_pairs(self, book_tables, book_candidates):
        table_a, table_b = book_tables
        _, library = book_candidates
        empty = vectorize_pairs(table_a, table_b, [], library)
        assert len(empty) == 0
        assert empty.features.shape == (0, len(library))

    def test_missing_values_become_nan(self, book_tables, book_candidates):
        table_a, table_b = book_tables
        _, library = book_candidates
        table_a.add(Record("a9", {"title": None, "author": None,
                                  "pages": None}))
        out = vectorize_pairs(table_a, table_b, [Pair("a9", "b0")], library)
        assert all(math.isnan(v) for v in out.features[0])

    def test_deterministic(self, book_tables, book_candidates):
        table_a, table_b = book_tables
        first, library = book_candidates
        again = vectorize_pairs(table_a, table_b, list(first.pairs), library)
        np.testing.assert_array_equal(first.features, again.features)
