"""The CART decision tree: learning, prediction, NaN routing, paths."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import DataError
from repro.forest.tree import (
    DecisionTree,
    condition_satisfied,
    TreeCondition,
)


def fit_tree(x, y, rng=None, **kwargs) -> DecisionTree:
    tree = DecisionTree(**kwargs)
    tree.fit(np.asarray(x, dtype=float), np.asarray(y, dtype=bool),
             rng=rng or np.random.default_rng(0))
    return tree


class TestFitting:
    def test_perfectly_separable(self):
        x = np.array([[0.1], [0.2], [0.8], [0.9]])
        y = np.array([False, False, True, True])
        tree = fit_tree(x, y)
        np.testing.assert_array_equal(tree.predict(x), y)
        assert tree.n_leaves == 2

    def test_pure_node_stays_leaf(self):
        x = np.array([[0.0], [1.0], [2.0]])
        y = np.array([True, True, True])
        tree = fit_tree(x, y)
        assert tree.n_leaves == 1
        assert tree.predict(np.array([[5.0]]))[0]

    def test_max_depth_respected(self):
        rng = np.random.default_rng(1)
        x = rng.random((200, 4))
        y = rng.random(200) > 0.5
        tree = fit_tree(x, y, max_depth=3)
        assert tree.depth <= 3

    def test_min_samples_leaf(self):
        rng = np.random.default_rng(1)
        x = rng.random((60, 3))
        y = x[:, 0] > 0.5
        tree = fit_tree(x, y, min_samples_leaf=10)
        for node in tree.nodes:
            if node.is_leaf:
                assert node.n_total >= 10 or tree.n_leaves == 1

    def test_constant_feature_unsplittable(self):
        x = np.ones((10, 1))
        y = np.array([True] * 5 + [False] * 5)
        tree = fit_tree(x, y)
        assert tree.n_leaves == 1

    def test_empty_input_rejected(self):
        with pytest.raises(DataError):
            fit_tree(np.empty((0, 2)), np.empty(0, dtype=bool))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DataError):
            fit_tree(np.zeros((3, 2)), np.zeros(4, dtype=bool))

    def test_one_dim_x_rejected(self):
        with pytest.raises(DataError):
            fit_tree(np.zeros(3), np.zeros(3, dtype=bool))


class TestPrediction:
    def test_predict_before_fit_raises(self):
        with pytest.raises(DataError):
            DecisionTree().predict(np.zeros((1, 1)))

    def test_wrong_width_raises(self):
        tree = fit_tree(np.array([[0.0], [1.0]]), [False, True])
        with pytest.raises(DataError):
            tree.predict(np.zeros((1, 2)))

    def test_nan_routing_consistent(self):
        # NaNs must go to one fixed side of every split.
        rng = np.random.default_rng(3)
        x = rng.random((100, 2))
        y = x[:, 0] > 0.5
        tree = fit_tree(x, y)
        probe = np.array([[np.nan, 0.3]])
        first = tree.predict(probe)[0]
        for _ in range(5):
            assert tree.predict(probe)[0] == first

    def test_training_with_nans(self):
        x = np.array([[0.1], [0.2], [np.nan], [0.8], [0.9], [np.nan]])
        y = np.array([False, False, False, True, True, True])
        tree = fit_tree(x, y)
        # Non-NaN extremes must still classify correctly.
        assert not tree.predict(np.array([[0.0]]))[0]
        assert tree.predict(np.array([[1.0]]))[0]


class TestPaths:
    def test_paths_partition_prediction(self):
        """Every example satisfies exactly one root-to-leaf path, and that
        path's label equals the tree's prediction."""
        rng = np.random.default_rng(5)
        x = rng.random((150, 3))
        x[::11, 1] = np.nan
        y = (np.nan_to_num(x[:, 0]) + np.nan_to_num(x[:, 1])) > 1.0
        tree = fit_tree(x, y)
        paths = list(tree.paths())
        assert len(paths) == tree.n_leaves

        predictions = tree.predict(x)
        hits = np.zeros(len(x), dtype=int)
        for path in paths:
            mask = np.ones(len(x), dtype=bool)
            for condition in path.conditions:
                mask &= condition_satisfied(condition, x[:, condition.feature])
            hits += mask
            assert np.all(predictions[mask] == path.label)
        assert np.all(hits == 1)

    def test_single_leaf_tree_has_empty_path(self):
        tree = fit_tree(np.ones((5, 1)), [True] * 5)
        paths = list(tree.paths())
        assert len(paths) == 1
        assert paths[0].conditions == ()
        assert paths[0].label is True

    def test_path_counts_match_training(self):
        x = np.array([[0.1], [0.2], [0.8], [0.9]])
        y = np.array([False, False, True, True])
        tree = fit_tree(x, y)
        total = sum(path.n_total for path in tree.paths())
        assert total == 4


class TestConditionSatisfied:
    def test_le_and_gt(self):
        values = np.array([0.2, 0.8, np.nan])
        le = TreeCondition(0, 0.5, le=True, nan_satisfies=False)
        gt = TreeCondition(0, 0.5, le=False, nan_satisfies=True)
        np.testing.assert_array_equal(
            condition_satisfied(le, values), [True, False, False]
        )
        np.testing.assert_array_equal(
            condition_satisfied(gt, values), [False, True, True]
        )


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_fit_predict_reaches_reasonable_accuracy(seed):
    """Trees should learn an axis-aligned concept on random data."""
    rng = np.random.default_rng(seed)
    x = rng.random((120, 3))
    y = x[:, 1] > 0.6
    tree = fit_tree(x, y, rng=rng)
    assert (tree.predict(x) == y).mean() >= 0.95
