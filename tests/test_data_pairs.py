"""CandidateSet: the featurized pair container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.pairs import CandidateSet, Pair
from repro.exceptions import DataError


@pytest.fixture
def candidates() -> CandidateSet:
    pairs = [Pair("a0", "b0"), Pair("a0", "b1"), Pair("a1", "b0")]
    features = np.array([[0.1, 0.2], [0.3, 0.4], [0.5, 0.6]])
    return CandidateSet(pairs, features, ["f0", "f1"])


class TestConstruction:
    def test_shape_mismatch_rows(self):
        with pytest.raises(DataError):
            CandidateSet([Pair("a", "b")], np.zeros((2, 1)), ["f0"])

    def test_shape_mismatch_columns(self):
        with pytest.raises(DataError):
            CandidateSet([Pair("a", "b")], np.zeros((1, 2)), ["f0"])

    def test_duplicate_pairs_rejected(self):
        with pytest.raises(DataError):
            CandidateSet([Pair("a", "b"), Pair("a", "b")],
                         np.zeros((2, 1)), ["f0"])

    def test_one_dim_matrix_rejected(self):
        with pytest.raises(DataError):
            CandidateSet([Pair("a", "b")], np.zeros(3), ["f0"])

    def test_empty(self):
        empty = CandidateSet.empty(["f0", "f1"])
        assert len(empty) == 0
        assert empty.feature_names == ("f0", "f1")

    def test_features_are_read_only(self, candidates):
        with pytest.raises(ValueError):
            candidates.features[0, 0] = 99.0


class TestAccess:
    def test_index_and_vector(self, candidates):
        assert candidates.index_of(Pair("a0", "b1")) == 1
        np.testing.assert_array_equal(
            candidates.vector(Pair("a0", "b1")), [0.3, 0.4]
        )

    def test_unknown_pair_raises(self, candidates):
        with pytest.raises(DataError):
            candidates.index_of(Pair("zz", "zz"))

    def test_feature_index(self, candidates):
        assert candidates.feature_index("f1") == 1
        with pytest.raises(DataError):
            candidates.feature_index("nope")

    def test_contains_and_iter(self, candidates):
        assert Pair("a1", "b0") in candidates
        assert list(candidates) == list(candidates.pairs)


class TestSubsetting:
    def test_subset_by_indices(self, candidates):
        sub = candidates.subset([2, 0])
        assert sub.pairs == (Pair("a1", "b0"), Pair("a0", "b0"))
        np.testing.assert_array_equal(sub.features[0], [0.5, 0.6])

    def test_subset_by_pairs(self, candidates):
        sub = candidates.subset_pairs([Pair("a0", "b1")])
        assert len(sub) == 1
        assert sub.pairs[0] == Pair("a0", "b1")

    def test_without(self, candidates):
        sub = candidates.without([Pair("a0", "b0")])
        assert len(sub) == 2
        assert Pair("a0", "b0") not in sub

    def test_split_partitions(self, candidates):
        first, rest = candidates.split([1])
        assert first.pairs == (Pair("a0", "b1"),)
        assert len(rest) == 2
        assert Pair("a0", "b1") not in rest

    def test_split_out_of_range(self, candidates):
        with pytest.raises(DataError):
            candidates.split([99])

    def test_concat(self, candidates):
        other = CandidateSet([Pair("a9", "b9")],
                             np.array([[9.0, 9.0]]), ["f0", "f1"])
        combined = candidates.concat(other)
        assert len(combined) == 4
        assert combined.pairs[-1] == Pair("a9", "b9")

    def test_concat_feature_mismatch(self, candidates):
        other = CandidateSet([Pair("a9", "b9")],
                             np.array([[9.0]]), ["g0"])
        with pytest.raises(DataError):
            candidates.concat(other)
