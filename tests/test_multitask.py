"""The multi-category batch runner (Example 3.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.multitask import BatchOutcome, EMTask, MultiTaskRunner
from repro.crowd.base import CrowdPlatform, WorkerAnswer
from repro.data.pairs import Pair
from repro.exceptions import ConfigurationError, DataError
from repro.synth.restaurants import generate_restaurants


class RoutingCrowd(CrowdPlatform):
    """A perfect crowd that answers for several tasks' gold sets."""

    def __init__(self, gold_by_task: dict[str, set[Pair]]) -> None:
        self._matches = set().union(*gold_by_task.values())
        self.questions_asked = 0

    def ask(self, pair: Pair) -> WorkerAnswer:
        self.questions_asked += 1
        return WorkerAnswer(pair, Pair(*pair) in self._matches,
                            worker_id=self.questions_asked)


def make_tasks(n: int = 2) -> tuple[list[EMTask], dict[str, set[Pair]]]:
    tasks, gold = [], {}
    for i in range(n):
        dataset = generate_restaurants(n_a=40, n_b=30, n_matches=10,
                                       seed=20 + i)
        task = EMTask(
            name=f"category_{i}",
            table_a=dataset.table_a,
            table_b=dataset.table_b,
            seed_labels=dataset.seed_labels,
        )
        tasks.append(task)
        gold[task.name] = set(dataset.matches)
    return tasks, gold


@pytest.fixture
def runner(fast_config):
    def build(gold):
        return MultiTaskRunner(fast_config, RoutingCrowd(gold), seed=1)
    return build


class TestBatchRun:
    def test_all_tasks_produce_results(self, runner):
        tasks, gold = make_tasks(3)
        batch = runner(gold).run(tasks, mode="one_iteration")
        assert len(batch.outcomes) == 3
        for outcome in batch.outcomes:
            found = outcome.predicted_matches & gold[outcome.task.name]
            assert len(found) >= 0.6 * len(gold[outcome.task.name])

    def test_aggregate_accounting(self, runner):
        tasks, gold = make_tasks(2)
        batch = runner(gold).run(tasks, mode="one_iteration")
        assert batch.total_dollars == pytest.approx(sum(
            outcome.dollars for outcome in batch.outcomes
        ))
        assert batch.total_pairs_labeled > 0
        assert batch.total_matches > 0

    def test_by_name_lookup(self, runner):
        tasks, gold = make_tasks(2)
        batch = runner(gold).run(tasks, mode="one_iteration")
        assert batch.by_name("category_1").task is tasks[1]
        with pytest.raises(DataError):
            batch.by_name("nope")

    def test_budget_split_and_cap(self, runner):
        tasks, gold = make_tasks(2)
        batch = runner(gold).run(tasks, total_budget=6.0,
                                 mode="one_iteration")
        # No task may blow the overall cap.
        assert batch.total_dollars <= 6.0 + 0.25

    def test_duplicate_names_rejected(self, runner):
        tasks, gold = make_tasks(1)
        with pytest.raises(DataError):
            runner(gold).run(tasks + tasks)

    def test_empty_batch_rejected(self, runner):
        with pytest.raises(DataError):
            runner({"x": set()}).run([])

    def test_bad_budget_rejected(self, runner):
        tasks, gold = make_tasks(1)
        with pytest.raises(ConfigurationError):
            runner(gold).run(tasks, total_budget=0.0)


class TestEMTask:
    def test_cartesian(self):
        tasks, _ = make_tasks(1)
        assert tasks[0].cartesian == 40 * 30

    def test_empty_name_rejected(self):
        tasks, _ = make_tasks(1)
        with pytest.raises(DataError):
            EMTask(name="", table_a=tasks[0].table_a,
                   table_b=tasks[0].table_b,
                   seed_labels=tasks[0].seed_labels)


def test_batch_outcome_empty_totals():
    batch = BatchOutcome()
    assert batch.total_dollars == 0.0
    assert batch.total_matches == 0
