"""The matcher's stopping rules (Section 5.3, Figure 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import MatcherConfig
from repro.core.stopping import ConfidenceMonitor, smooth
from repro.exceptions import ConfigurationError

CFG = MatcherConfig(smoothing_window=5, epsilon=0.01,
                    n_converged=10, n_high=3, n_degrade=5)


def feed(monitor: ConfidenceMonitor, values) -> list:
    decisions = []
    for value in values:
        decisions.append(monitor.add(value))
    return decisions


class TestSmooth:
    def test_window_one_identity(self):
        values = [0.1, 0.9, 0.5]
        assert smooth(values, 1) == values

    def test_centered_average(self):
        out = smooth([0.0, 3.0, 6.0], 3)
        assert out[1] == pytest.approx(3.0)

    def test_boundaries_use_available_neighbours(self):
        out = smooth([0.0, 3.0, 6.0], 3)
        assert out[0] == pytest.approx(1.5)
        assert out[2] == pytest.approx(4.5)

    def test_constant_series_unchanged(self):
        assert smooth([0.7] * 10, 5) == pytest.approx([0.7] * 10)

    def test_even_window_rejected(self):
        with pytest.raises(ConfigurationError):
            smooth([1.0], 2)

    def test_same_length(self):
        assert len(smooth(list(np.linspace(0, 1, 37)), 5)) == 37


class TestNearAbsolute:
    def test_fires_after_n_high(self):
        monitor = ConfidenceMonitor(CFG)
        decisions = feed(monitor, [0.999] * 3)
        assert decisions[-1] is not None
        assert decisions[-1].reason == "near_absolute"
        assert decisions[-1].rollback_index == 2

    def test_not_before_n_high(self):
        monitor = ConfidenceMonitor(CFG)
        decisions = feed(monitor, [0.999] * 2)
        assert all(d is None for d in decisions)

    def test_requires_all_high(self):
        monitor = ConfidenceMonitor(CFG)
        decisions = feed(monitor, [0.999, 0.5, 0.999])
        assert decisions[-1] is None


class TestConverged:
    def test_flat_series_converges(self):
        monitor = ConfidenceMonitor(CFG)
        decisions = feed(monitor, [0.7] * 10)
        assert decisions[-1] is not None
        assert decisions[-1].reason == "converged"
        assert decisions[-1].rollback_index == 9

    def test_band_of_two_epsilon_allowed(self):
        monitor = ConfidenceMonitor(CFG)
        wobble = [0.7 + 0.009 * (-1) ** i for i in range(10)]
        decisions = feed(monitor, wobble)
        assert decisions[-1] is not None

    def test_trending_series_does_not_converge(self):
        monitor = ConfidenceMonitor(CFG)
        rising = list(np.linspace(0.3, 0.8, 10))
        decisions = feed(monitor, rising)
        assert all(d is None for d in decisions)


class TestDegrading:
    def test_peak_then_decline_detected(self):
        monitor = ConfidenceMonitor(CFG)
        series = [0.5, 0.6, 0.7, 0.8, 0.9, 0.6, 0.5, 0.45, 0.43, 0.41]
        decisions = feed(monitor, series)
        final = decisions[-1]
        assert final is not None
        assert final.reason == "degrading"
        # Rollback points inside the earlier window, at its smoothed peak.
        assert 0 <= final.rollback_index < len(series) - CFG.n_degrade

    def test_needs_two_full_windows(self):
        monitor = ConfidenceMonitor(CFG)
        decisions = feed(monitor, [0.9, 0.8, 0.7, 0.6, 0.5])
        assert all(d is None for d in decisions)

    def test_small_dip_within_epsilon_ignored(self):
        config = MatcherConfig(smoothing_window=1, epsilon=0.05,
                               n_converged=100, n_high=3, n_degrade=3)
        monitor = ConfidenceMonitor(config)
        series = [0.70, 0.71, 0.72, 0.70, 0.69, 0.70]
        decisions = feed(monitor, series)
        assert all(d is None for d in decisions)


class TestSmoothingSuppressesNoise:
    def test_noisy_peak_does_not_trigger_degrade(self):
        """A single-spike series must not fire the degrading pattern once
        smoothed (the paper's motivation for the smoothing window)."""
        # A 0.25 spike smooths to 0.05 over a width-5 window, so an
        # epsilon between those two amplitudes separates the monitors.
        config = MatcherConfig(smoothing_window=5, epsilon=0.06,
                               n_converged=100, n_high=2, n_degrade=4)
        raw = [0.70] * 4 + [0.95] + [0.70] * 7  # one spike
        unsmoothed_config = MatcherConfig(
            smoothing_window=1, epsilon=0.06,
            n_converged=100, n_high=2, n_degrade=4,
        )
        spiky = ConfidenceMonitor(unsmoothed_config)
        smooth_monitor = ConfidenceMonitor(config)
        spiky_decisions = feed(spiky, raw)
        smooth_decisions = feed(smooth_monitor, raw)
        assert any(
            d is not None and d.reason == "degrading"
            for d in spiky_decisions
        )
        assert not any(
            d is not None and d.reason == "degrading"
            for d in smooth_decisions
        )


class TestMonitorViews:
    def test_raw_is_copy(self):
        monitor = ConfidenceMonitor(CFG)
        monitor.add(0.5)
        raw = monitor.raw
        raw.append(99.0)
        assert monitor.raw == [0.5]

    def test_smoothed_length_matches(self):
        monitor = ConfidenceMonitor(CFG)
        feed(monitor, [0.1, 0.2, 0.3])
        assert len(monitor.smoothed()) == 3
