"""Scalar-vs-batched feature parity: the batch engine's core contract.

``Feature.batch_value`` must reproduce the per-pair ``Feature.value``
loop bit for bit — including NaN positions for missing values — on every
measure and every dataset family.  The scalar path is the parity oracle.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.data.pairs import Pair
from repro.data.table import AttrType, Record, Schema, Table
from repro.exceptions import FeatureError
from repro.features.library import Feature, build_feature_library
from repro.features.vectorize import vectorize_pairs
from repro.synth.citations import generate_citations
from repro.synth.products import generate_products
from repro.synth.restaurants import generate_restaurants
from repro.synth.songs import generate_songs

_GENERATORS = {
    "restaurants": generate_restaurants,
    "citations": generate_citations,
    "products": generate_products,
    "songs": generate_songs,
}


def _random_pairs(table_a: Table, table_b: Table, count: int,
                  seed: int) -> list[Pair]:
    """``count`` distinct random pairs of the two tables."""
    a_ids = [record.record_id for record in table_a]
    b_ids = [record.record_id for record in table_b]
    total = len(a_ids) * len(b_ids)
    rng = np.random.default_rng(seed)
    flat = rng.choice(total, size=min(count, total), replace=False)
    return [
        Pair(a_ids[index // len(b_ids)], b_ids[index % len(b_ids)])
        for index in flat
    ]


def _assert_parity(table_a: Table, table_b: Table, pairs, library) -> None:
    scalar = vectorize_pairs(table_a, table_b, pairs, library,
                             engine="scalar").features
    batched = vectorize_pairs(table_a, table_b, pairs, library,
                              engine="batched").features
    assert np.array_equal(scalar, batched, equal_nan=True)


def test_parity_suite_covers_every_library_measure():
    """The datasets above exercise the full measure registry.

    The parity tests are only as strong as the measures the four
    synthetic schemas generate: if a library measure never appears in
    any extended feature library, batched/scalar parity for it is
    untested.  Assert the union of generated measures equals the
    registry backing ``build_feature_library`` (the same registry the
    CL003 kernel-parity lint rule diffs against the batched kernels).
    """
    from repro.features.library import _MEASURE_COSTS

    generated: set[str] = set()
    for generate in _GENERATORS.values():
        dataset = generate(n_a=12, n_b=10, n_matches=4, seed=3)
        library = build_feature_library(dataset.table_a, dataset.table_b,
                                        extended=True)
        generated.update(feature.measure for feature in library)
    missing = set(_MEASURE_COSTS) - generated
    assert not missing, (
        f"library measures never exercised by the parity suite: "
        f"{sorted(missing)}"
    )


class TestDatasetParity:
    """Exact parity across every synthetic dataset family and measure."""

    @pytest.mark.parametrize("extended", [False, True])
    @pytest.mark.parametrize("name", sorted(_GENERATORS))
    def test_batched_equals_scalar(self, name, extended):
        dataset = _GENERATORS[name](n_a=40, n_b=30, n_matches=10, seed=3)
        library = build_feature_library(dataset.table_a, dataset.table_b,
                                        extended=extended)
        pairs = _random_pairs(dataset.table_a, dataset.table_b, 400, seed=5)
        _assert_parity(dataset.table_a, dataset.table_b, pairs, library)

    def test_repeat_call_uses_warm_cache(self):
        """A second batched run (warm per-table caches) stays identical."""
        dataset = generate_restaurants(n_a=30, n_b=20, n_matches=8, seed=9)
        library = build_feature_library(dataset.table_a, dataset.table_b)
        pairs = _random_pairs(dataset.table_a, dataset.table_b, 200, seed=1)
        first = vectorize_pairs(dataset.table_a, dataset.table_b, pairs,
                                library).features
        second = vectorize_pairs(dataset.table_a, dataset.table_b, pairs,
                                 library).features
        np.testing.assert_array_equal(first, second)


class TestMissingValues:
    def test_nan_positions_match_scalar(self, book_tables):
        """Missing values NaN out in exactly the scalar positions —
        including for records added after the table cache was warmed."""
        table_a, table_b = book_tables
        library = build_feature_library(table_a, table_b)
        pairs = [
            Pair(a.record_id, b.record_id) for a in table_a for b in table_b
        ]
        # Warm the per-table caches, then grow the table.
        vectorize_pairs(table_a, table_b, pairs, library)
        table_a.add(Record("a9", {"title": None, "author": "late arrival",
                                  "pages": None}))
        pairs += [Pair("a9", b.record_id) for b in table_b]
        _assert_parity(table_a, table_b, pairs, library)
        out = vectorize_pairs(table_a, table_b, pairs, library)
        title_col = out.feature_index("title_levenshtein")
        assert math.isnan(out.features[-1, title_col])


class TestFallbackAndErrors:
    def test_feature_without_kernel_falls_back_to_scalar(self, book_tables):
        table_a, table_b = book_tables
        feature = Feature(
            name="title_length_parity", attribute="title",
            measure="length_parity", cost=1.0,
            compute=lambda a, b: float(len(str(a)) == len(str(b))),
        )
        assert feature.batch_compute is None
        records_a = list(table_a)
        records_b = list(table_b)
        expected = [feature.value(a, b)
                    for a, b in zip(records_a, records_b)]
        np.testing.assert_array_equal(
            feature.batch_value(records_a, records_b), expected
        )

    def test_mismatched_lengths_rejected(self, book_tables):
        table_a, table_b = book_tables
        library = build_feature_library(table_a, table_b)
        feature = library.features[0]
        with pytest.raises(FeatureError):
            feature.batch_value(list(table_a), list(table_b)[:1])


_VALUE_TEXT = st.one_of(
    st.none(),
    st.text(alphabet="abc XY1.-", max_size=12),
)
_VALUE_NUM = st.one_of(
    st.none(),
    st.integers(min_value=-5, max_value=5).map(float),
)
_ROWS = st.lists(st.tuples(_VALUE_TEXT, _VALUE_TEXT, _VALUE_NUM),
                 min_size=1, max_size=5)


class TestPropertyParity:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(rows_a=_ROWS, rows_b=_ROWS)
    def test_arbitrary_values(self, rows_a, rows_b):
        """Parity holds on arbitrary (messy, partly missing) tables."""
        schema = Schema.from_pairs([
            ("code", AttrType.STRING),
            ("blurb", AttrType.TEXT),
            ("amount", AttrType.NUMERIC),
        ])

        def build(name, rows):
            return Table(name, schema, [
                Record(f"{name}{i}",
                       {"code": code, "blurb": blurb, "amount": amount})
                for i, (code, blurb, amount) in enumerate(rows)
            ])

        table_a = build("a", rows_a)
        table_b = build("b", rows_b)
        library = build_feature_library(table_a, table_b, extended=True)
        pairs = [
            Pair(a.record_id, b.record_id) for a in table_a for b in table_b
        ]
        _assert_parity(table_a, table_b, pairs, library)
