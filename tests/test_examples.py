"""Example scripts: syntax and structural checks.

Full example runs are exercised manually (they simulate minutes of
crowdsourcing); these tests keep them importable and honest — every
example must compile, carry a run instruction, and expose a main().
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLE_FILES) >= 3, "the paper repro promises >=3 examples"


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
)
class TestEveryExample:
    def test_compiles(self, path):
        ast.parse(path.read_text(), filename=str(path))

    def test_has_docstring_with_run_instruction(self, path):
        tree = ast.parse(path.read_text())
        docstring = ast.get_docstring(tree)
        assert docstring, f"{path.name} needs a module docstring"
        assert "Run:" in docstring or "python examples/" in docstring

    def test_has_main_guard(self, path):
        source = path.read_text()
        assert 'if __name__ == "__main__":' in source

    def test_uses_only_public_api(self, path):
        """Examples must demonstrate the public surface: no reaching into
        single-underscore library internals.  Private attributes on
        ``self`` are fine — examples may define their own classes."""
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if not isinstance(node, ast.Attribute):
                continue
            if (isinstance(node.value, ast.Name)
                    and node.value.id == "self"):
                continue
            assert not (node.attr.startswith("_")
                        and not node.attr.startswith("__")), (
                f"{path.name} uses private attribute {node.attr}"
            )

    def test_seeded_rngs_only(self, path):
        """Examples must be reproducible: every default_rng call takes an
        explicit seed argument."""
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "default_rng"):
                assert node.args or node.keywords, (
                    f"{path.name} calls default_rng() without a seed"
                )
