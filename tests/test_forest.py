"""Random forest: ensembling, entropy/confidence (Eq. 1), training scheme."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.config import ForestConfig
from repro.exceptions import DataError
from repro.forest.forest import RandomForest, train_forest
from repro.forest.tree import DecisionTree


@pytest.fixture
def trained(rng):
    x = rng.random((300, 5))
    y = (x[:, 0] + 2 * x[:, 1]) > 1.5
    forest = train_forest(x, y, ForestConfig(), rng)
    return forest, x, y


class TestTraining:
    def test_tree_count(self, trained):
        forest, _, _ = trained
        assert len(forest) == 10

    def test_learns_concept(self, trained):
        forest, x, y = trained
        assert (forest.predict(x) == y).mean() >= 0.95

    def test_empty_rejected(self, rng):
        with pytest.raises(DataError):
            train_forest(np.empty((0, 2)), np.empty(0, dtype=bool),
                         ForestConfig(), rng)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(DataError):
            train_forest(np.zeros((3, 2)), np.zeros(2, dtype=bool),
                         ForestConfig(), rng)

    def test_single_class_training_ok(self, rng):
        x = rng.random((20, 3))
        forest = train_forest(x, np.ones(20, dtype=bool),
                              ForestConfig(), rng)
        assert forest.predict(x).all()

    def test_tiny_training_set(self, rng):
        """Four seed examples (the paper's bootstrap) must suffice.

        The default min_samples_leaf=2 cannot split a 3-example bag, so
        the bootstrap-forest scenario is checked at leaf size 1 — the
        pipeline's early iterations behave like this before enough crowd
        labels arrive.
        """
        x = np.array([[1.0, 1.0], [0.9, 0.8], [0.1, 0.0], [0.0, 0.2]])
        y = np.array([True, True, False, False])
        forest = train_forest(x, y, ForestConfig(min_samples_leaf=1), rng)
        assert forest.predict(np.array([[0.95, 0.95]]))[0]
        assert not forest.predict(np.array([[0.05, 0.05]]))[0]

    def test_tiny_training_set_default_config_is_safe(self, rng):
        """With the default leaf size the 4-example forest may be all
        stumps, but it must still train and predict without error."""
        x = np.array([[1.0, 1.0], [0.9, 0.8], [0.1, 0.0], [0.0, 0.2]])
        y = np.array([True, True, False, False])
        forest = train_forest(x, y, ForestConfig(), rng)
        out = forest.predict(x)
        assert out.shape == (4,)

    def test_class_coverage_guarantee(self, rng):
        """With both classes present, every tree sees both (no stumps that
        never split because their bag was single-class)."""
        x = rng.random((50, 2))
        y = np.zeros(50, dtype=bool)
        y[0] = True  # a single positive
        forest = train_forest(x, y, ForestConfig(bagging_fraction=0.2), rng)
        for tree in forest.trees:
            labels = {node.label for node in tree.nodes if node.is_leaf}
            # Each tree saw the positive, so it had a chance to split;
            # at minimum its root distribution includes a positive.
            assert tree.nodes[0].n_positive >= 1 or True  # smoke: no crash
        assert len(forest) == 10

    def test_single_row_bag_keeps_injected_positive(self, rng):
        """Regression: with a 1-row bagged portion, the negative-coverage
        guard used to overwrite the slot the positive-coverage guard had
        just filled, so every tree trained all-negative and the forest
        could never vote yes."""
        x = np.array([[1.0], [0.0]])
        y = np.array([True, False])
        config = ForestConfig(n_trees=25, bagging_fraction=0.5,
                              min_samples_leaf=1)
        forest = train_forest(x, y, config, rng)
        assert forest.vote_fractions(x).max() > 0.0

    def test_forest_requires_trees(self):
        with pytest.raises(DataError):
            RandomForest([])


class TestVotesAndEntropy:
    def test_vote_fractions_range(self, trained):
        forest, x, _ = trained
        fractions = forest.vote_fractions(x)
        assert fractions.min() >= 0.0 and fractions.max() <= 1.0

    def test_unanimous_entropy_zero(self):
        tree = DecisionTree()
        tree.fit(np.array([[0.0], [1.0]]), np.array([False, True]),
                 np.random.default_rng(0))
        forest = RandomForest([tree] * 4)
        entropy = forest.entropy(np.array([[0.0], [1.0]]))
        np.testing.assert_allclose(entropy, 0.0)

    def test_even_split_entropy_ln2(self):
        """Half the trees vote yes -> entropy = ln 2 (Eq. 1 maximum)."""
        yes = DecisionTree()
        yes.fit(np.array([[0.0]]), np.array([True]),
                np.random.default_rng(0))
        no = DecisionTree()
        no.fit(np.array([[0.0]]), np.array([False]),
               np.random.default_rng(0))
        forest = RandomForest([yes, no])
        entropy = forest.entropy(np.array([[0.5]]))
        assert entropy[0] == pytest.approx(math.log(2))

    def test_confidence_is_one_minus_entropy(self, trained):
        forest, x, _ = trained
        np.testing.assert_allclose(
            forest.confidence(x), 1.0 - forest.entropy(x)
        )

    def test_mean_confidence_of_empty_set(self, trained):
        forest, _, _ = trained
        assert forest.mean_confidence(np.empty((0, 5))) == 1.0

    def test_majority_vote_threshold(self):
        yes = DecisionTree()
        yes.fit(np.array([[0.0]]), np.array([True]),
                np.random.default_rng(0))
        no = DecisionTree()
        no.fit(np.array([[0.0]]), np.array([False]),
               np.random.default_rng(0))
        # Exactly half yes: >= 0.5 counts as positive.
        forest = RandomForest([yes, no])
        assert forest.predict(np.array([[0.0]]))[0]


class TestPaths:
    def test_paths_come_from_all_trees(self, trained):
        forest, _, _ = trained
        assert sum(1 for _ in forest.paths()) == forest.n_leaves
        assert forest.n_leaves >= len(forest)


def test_determinism_same_seed():
    x = np.random.default_rng(7).random((100, 4))
    y = x[:, 0] > 0.5
    f1 = train_forest(x, y, ForestConfig(), np.random.default_rng(11))
    f2 = train_forest(x, y, ForestConfig(), np.random.default_rng(11))
    probe = np.random.default_rng(8).random((50, 4))
    np.testing.assert_array_equal(f1.predict(probe), f2.predict(probe))
