"""Match explanations (the practitioner-facing introspection layer)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ForestConfig
from repro.data.pairs import CandidateSet, Pair
from repro.evaluation.explain import explain_errors, explain_pair
from repro.forest.forest import train_forest


@pytest.fixture(scope="module")
def world():
    rng = np.random.default_rng(4)
    features = rng.random((500, 3))
    labels = (features[:, 0] > 0.6) & (features[:, 1] > 0.4)
    pairs = [Pair(f"a{i}", f"b{i}") for i in range(500)]
    candidates = CandidateSet(pairs, features,
                              ["name_sim", "price_sim", "noise"])
    forest = train_forest(features, labels, ForestConfig(), rng)
    gold = {pairs[i] for i in np.flatnonzero(labels)}
    return forest, candidates, labels, gold


class TestExplainPair:
    def test_votes_match_prediction(self, world):
        forest, candidates, labels, _ = world
        for row in (0, 100, 499):
            pair = candidates.pairs[row]
            explanation = explain_pair(forest, candidates, pair)
            predicted = forest.predict(
                candidates.features[row:row + 1]
            )[0]
            assert explanation.predicted_match == predicted
            assert (explanation.votes_for + explanation.votes_against
                    == len(forest))

    def test_paths_actually_cover_the_pair(self, world):
        forest, candidates, _, _ = world
        pair = candidates.pairs[42]
        vector = candidates.features[42:43]
        explanation = explain_pair(forest, candidates, pair)
        for vote in explanation.tree_votes:
            assert vote.path_rule.applies(vector)[0]
            assert vote.path_rule.predicts_match == vote.label

    def test_signal_features_dominate_usage(self, world):
        forest, candidates, _, _ = world
        pair = candidates.pairs[7]
        explanation = explain_pair(forest, candidates, pair)
        usage = dict(explanation.feature_usage)
        assert usage.get("name_sim", 0) >= usage.get("noise", 0)

    def test_confidence_matches_forest(self, world):
        forest, candidates, _, _ = world
        pair = candidates.pairs[3]
        explanation = explain_pair(forest, candidates, pair)
        expected = forest.confidence(candidates.features[3:4])[0]
        assert explanation.confidence == pytest.approx(float(expected))

    def test_text_rendering(self, world):
        forest, candidates, _, _ = world
        explanation = explain_pair(forest, candidates,
                                   candidates.pairs[0])
        text = explanation.to_text()
        assert "a0 vs b0" in text
        assert "tree 0" in text
        assert ("MATCH" in text or "NO MATCH" in text)

    def test_unknown_pair_raises(self, world):
        forest, candidates, _, _ = world
        from repro.exceptions import DataError
        with pytest.raises(DataError):
            explain_pair(forest, candidates, Pair("zz", "zz"))


class TestExplainErrors:
    def test_buckets_are_real_mistakes(self, world):
        forest, candidates, labels, gold = world
        predictions = forest.predict(candidates.features)
        report = explain_errors(forest, candidates, predictions, gold,
                                limit=5)
        for explanation in report["false_positives"]:
            assert explanation.pair not in gold
            assert explanation.predicted_match
        for explanation in report["false_negatives"]:
            assert explanation.pair in gold
            assert not explanation.predicted_match

    def test_limit_respected(self, world):
        forest, candidates, labels, gold = world
        # Predict everything positive: lots of false positives.
        predictions = np.ones(len(candidates), dtype=bool)
        report = explain_errors(forest, candidates, predictions, gold,
                                limit=3)
        assert len(report["false_positives"]) <= 3

    def test_perfect_predictions_empty_report(self, world):
        forest, candidates, labels, gold = world
        report = explain_errors(forest, candidates, labels, gold)
        assert report["false_positives"] == []
        assert report["false_negatives"] == []
