"""CSV round-tripping of tables."""

from __future__ import annotations

import pytest

from repro.data.io import read_csv_table, write_csv_table
from repro.data.table import AttrType, Record, Schema, Table
from repro.exceptions import DataError

SCHEMA = Schema.from_pairs([
    ("name", AttrType.STRING),
    ("price", AttrType.NUMERIC),
])


def test_round_trip(tmp_path):
    table = Table("t", SCHEMA, [
        Record("r1", {"name": "widget, deluxe", "price": 9.5}),
        Record("r2", {"name": None, "price": None}),
    ])
    path = tmp_path / "t.csv"
    write_csv_table(table, path)
    loaded = read_csv_table(path, "t", SCHEMA)
    assert len(loaded) == 2
    assert loaded["r1"].get("name") == "widget, deluxe"
    assert loaded["r1"].get("price") == 9.5
    assert loaded["r2"].get("name") is None
    assert loaded["r2"].get("price") is None


def test_missing_id_column(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("name,price\nwidget,3\n")
    with pytest.raises(DataError, match="id"):
        read_csv_table(path, "t", SCHEMA)


def test_missing_schema_column(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("id,name\nr1,widget\n")
    with pytest.raises(DataError, match="price"):
        read_csv_table(path, "t", SCHEMA)


def test_bad_number(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("id,name,price\nr1,widget,cheap\n")
    with pytest.raises(DataError, match="number"):
        read_csv_table(path, "t", SCHEMA)


def test_empty_id(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("id,name,price\n ,widget,3\n")
    with pytest.raises(DataError, match="empty record id"):
        read_csv_table(path, "t", SCHEMA)


def test_empty_file(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(DataError):
        read_csv_table(path, "t", SCHEMA)


def test_extra_columns_ignored(tmp_path):
    path = tmp_path / "extra.csv"
    path.write_text("id,name,price,junk\nr1,widget,3,ignored\n")
    table = read_csv_table(path, "t", SCHEMA)
    assert table["r1"].get("name") == "widget"
