"""The money-time trade-off model (the §10 extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crowd.latency import (
    LatencyModel,
    PayPoint,
    TimedCrowd,
    cheapest_within_deadline,
    pareto_sweep,
)
from repro.crowd.simulated import PerfectCrowd
from repro.data.pairs import Pair
from repro.exceptions import CrowdError

MATCHES = {Pair("a0", "b0")}


class TestLatencyModel:
    def test_more_pay_is_faster(self):
        model = LatencyModel()
        assert model.mean_seconds(0.04) < model.mean_seconds(0.01)

    def test_diminishing_returns(self):
        """Quadrupling pay at elasticity 0.5 only halves latency."""
        model = LatencyModel(base_seconds=60.0, elasticity=0.5,
                             floor_seconds=0.0)
        assert model.mean_seconds(0.04) == pytest.approx(30.0)

    def test_floor_respected(self):
        model = LatencyModel(floor_seconds=5.0)
        assert model.mean_seconds(100.0) == 5.0

    def test_sample_positive_and_mean_reasonable(self):
        model = LatencyModel(base_seconds=30.0, sigma=0.4,
                             floor_seconds=0.1)
        rng = np.random.default_rng(0)
        draws = [model.sample_seconds(0.01, rng) for _ in range(3000)]
        assert all(d > 0 for d in draws)
        assert np.mean(draws) == pytest.approx(30.0, rel=0.1)

    @pytest.mark.parametrize("kwargs", [
        dict(base_seconds=0.0),
        dict(reference_pay=0.0),
        dict(elasticity=3.0),
        dict(sigma=-1.0),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(CrowdError):
            LatencyModel(**kwargs)

    def test_bad_pay_rejected(self):
        with pytest.raises(CrowdError):
            LatencyModel().mean_seconds(0.0)


class TestTimedCrowd:
    def test_accumulates_time(self):
        inner = PerfectCrowd(MATCHES, rng=np.random.default_rng(0))
        crowd = TimedCrowd(inner, LatencyModel(sigma=0.0),
                           pay_per_question=0.01,
                           rng=np.random.default_rng(1), parallelism=1)
        assert crowd.elapsed_seconds == 0.0
        for _ in range(4):
            crowd.ask(Pair("a0", "b0"))
        assert crowd.elapsed_seconds == pytest.approx(4 * 60.0)

    def test_parallelism_divides_time(self):
        def elapsed(parallelism):
            inner = PerfectCrowd(MATCHES, rng=np.random.default_rng(0))
            crowd = TimedCrowd(inner, LatencyModel(sigma=0.0),
                               pay_per_question=0.01,
                               rng=np.random.default_rng(1),
                               parallelism=parallelism)
            for _ in range(20):
                crowd.ask(Pair("a0", "b0"))
            return crowd.elapsed_seconds

        assert elapsed(5) == pytest.approx(elapsed(1) / 5)

    def test_answers_still_flow_through(self):
        inner = PerfectCrowd(MATCHES, rng=np.random.default_rng(0))
        crowd = TimedCrowd(inner, LatencyModel(), 0.01,
                           rng=np.random.default_rng(1))
        assert crowd.ask(Pair("a0", "b0")).label is True

    def test_bad_parallelism(self):
        inner = PerfectCrowd(MATCHES, rng=np.random.default_rng(0))
        with pytest.raises(CrowdError):
            TimedCrowd(inner, LatencyModel(), 0.01, parallelism=0)


class TestParetoSweep:
    def test_monotone_frontier(self):
        points = pareto_sweep(1000, [0.01, 0.02, 0.05, 0.10])
        dollars = [p.total_dollars for p in points]
        hours = [p.total_hours for p in points]
        assert dollars == sorted(dollars)
        assert hours == sorted(hours, reverse=True)

    def test_deadline_picks_cheapest(self):
        rates = [0.01, 0.02, 0.05, 0.10]
        generous = cheapest_within_deadline(1000, 10**6, rates)
        assert generous is not None
        assert generous.pay_per_question == 0.01

        points = pareto_sweep(1000, rates)
        # A deadline just above the second point's time forces rate #2.
        target = points[1]
        chosen = cheapest_within_deadline(
            1000, target.total_hours + 1e-9, rates
        )
        assert chosen is not None
        assert chosen.pay_per_question == target.pay_per_question

    def test_impossible_deadline(self):
        assert cheapest_within_deadline(10**6, 0.0001, [0.01]) is None

    def test_validation(self):
        with pytest.raises(CrowdError):
            pareto_sweep(-1, [0.01])
        with pytest.raises(CrowdError):
            pareto_sweep(10, [])

    def test_paypoint_fields(self):
        [point] = pareto_sweep(100, [0.02])
        assert point == PayPoint(pay_per_question=0.02,
                                 total_dollars=pytest.approx(2.0),
                                 total_hours=point.total_hours)
