"""Phase-level budget plans (the §10 extension)."""

from __future__ import annotations

import pytest

from repro.core.budgeting import (
    BudgetPlan,
    DEFAULT_SHARES,
    PHASES,
    PhaseBudgetManager,
)
from repro.crowd.cost import CostTracker
from repro.exceptions import BudgetExhaustedError, ConfigurationError


class TestBudgetPlan:
    def test_total(self):
        plan = BudgetPlan(blocking=1, matching=2, estimation=3,
                          reduction=4)
        assert plan.total == 10
        assert plan.allocation("estimation") == 3

    def test_from_total_default_shares(self):
        plan = BudgetPlan.from_total(100.0)
        assert plan.total == pytest.approx(100.0)
        assert plan.matching == pytest.approx(
            100 * DEFAULT_SHARES["matching"]
        )

    def test_from_total_custom_shares(self):
        plan = BudgetPlan.from_total(10.0, shares={
            "blocking": 0.1, "matching": 0.6,
            "estimation": 0.2, "reduction": 0.1,
        })
        assert plan.matching == pytest.approx(6.0)

    def test_negative_allocation_rejected(self):
        with pytest.raises(ConfigurationError):
            BudgetPlan(blocking=-1, matching=1, estimation=1, reduction=1)

    def test_zero_total_rejected(self):
        with pytest.raises(ConfigurationError):
            BudgetPlan(blocking=0, matching=0, estimation=0, reduction=0)

    def test_shares_must_cover_phases(self):
        with pytest.raises(ConfigurationError):
            BudgetPlan.from_total(10.0, shares={"matching": 1.0})

    def test_shares_must_sum_to_one(self):
        shares = dict.fromkeys(PHASES, 0.3)
        with pytest.raises(ConfigurationError):
            BudgetPlan.from_total(10.0, shares=shares)

    def test_unknown_phase_lookup(self):
        plan = BudgetPlan.from_total(10.0)
        with pytest.raises(ConfigurationError):
            plan.allocation("coffee")


class TestPhaseBudgetManager:
    def make(self, **alloc):
        plan = BudgetPlan(**{
            "blocking": 1.0, "matching": 2.0,
            "estimation": 1.0, "reduction": 1.0, **alloc,
        })
        tracker = CostTracker(price_per_question=0.10)
        return PhaseBudgetManager(plan, tracker), tracker

    def test_phase_cap_enforced(self):
        manager, tracker = self.make()
        with manager.phase("blocking"):
            tracker.record_answers(9)   # $0.90 of $1.00
            tracker.check_budget()
            tracker.record_answers(1)   # exactly $1.00
            with pytest.raises(BudgetExhaustedError):
                tracker.check_budget()
        assert manager.spent("blocking") == pytest.approx(1.0)
        assert manager.remaining("blocking") == 0.0

    def test_budget_restored_after_phase(self):
        manager, tracker = self.make()
        with manager.phase("blocking"):
            pass
        assert tracker.budget is None  # no global budget existed

    def test_rollover_to_later_phase(self):
        manager, tracker = self.make()
        with manager.phase("blocking"):
            tracker.record_answers(2)  # $0.20 of blocking's $1.00
        # Matching may now spend its own $2 plus blocking's unused $0.80,
        # but must still reserve estimation + reduction ($2.00).
        assert manager.cap("matching") == pytest.approx(2.8)

    def test_later_phases_keep_reservation(self):
        manager, tracker = self.make()
        # Even before anything runs, blocking cannot eat the whole plan.
        assert manager.cap("blocking") == pytest.approx(1.0)
        # The last phase has no later reservations: everything left is
        # available to it (phases execute in pipeline order).
        assert manager.cap("reduction") == pytest.approx(5.0)

    def test_total_never_exceeded(self):
        manager, tracker = self.make()
        for phase in PHASES:
            with manager.phase(phase):
                while True:
                    try:
                        tracker.check_budget()
                        tracker.record_answers(1)
                    except BudgetExhaustedError:
                        break
        assert tracker.dollars <= 5.0 + 0.10

    def test_repeated_phase_entries_accumulate(self):
        manager, tracker = self.make()
        with manager.phase("matching"):
            tracker.record_answers(5)  # $0.50
        with manager.phase("matching"):
            tracker.record_answers(5)  # $0.50 more
        assert manager.spent("matching") == pytest.approx(1.0)
        assert manager.remaining("matching") == pytest.approx(1.0)

    def test_unknown_phase_rejected(self):
        manager, _ = self.make()
        with pytest.raises(ConfigurationError):
            manager.phase("lunch")
        with pytest.raises(ConfigurationError):
            manager.spent("lunch")

    def test_preserves_stricter_global_budget(self):
        plan = BudgetPlan.from_total(100.0)
        tracker = CostTracker(price_per_question=1.0, budget=3.0)
        manager = PhaseBudgetManager(plan, tracker)
        with manager.phase("matching"):
            # Phase cap would allow $45+, but the phase context replaces
            # the budget; on exit the stricter global budget returns.
            tracker.record_answers(2)
        assert tracker.budget == 3.0
        tracker.record_answers(1)
        with pytest.raises(BudgetExhaustedError):
            tracker.check_budget()
