"""Crowd-based joint rule evaluation (§4.2 step 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CrowdConfig
from repro.crowd.service import LabelingService
from repro.crowd.simulated import PerfectCrowd, SimulatedCrowd
from repro.data.pairs import CandidateSet, Pair
from repro.rules.evaluation import evaluate_rules
from repro.rules.predicates import Predicate
from repro.rules.rule import Rule


def build_sample(n: int = 200, positive_below: float = 0.2):
    """Sample with feature f0 uniform on [0,1); matches are f0 >= 1-d."""
    values = np.linspace(0.0, 1.0, n, endpoint=False)
    pairs = [Pair(f"a{i}", f"b{i}") for i in range(n)]
    matches = {
        pairs[i] for i in range(n) if values[i] >= 1.0 - positive_below
    }
    sample = CandidateSet(pairs, values.reshape(-1, 1), ["f0"])
    return sample, matches


def neg_rule(threshold: float) -> Rule:
    """Covers rows with f0 <= threshold, predicting 'no match'."""
    return Rule([Predicate(0, "f0", True, threshold)], predicts_match=False)


def make_service(matches, error_rate: float = 0.0) -> LabelingService:
    crowd = (PerfectCrowd(matches, rng=np.random.default_rng(3))
             if error_rate == 0.0
             else SimulatedCrowd(matches, error_rate,
                                 rng=np.random.default_rng(3)))
    return LabelingService(crowd, CrowdConfig())


class TestPerfectRules:
    def test_precise_rule_accepted(self, rng):
        sample, matches = build_sample(n=300, positive_below=0.2)
        service = make_service(matches)
        # f0 <= 0.5 covers only true negatives (positives are >= 0.8).
        [result] = evaluate_rules([neg_rule(0.5)], sample, service, rng)
        assert result.accepted
        assert result.precision == 1.0
        assert result.reason == "accepted"

    def test_imprecise_rule_rejected(self, rng):
        sample, matches = build_sample(n=300, positive_below=0.5)
        service = make_service(matches)
        # f0 <= 0.9 covers rows up to 0.9; positives start at 0.5, so
        # ~44% of its coverage is positive.
        [result] = evaluate_rules([neg_rule(0.9)], sample, service, rng)
        assert not result.accepted
        assert result.precision < 0.95

    def test_empty_coverage_rejected_for_free(self, rng):
        sample, matches = build_sample()
        service = make_service(matches)
        [result] = evaluate_rules([neg_rule(-5.0)], sample, service, rng)
        assert not result.accepted
        assert result.reason == "empty_coverage"
        assert service.tracker.answers == 0

    def test_results_align_with_input_order(self, rng):
        sample, matches = build_sample(n=300, positive_below=0.2)
        service = make_service(matches)
        rules = [neg_rule(-5.0), neg_rule(0.5), neg_rule(0.95)]
        results = evaluate_rules(rules, sample, service, rng)
        assert [r.rule for r in results] == rules
        assert [r.accepted for r in results] == [False, True, False]


class TestJointEvaluation:
    def test_shared_labels_reduce_cost(self, rng):
        """Two overlapping rules evaluated jointly reuse labels."""
        sample, matches = build_sample(n=400, positive_below=0.1)
        service_joint = make_service(matches)
        evaluate_rules([neg_rule(0.5), neg_rule(0.6)], sample,
                       service_joint, rng)
        joint_cost = service_joint.tracker.pairs_labeled

        service_isolated = make_service(matches)
        rng2 = np.random.default_rng(1)
        evaluate_rules([neg_rule(0.5)], sample, service_isolated, rng2)
        evaluate_rules([neg_rule(0.6)], sample, service_isolated, rng2)
        isolated_cost = service_isolated.tracker.pairs_labeled
        # Joint evaluation should not cost more (cache helps the isolated
        # case too, but the union sampling shares examples by design).
        assert joint_cost <= isolated_cost

    def test_cached_labels_seed_statistics(self, rng):
        sample, matches = build_sample(n=300, positive_below=0.2)
        service = make_service(matches)
        # Pre-label half the coverage through the same service.
        service.label_all(sample.pairs[:100])
        before = service.tracker.pairs_labeled
        [result] = evaluate_rules([neg_rule(0.5)], sample, service, rng)
        assert result.accepted
        # Evaluation re-used the 100 cached labels: few new ones needed.
        assert service.tracker.pairs_labeled - before <= 60


class TestStoppingConditions:
    def test_label_cap_respected(self, rng):
        sample, matches = build_sample(n=500, positive_below=0.05)
        service = make_service(matches, error_rate=0.3)
        [result] = evaluate_rules(
            [neg_rule(0.9)], sample, service, rng,
            max_labels_per_rule=40,
        )
        assert result.n_labeled <= 40 + 20  # cap plus one final batch

    def test_whole_coverage_exhausted(self, rng):
        sample, matches = build_sample(n=30, positive_below=0.2)
        service = make_service(matches)
        [result] = evaluate_rules(
            [neg_rule(0.5)], sample, service, rng, batch_size=50,
            max_error_margin=1e-9,  # unreachable by sampling
        )
        # Margin is exactly 0 once every covered row is labelled.
        assert result.error_margin == 0.0
        assert result.n_labeled == result.coverage


class TestNoisyCrowd:
    def test_moderate_noise_still_accepts_good_rule(self, rng):
        sample, matches = build_sample(n=400, positive_below=0.2)
        service = make_service(matches, error_rate=0.1)
        [result] = evaluate_rules([neg_rule(0.4)], sample, service, rng)
        # Strong-majority voting should hold the precision estimate high.
        assert result.precision >= 0.9
