"""Crowd transcripts and worker-agreement auditing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CrowdConfig
from repro.crowd.base import WorkerAnswer
from repro.crowd.service import LabelingService
from repro.crowd.simulated import HeterogeneousCrowd, PerfectCrowd
from repro.crowd.transcript import (
    TranscriptingPlatform,
    group_by_question,
    transcript_from_jsonl,
    transcript_to_jsonl,
    worker_agreement_report,
)
from repro.data.pairs import Pair
from repro.exceptions import DataError

MATCHES = {Pair(f"a{i}", f"b{i}") for i in range(30)}


def make_recording_service(crowd=None):
    crowd = crowd or PerfectCrowd(MATCHES, rng=np.random.default_rng(0))
    recorder = TranscriptingPlatform(crowd)
    return LabelingService(recorder, CrowdConfig()), recorder


class TestRecording:
    def test_every_answer_recorded(self):
        service, recorder = make_recording_service()
        service.label_all([Pair("a0", "b0"), Pair("a1", "b2")])
        assert recorder.n_answers == service.tracker.answers

    def test_grouping_preserves_order(self):
        service, recorder = make_recording_service()
        service.label_all([Pair("a0", "b0"), Pair("a1", "b2")])
        transcripts = group_by_question(recorder.log)
        assert transcripts[0].pair == Pair("a0", "b0")
        assert transcripts[1].pair == Pair("a1", "b2")
        # Asymmetric positive needs >= 3 answers; unanimous negative 2.
        assert transcripts[0].n_answers >= 3
        assert transcripts[1].n_answers == 2

    def test_majority_and_unanimity(self):
        answers = [
            WorkerAnswer(Pair("x", "y"), True, 1),
            WorkerAnswer(Pair("x", "y"), False, 2),
            WorkerAnswer(Pair("x", "y"), True, 3),
        ]
        [item] = group_by_question(answers)
        assert item.majority is True
        assert not item.unanimous
        assert item.positives == 2

    def test_clear(self):
        service, recorder = make_recording_service()
        service.label_all([Pair("a0", "b0")])
        recorder.clear()
        assert recorder.n_answers == 0


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        service, recorder = make_recording_service()
        service.label_all([Pair("a0", "b0"), Pair("a1", "b9")])
        transcripts = group_by_question(recorder.log)
        path = tmp_path / "audit.jsonl"
        transcript_to_jsonl(transcripts, path)
        loaded = transcript_from_jsonl(path)
        assert loaded == transcripts

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            transcript_from_jsonl(tmp_path / "nope.jsonl")

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"a_id": "x"}\n')
        with pytest.raises(DataError):
            transcript_from_jsonl(path)


class TestWorkerAgreement:
    def test_spammer_stands_out(self):
        """A worker pool with one adversary: the report flags them."""
        # Worker error rates: four careful workers, one coin-flipper.
        crowd = HeterogeneousCrowd(MATCHES, [0.02, 0.02, 0.02, 0.02, 0.5],
                                   rng=np.random.default_rng(3))
        service, recorder = make_recording_service(crowd)
        questions = [Pair(f"a{i}", f"b{i}") for i in range(30)]
        from repro.crowd.aggregation import VoteScheme
        service.label_all(questions, scheme=VoteScheme.STRONG_MAJORITY)
        report = worker_agreement_report(group_by_question(recorder.log))
        if 4 in report and report[4]["questions"] >= 5:
            careful = [report[w]["agreement"] for w in (0, 1, 2, 3)
                       if w in report and report[w]["questions"] >= 5]
            if careful:
                assert report[4]["agreement"] < min(careful) + 0.25

    def test_short_questions_excluded(self):
        answers = [
            WorkerAnswer(Pair("x", "y"), True, 1),
            WorkerAnswer(Pair("x", "y"), True, 2),
        ]
        report = worker_agreement_report(group_by_question(answers))
        assert report == {}
