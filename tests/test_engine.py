"""Unit tests for the staged engine: bus, sinks, context, checkpoints."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import persistence
from repro.config import CorleoneConfig
from repro.core.budgeting import BudgetPlan
from repro.core.pipeline import Corleone
from repro.crowd.service import VoteScheme
from repro.crowd.simulated import PerfectCrowd, SimulatedCrowd
from repro.data.pairs import Pair
from repro.engine import (
    EVENT_CHECKPOINT_WRITTEN,
    EVENT_LABELS_PURCHASED,
    EVENT_STAGE_FINISHED,
    EVENT_STAGE_STARTED,
    Event,
    EventBus,
    JsonlTraceSink,
    ProgressReporter,
    RNG_STREAMS,
    RunContext,
    RunState,
    Stage,
    build_stages,
    load_checkpoint,
    load_run_inputs,
)
from repro.engine.events import read_trace
from repro.exceptions import DataError


# ----------------------------------------------------------------------
# Event bus
# ----------------------------------------------------------------------


class TestEventBus:
    def test_sequence_is_monotonic(self):
        bus = EventBus()
        events = [bus.emit("stage_started", stage="block") for _ in range(3)]
        assert [event.sequence for event in events] == [0, 1, 2]
        assert bus.events_emitted == 3

    def test_sinks_receive_in_subscribe_order(self):
        bus = EventBus()
        seen: list[tuple[str, int]] = []
        bus.subscribe(lambda event: seen.append(("first", event.sequence)))
        bus.subscribe(lambda event: seen.append(("second", event.sequence)))
        bus.emit("stage_started")
        assert seen == [("first", 0), ("second", 0)]

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        seen: list[Event] = []
        sink = bus.subscribe(seen.append)
        bus.emit("stage_started")
        bus.unsubscribe(sink)
        bus.emit("stage_finished")
        assert len(seen) == 1

    def test_raising_sink_aborts_emit(self):
        bus = EventBus()
        late: list[Event] = []

        def bomb(event):
            raise RuntimeError("kill")

        bus.subscribe(bomb)
        bus.subscribe(late.append)
        with pytest.raises(RuntimeError):
            bus.emit("checkpoint_written")
        assert late == []
        # The sequence number is consumed even on an aborted emit.
        assert bus.events_emitted == 1

    def test_restore_sequence(self):
        bus = EventBus()
        bus.restore_sequence(41)
        assert bus.emit("stage_started").sequence == 41


class TestTraceSink:
    def test_round_trips_through_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bus = EventBus()
        sink = bus.subscribe(JsonlTraceSink(path))
        bus.emit("stage_started", stage="block", iteration=0)
        bus.emit("labels_purchased", pair=["a0", "b0"], label=True,
                 strong=True, pairs_labeled=1)
        sink.close()
        events = read_trace(path)
        assert [event.name for event in events] == [
            "stage_started", "labels_purchased",
        ]
        assert events[0].payload == {"stage": "block", "iteration": 0}
        assert events[1].payload["pair"] == ["a0", "b0"]
        assert [event.sequence for event in events] == [0, 1]


class TestProgressReporter:
    def test_aggregates_labels_into_stage_line(self):
        lines: list[str] = []
        bus = EventBus()
        bus.subscribe(ProgressReporter(write=lines.append))
        bus.emit(EVENT_STAGE_STARTED, stage="train_matcher", iteration=1)
        bus.emit(EVENT_LABELS_PURCHASED, pair=["a", "b"], label=True,
                 strong=True, pairs_labeled=1)
        bus.emit(EVENT_LABELS_PURCHASED, pair=["a", "c"], label=False,
                 strong=True, pairs_labeled=2)
        bus.emit(EVENT_STAGE_FINISHED, stage="train_matcher", iteration=1,
                 next_stage="estimate", dollars=0.4)
        bus.emit(EVENT_CHECKPOINT_WRITTEN, index=3, stage="estimate",
                 iteration=1)
        assert len(lines) == 3
        assert "train_matcher" in lines[0]
        assert "2 labels purchased" in lines[1]
        assert "#3" in lines[2]


# ----------------------------------------------------------------------
# RunContext streams
# ----------------------------------------------------------------------


def _context(fast_config: CorleoneConfig, seed=123) -> RunContext:
    """A fresh context over a trivial perfect crowd."""
    crowd = PerfectCrowd(frozenset(), rng=np.random.default_rng(0))
    return RunContext(fast_config, crowd, seed=seed)


class TestRunContextStreams:
    def test_streams_are_memoized(self, fast_config):
        ctx = _context(fast_config)
        assert ctx.rng("matcher") is ctx.rng("matcher")

    def test_streams_differ_pairwise(self, fast_config):
        ctx = _context(fast_config)
        draws = {
            name: tuple(ctx.rng(name).random(4)) for name in RNG_STREAMS
        }
        values = list(draws.values())
        assert len(set(values)) == len(values)

    def test_access_order_does_not_matter(self, fast_config):
        forward = _context(fast_config)
        backward = _context(fast_config)
        first = {name: forward.rng(name).random(4) for name in RNG_STREAMS}
        for name in reversed(RNG_STREAMS):
            backward.rng(name)
        second = {name: backward.rng(name).random(4)
                  for name in RNG_STREAMS}
        for name in RNG_STREAMS:
            np.testing.assert_array_equal(first[name], second[name])

    def test_generator_backcompat_matches_integer_seed(self, fast_config):
        by_seed = _context(fast_config, seed=77)
        by_rng = RunContext(fast_config,
                            PerfectCrowd(frozenset(),
                                         rng=np.random.default_rng(0)),
                            rng=np.random.default_rng(77))
        np.testing.assert_array_equal(by_seed.rng("matcher").random(4),
                                      by_rng.rng("matcher").random(4))

    def test_unregistered_names_are_deterministic(self, fast_config):
        one = _context(fast_config)
        two = _context(fast_config)
        np.testing.assert_array_equal(one.rng("shuffler").random(4),
                                      two.rng("shuffler").random(4))

    def test_rng_states_round_trip_mid_stream(self, fast_config):
        ctx = _context(fast_config)
        ctx.rng("matcher").random(3)
        states = json.loads(json.dumps(ctx.rng_states()))
        expected = ctx.rng("matcher").random(5)
        fresh = _context(fast_config)
        fresh.restore_rng_states(states)
        np.testing.assert_array_equal(fresh.rng("matcher").random(5),
                                      expected)


# ----------------------------------------------------------------------
# Label cache round trip (vote strengths survive checkpoints)
# ----------------------------------------------------------------------


class TestServiceCacheRoundTrip:
    def test_cache_rows_preserve_labels_strength_and_order(
            self, tiny_dataset, fast_config):
        crowd = SimulatedCrowd(tiny_dataset.matches, error_rate=0.1,
                               rng=np.random.default_rng(3))
        ctx = RunContext(fast_config, crowd, seed=5)
        ctx.service.seed(tiny_dataset.seed_labels)
        pairs = sorted(tiny_dataset.matches)[:4]
        ctx.service.label_batch(pairs, scheme=VoteScheme.MAJORITY_2PLUS1)

        rows = json.loads(json.dumps(ctx.service.cache_state()))
        restored_ctx = RunContext(fast_config, crowd, seed=5)
        restored_ctx.service.restore_cache(rows)

        assert restored_ctx.service.cache_state() == ctx.service.cache_state()
        for scheme in (VoteScheme.MAJORITY_2PLUS1, VoteScheme.ASYMMETRIC):
            assert (restored_ctx.service.reliable_labels(scheme)
                    == ctx.service.reliable_labels(scheme))
        # Insertion order is part of the resume contract.
        assert (list(restored_ctx.service.reliable_labels(
                    VoteScheme.MAJORITY_2PLUS1))
                == list(ctx.service.reliable_labels(
                    VoteScheme.MAJORITY_2PLUS1)))


# ----------------------------------------------------------------------
# Stage protocol
# ----------------------------------------------------------------------


class TestStageProtocol:
    def test_all_built_stages_satisfy_the_protocol(self):
        stages = build_stages()
        assert [stage.name for stage in stages] == [
            "block", "train_matcher", "estimate", "locate_difficult",
            "reduce",
        ]
        for stage in stages:
            assert isinstance(stage, Stage)

    def test_phases_map_to_budget_phases(self):
        phases = [stage.phase for stage in build_stages()]
        assert phases == ["blocking", "matching", "estimation",
                          "reduction", None]


# ----------------------------------------------------------------------
# Run directory artifacts
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def checkpointed_run(tmp_path_factory):
    """One checkpointed one_iteration run plus its run directory."""
    from repro.synth.restaurants import generate_restaurants
    from repro.config import (
        BlockerConfig, EstimatorConfig, ForestConfig, LocatorConfig,
        MatcherConfig,
    )
    dataset = generate_restaurants(n_a=60, n_b=40, n_matches=16, seed=7)
    config = CorleoneConfig(
        forest=ForestConfig(n_trees=5),
        blocker=BlockerConfig(t_b=3000, top_k_rules=10,
                              max_labels_per_rule=60),
        matcher=MatcherConfig(batch_size=10, pool_size=40,
                              n_converged=8, n_degrade=6,
                              max_iterations=25),
        estimator=EstimatorConfig(probe_size=25, max_probes=40),
        locator=LocatorConfig(min_difficult_pairs=30),
        max_pipeline_iterations=2,
        seed=0,
    )
    run_dir = tmp_path_factory.mktemp("engine") / "run"
    crowd = PerfectCrowd(dataset.matches, rng=np.random.default_rng(5))
    plan = BudgetPlan.from_total(50.0)
    pipeline = Corleone(config, crowd, seed=123, run_dir=run_dir)
    result = pipeline.run(dataset.table_a, dataset.table_b,
                          dataset.seed_labels, mode="one_iteration",
                          budget_plan=plan)
    return dataset, config, plan, run_dir, result


class TestRunDirectory:
    def test_layout(self, checkpointed_run):
        _, _, _, run_dir, _ = checkpointed_run
        for name in ("run.json", "checkpoint.json", "candidates.npz",
                     "trace.jsonl"):
            assert (run_dir / name).is_file(), name

    def test_run_inputs_round_trip(self, checkpointed_run):
        dataset, config, plan, run_dir, _ = checkpointed_run
        inputs = load_run_inputs(run_dir)
        assert inputs["mode"] == "one_iteration"
        assert (persistence.config_to_dict(inputs["config"])
                == persistence.config_to_dict(config))
        assert inputs["seed_labels"] == dataset.seed_labels
        assert inputs["root_seed"].entropy == 123
        assert (persistence.budget_plan_to_dict(inputs["budget_plan"])
                == persistence.budget_plan_to_dict(plan))
        restored_a = inputs["table_a"]
        assert restored_a.name == dataset.table_a.name
        assert len(restored_a) == len(dataset.table_a)
        assert [r.record_id for r in restored_a] == [
            r.record_id for r in dataset.table_a
        ]

    def test_checkpoint_document_shape(self, checkpointed_run):
        _, _, _, run_dir, _ = checkpointed_run
        checkpoint = load_checkpoint(run_dir)
        assert checkpoint is not None
        for key in ("index", "sequence", "state", "service_cache",
                    "tracker", "manager", "platform", "rng"):
            assert key in checkpoint, key
        assert checkpoint["manager"] is not None
        assert set(checkpoint["rng"]) <= set(RNG_STREAMS)

    def test_run_state_dict_round_trip(self, checkpointed_run):
        _, _, _, run_dir, _ = checkpointed_run
        checkpoint = load_checkpoint(run_dir)
        candidates = persistence.load_candidates(
            run_dir / "candidates.npz")
        state = RunState.from_dict(checkpoint["state"], candidates)
        assert state.to_dict() == checkpoint["state"]

    def test_trace_matches_event_schema(self, checkpointed_run):
        _, _, _, run_dir, _ = checkpointed_run
        events = read_trace(run_dir / "trace.jsonl")
        assert events, "trace must not be empty"
        sequences = [event.sequence for event in events]
        assert sequences == sorted(sequences)
        names = {event.name for event in events}
        assert {"stage_started", "stage_finished", "labels_purchased",
                "budget_spent", "checkpoint_written"} <= names
        started = [e for e in events if e.name == "stage_started"]
        assert started[0].payload["stage"] == "block"

    def test_iteration_record_round_trip(self, checkpointed_run):
        _, _, _, run_dir, result = checkpointed_run
        record = result.iterations[0]
        data = json.loads(json.dumps(
            persistence.iteration_record_to_dict(record,
                                                 result.candidates)))
        restored = persistence.iteration_record_from_dict(
            data, result.candidates)
        assert restored.predicted_pairs == record.predicted_pairs
        assert restored.matcher.stop_reason == record.matcher.stop_reason
        assert restored.matcher.labeled_rows == record.matcher.labeled_rows
        np.testing.assert_array_equal(restored.matcher.predictions,
                                      record.matcher.predictions)
        assert restored.estimate.f1 == record.estimate.f1

    def test_resume_requires_a_checkpoint(self, tmp_path):
        with pytest.raises(DataError):
            Corleone.resume(tmp_path, PerfectCrowd(frozenset()))
