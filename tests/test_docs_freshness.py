"""Documentation freshness: the docs must not reference dead code.

README/DESIGN/EXPERIMENTS and the docs/ pages name modules, files and
symbols; these tests keep those references alive as the code evolves.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent
DOC_FILES = [
    ROOT / "README.md",
    ROOT / "DESIGN.md",
    ROOT / "EXPERIMENTS.md",
    *sorted((ROOT / "docs").glob("*.md")),
]


def test_all_doc_files_exist():
    for path in DOC_FILES:
        assert path.is_file(), f"missing doc file {path}"
    assert len(DOC_FILES) >= 5


@pytest.mark.parametrize("path", DOC_FILES, ids=[p.name for p in DOC_FILES])
def test_referenced_benchmark_files_exist(path):
    for match in re.finditer(r"bench_[a-z0-9_]+\.py", path.read_text()):
        target = ROOT / "benchmarks" / match.group(0)
        assert target.is_file(), (
            f"{path.name} references missing {match.group(0)}"
        )


@pytest.mark.parametrize("path", DOC_FILES, ids=[p.name for p in DOC_FILES])
def test_referenced_example_files_exist(path):
    text = path.read_text()
    for match in re.finditer(r"`([a-z_]+\.py)`", text):
        name = match.group(1)
        candidates = [
            ROOT / "examples" / name,
            ROOT / "benchmarks" / name,
            ROOT / name,
        ]
        assert any(c.is_file() for c in candidates), (
            f"{path.name} references missing script {name}"
        )


@pytest.mark.parametrize("path", DOC_FILES, ids=[p.name for p in DOC_FILES])
def test_referenced_modules_importable(path):
    """Every `repro.x.y` dotted reference resolves to a real module or
    attribute."""
    text = path.read_text()
    for match in re.finditer(r"`(repro(?:\.[a-z_]+)+)`", text):
        dotted = match.group(1)
        parts = dotted.split(".")
        # Try as module; fall back to attribute of the parent module.
        try:
            importlib.import_module(dotted)
            continue
        except ImportError:
            pass
        module = importlib.import_module(".".join(parts[:-1]))
        assert hasattr(module, parts[-1]), (
            f"{path.name} references unknown {dotted}"
        )


def test_design_lists_every_bench_module():
    design = (ROOT / "DESIGN.md").read_text()
    for bench in sorted((ROOT / "benchmarks").glob("bench_*.py")):
        assert bench.name in design, (
            f"DESIGN.md does not mention {bench.name}"
        )


def test_readme_lists_every_example():
    readme = (ROOT / "README.md").read_text()
    for example in sorted((ROOT / "examples").glob("*.py")):
        assert example.name in readme, (
            f"README.md does not mention {example.name}"
        )


def test_experiments_covers_every_paper_artifact():
    experiments = (ROOT / "EXPERIMENTS.md").read_text()
    for artifact in ("Table 1", "Table 2", "Table 3", "Table 4",
                     "Figure 2", "Figure 3"):
        assert artifact in experiments
