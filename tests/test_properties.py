"""Cross-module property-based tests on core invariants.

These complement the per-module property tests: each one states an
invariant that ties two subsystems together (forest <-> rules,
service <-> aggregation, candidate sets <-> subsetting algebra).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import CrowdConfig, ForestConfig
from repro.crowd.service import LabelingService
from repro.crowd.simulated import SimulatedCrowd
from repro.data.pairs import CandidateSet, Pair
from repro.forest.forest import train_forest
from repro.rules.extraction import extract_rules
from repro.rules.rule import Rule
from repro.rules.statistics import fpc_error_margin, required_sample_size

matrix_strategy = st.integers(0, 10_000).map(
    lambda seed: np.random.default_rng(seed).random((80, 3))
)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_forest_rules_partition_predictions(seed):
    """The rules extracted from a forest's trees, applied per-tree,
    reproduce every tree's vote: a row covered by a negative rule of a
    tree is voted negative by that tree, and vice versa."""
    rng = np.random.default_rng(seed)
    x = rng.random((120, 3))
    y = x[:, 0] > 0.5
    forest = train_forest(x, y, ForestConfig(n_trees=3), rng)
    names = ["f0", "f1", "f2"]
    rules = extract_rules(forest, names)

    # Union of all rules covers every example (trees are total functions),
    # unless a tree failed to split (no rules at all).
    if rules:
        covered = np.zeros(len(x), dtype=bool)
        for rule in rules:
            covered |= rule.applies(x)
        assert covered.all()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000),
       error_rate=st.sampled_from([0.0, 0.1, 0.3]))
def test_service_is_deterministic_and_consistent(seed, error_rate):
    """Same platform seed -> same labels; cache returns what was stored."""
    matches = {Pair("a0", "b0"), Pair("a1", "b1")}
    questions = [Pair(f"a{i}", f"b{i}") for i in range(5)]

    def run():
        crowd = SimulatedCrowd(matches, error_rate,
                               rng=np.random.default_rng(seed))
        service = LabelingService(crowd, CrowdConfig())
        return service.label_all(questions), service

    labels_1, service_1 = run()
    labels_2, _ = run()
    assert labels_1 == labels_2
    for pair, label in labels_1.items():
        assert service_1.cached_label(pair) == label


@settings(max_examples=30, deadline=None)
@given(p=st.floats(0.01, 0.99), n=st.integers(2, 300),
       extra=st.integers(1, 5000), conf=st.sampled_from([0.9, 0.95, 0.99]))
def test_margin_consistent_with_required_size(p, n, extra, conf):
    """required_sample_size and fpc_error_margin are mutual inverses:
    sampling the required amount always achieves the target margin."""
    population = n + extra
    eps = fpc_error_margin(p, n, population, conf)
    if eps == 0.0:
        return
    needed = required_sample_size(p, eps, population, conf)
    assert needed <= n  # n already achieved margin eps
    assert fpc_error_margin(p, needed, population, conf) <= eps + 1e-9


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.data_too_large])
@given(matrix=matrix_strategy,
       indices=st.lists(st.integers(0, 79), min_size=1, max_size=30,
                        unique=True))
def test_candidate_subset_algebra(matrix, indices):
    """subset/without partition the candidate set, preserving vectors."""
    pairs = [Pair(f"a{i}", f"b{i}") for i in range(80)]
    candidates = CandidateSet(pairs, matrix, ["x", "y", "z"])
    chosen = candidates.subset(indices)
    dropped = candidates.without(chosen.pairs)
    assert len(chosen) + len(dropped) == len(candidates)
    assert set(chosen.pairs) | set(dropped.pairs) == set(pairs)
    for pair in chosen.pairs:
        np.testing.assert_array_equal(
            chosen.vector(pair), candidates.vector(pair)
        )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_rule_application_is_stable_under_row_permutation(seed):
    """Applying a rule commutes with permuting the feature matrix rows."""
    rng = np.random.default_rng(seed)
    x = rng.random((60, 3))
    x[rng.random(60) < 0.1] = np.nan
    forest = train_forest(
        np.nan_to_num(x), x[:, 0] > 0.5, ForestConfig(n_trees=2), rng
    )
    rules = extract_rules(forest, ["f0", "f1", "f2"])
    if not rules:
        return
    rule = rules[0]
    perm = rng.permutation(60)
    direct = rule.applies(x)[perm]
    permuted = rule.applies(x[perm])
    np.testing.assert_array_equal(direct, permuted)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), n_trees=st.integers(1, 8))
def test_forest_confidence_bounds(seed, n_trees):
    """Entropy in [0, ln 2], confidence in [1 - ln 2, 1], and unanimous
    forests are fully confident."""
    rng = np.random.default_rng(seed)
    x = rng.random((50, 2))
    y = x[:, 0] > 0.5
    forest = train_forest(x, y, ForestConfig(n_trees=n_trees), rng)
    entropy = forest.entropy(x)
    assert (entropy >= -1e-12).all()
    assert (entropy <= np.log(2) + 1e-12).all()
    confidence = forest.confidence(x)
    assert (confidence >= 1 - np.log(2) - 1e-12).all()
    assert (confidence <= 1 + 1e-12).all()
