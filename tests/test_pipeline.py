"""End-to-end Corleone pipeline integration tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import Corleone
from repro.crowd.simulated import PerfectCrowd, SimulatedCrowd
from repro.data.pairs import Pair
from repro.evaluation.experiment import run_corleone, score_iteration
from repro.exceptions import DataError
from repro.metrics import confusion_from_sets


@pytest.fixture(scope="module")
def full_run():
    """One shared full pipeline run on the tiny restaurants dataset."""
    from repro.synth.restaurants import generate_restaurants
    from repro.config import (
        BlockerConfig, CorleoneConfig, EstimatorConfig, ForestConfig,
        LocatorConfig, MatcherConfig,
    )
    dataset = generate_restaurants(n_a=60, n_b=40, n_matches=16, seed=7)
    config = CorleoneConfig(
        forest=ForestConfig(n_trees=5),
        blocker=BlockerConfig(t_b=3000, top_k_rules=10,
                              max_labels_per_rule=60),
        matcher=MatcherConfig(batch_size=10, pool_size=40,
                              n_converged=8, n_degrade=6,
                              max_iterations=25),
        estimator=EstimatorConfig(probe_size=25, max_probes=40),
        locator=LocatorConfig(min_difficult_pairs=30),
        max_pipeline_iterations=2,
    )
    return run_corleone(dataset, config, error_rate=0.0, seed=3)


class TestFullRun:
    def test_finds_most_matches(self, full_run):
        assert full_run.f1 >= 0.85

    def test_estimate_close_to_truth(self, full_run):
        estimate = full_run.result.estimate
        assert estimate is not None
        assert abs(estimate.f1 - full_run.f1) <= 0.15

    def test_cost_is_positive_and_metered(self, full_run):
        assert full_run.pairs_labeled > 0
        assert full_run.dollars > 0
        assert full_run.dollars == pytest.approx(
            full_run.result.cost.answers * 0.01
        )

    def test_iteration_records(self, full_run):
        iterations = full_run.result.iterations
        assert 1 <= len(iterations) <= 2
        first = iterations[0]
        assert first.matcher_pairs_labeled > 0
        assert first.estimate is not None
        assert first.predicted_pairs

    def test_predictions_within_candidates(self, full_run):
        candidates = set(full_run.result.candidates.pairs)
        assert full_run.result.predicted_matches <= candidates

    def test_score_iteration_matches_final(self, full_run):
        last_kept = full_run.result.iterations[0]
        confusion = score_iteration(last_kept, full_run.dataset)
        # Iteration 1's predictions were kept unless iteration 2 improved.
        if len(full_run.result.iterations) == 1:
            assert confusion == full_run.confusion


class TestRunModes:
    def test_blocker_matcher_mode(self, tiny_dataset, fast_config):
        crowd = PerfectCrowd(tiny_dataset.matches,
                             rng=np.random.default_rng(1))
        pipeline = Corleone(fast_config, crowd)
        result = pipeline.run(
            tiny_dataset.table_a, tiny_dataset.table_b,
            tiny_dataset.seed_labels, mode="blocker_matcher",
        )
        assert result.stop_reason == "blocker_matcher_mode"
        assert result.estimate is None
        assert len(result.iterations) == 1
        assert result.predicted_matches

    def test_one_iteration_mode(self, tiny_dataset, fast_config):
        crowd = PerfectCrowd(tiny_dataset.matches,
                             rng=np.random.default_rng(1))
        pipeline = Corleone(fast_config, crowd)
        result = pipeline.run(
            tiny_dataset.table_a, tiny_dataset.table_b,
            tiny_dataset.seed_labels, mode="one_iteration",
        )
        assert result.stop_reason in ("one_iteration_mode",
                                      "no_improvement")
        assert len(result.iterations) == 1
        assert result.estimate is not None

    def test_unknown_mode_rejected(self, tiny_dataset, fast_config):
        crowd = PerfectCrowd(tiny_dataset.matches,
                             rng=np.random.default_rng(1))
        pipeline = Corleone(fast_config, crowd)
        with pytest.raises(DataError):
            pipeline.run(tiny_dataset.table_a, tiny_dataset.table_b,
                         tiny_dataset.seed_labels, mode="bogus")


class TestSeedValidation:
    def test_seeds_must_cover_both_classes(self, tiny_dataset, fast_config):
        crowd = PerfectCrowd(tiny_dataset.matches,
                             rng=np.random.default_rng(1))
        pipeline = Corleone(fast_config, crowd)
        only_positive = {
            pair: True for pair in tiny_dataset.seed_positive
        }
        with pytest.raises(DataError):
            pipeline.run(tiny_dataset.table_a, tiny_dataset.table_b,
                         only_positive)


class TestBudget:
    def test_budget_exhaustion_graceful(self, tiny_dataset, fast_config):
        """A tiny global budget must not crash the run or be blown past:
        each module wraps up with the labels it has."""
        crowd = SimulatedCrowd(tiny_dataset.matches, error_rate=0.0,
                               rng=np.random.default_rng(1))
        config = fast_config.replace(budget=0.50)
        pipeline = Corleone(config, crowd)
        result = pipeline.run(tiny_dataset.table_a, tiny_dataset.table_b,
                              tiny_dataset.seed_labels)
        # The budget cap held to within one aggregation of answers.
        assert result.cost.dollars <= 0.50 + 0.10
        assert result.stop_reason  # run completed in *some* orderly way
        # With almost no money the matcher ran on seeds alone; at least
        # one iteration record must still exist.
        assert result.iterations

    def test_budget_exhaustion_reports_partial_state(self, tiny_dataset,
                                                     fast_config,
                                                     monkeypatch):
        """Regression: a BudgetExhaustedError escaping mid-run used to be
        reported with a fabricated empty blocker result and candidate
        set; the result must carry the state actually accumulated."""
        from repro.core.pipeline import ActiveLearningMatcher
        from repro.exceptions import BudgetExhaustedError

        def exhausted(self, *args, **kwargs):
            raise BudgetExhaustedError(spent=1.0, budget=1.0)

        # The engine drives the matcher's stepwise API, so exhaust the
        # budget at the first active-learning step (`train` delegates to
        # `start` too, so the monolithic path is covered by the same
        # patch point).
        monkeypatch.setattr(ActiveLearningMatcher, "start", exhausted)
        crowd = SimulatedCrowd(tiny_dataset.matches, error_rate=0.0,
                               rng=np.random.default_rng(1))
        pipeline = Corleone(fast_config, crowd)
        result = pipeline.run(tiny_dataset.table_a, tiny_dataset.table_b,
                              tiny_dataset.seed_labels)
        assert result.stop_reason == "budget_exhausted"
        total = len(tiny_dataset.table_a) * len(tiny_dataset.table_b)
        assert result.blocker.cartesian == total
        assert len(result.candidates) == total
        assert result.iterations == []

    def test_budget_plan_respects_phase_caps(self, tiny_dataset,
                                             fast_config):
        from repro.core.budgeting import BudgetPlan
        crowd = SimulatedCrowd(tiny_dataset.matches, error_rate=0.0,
                               rng=np.random.default_rng(1))
        pipeline = Corleone(fast_config, crowd)
        plan = BudgetPlan.from_total(3.0)
        result = pipeline.run(tiny_dataset.table_a, tiny_dataset.table_b,
                              tiny_dataset.seed_labels, budget_plan=plan)
        assert result.cost.dollars <= plan.total + 0.10
        assert result.iterations

    def test_noisy_crowd_costs_more_than_perfect(self, tiny_dataset,
                                                 fast_config):
        def run_with(error_rate, seed=4):
            crowd = SimulatedCrowd(tiny_dataset.matches, error_rate,
                                   rng=np.random.default_rng(seed))
            pipeline = Corleone(fast_config, crowd,
                                rng=np.random.default_rng(seed))
            return pipeline.run(
                tiny_dataset.table_a, tiny_dataset.table_b,
                tiny_dataset.seed_labels, mode="one_iteration",
            )

        perfect = run_with(0.0)
        noisy = run_with(0.25)
        assert noisy.cost.answers >= perfect.cost.answers


class TestDeterminism:
    def test_same_seeds_same_matches(self, tiny_dataset, fast_config):
        def run():
            crowd = PerfectCrowd(tiny_dataset.matches,
                                 rng=np.random.default_rng(1))
            pipeline = Corleone(fast_config, crowd,
                                rng=np.random.default_rng(2))
            return pipeline.run(
                tiny_dataset.table_a, tiny_dataset.table_b,
                tiny_dataset.seed_labels, mode="one_iteration",
            )

        r1, r2 = run(), run()
        assert r1.predicted_matches == r2.predicted_matches
        assert r1.cost.dollars == r2.cost.dollars
