"""Configuration validation and derived quantities."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import (
    BlockerConfig,
    CorleoneConfig,
    CrowdConfig,
    DEFAULT_CONFIG,
    ForestConfig,
    MatcherConfig,
    scaled_config,
)
from repro.exceptions import ConfigurationError


class TestDefaults:
    def test_paper_parameter_values(self):
        cfg = DEFAULT_CONFIG
        assert cfg.forest.n_trees == 10
        assert cfg.forest.bagging_fraction == 0.6
        assert cfg.blocker.t_b == 3_000_000
        assert cfg.blocker.top_k_rules == 20
        assert cfg.blocker.eval_batch_size == 20
        assert cfg.blocker.min_precision == 0.95
        assert cfg.blocker.max_error_margin == 0.05
        assert cfg.matcher.batch_size == 20
        assert cfg.matcher.pool_size == 100
        assert cfg.matcher.monitor_fraction == 0.03
        assert cfg.matcher.smoothing_window == 5
        assert cfg.matcher.epsilon == 0.01
        assert cfg.matcher.n_converged == 20
        assert cfg.matcher.n_high == 3
        assert cfg.matcher.n_degrade == 15
        assert cfg.estimator.probe_size == 50
        assert cfg.crowd.questions_per_hit == 10
        assert cfg.crowd.strong_majority_gap == 3
        assert cfg.crowd.strong_majority_max == 7

    def test_default_has_no_budget(self):
        assert DEFAULT_CONFIG.budget is None


class TestFeaturesPerSplit:
    def test_weka_formula(self):
        cfg = ForestConfig()
        # m = floor(log2(n)) + 1
        assert cfg.features_per_split(1) == 1
        assert cfg.features_per_split(2) == 2
        assert cfg.features_per_split(8) == 4
        assert cfg.features_per_split(16) == 5
        assert cfg.features_per_split(17) == 5

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            ForestConfig().features_per_split(0)


class TestValidation:
    @pytest.mark.parametrize("field, value", [
        ("n_trees", 0),
        ("bagging_fraction", 0.0),
        ("bagging_fraction", 1.5),
        ("max_depth", 0),
    ])
    def test_bad_forest(self, field, value):
        with pytest.raises(ConfigurationError):
            CorleoneConfig(forest=dataclasses.replace(ForestConfig(),
                                                      **{field: value}))

    @pytest.mark.parametrize("field, value", [
        ("t_b", 0),
        ("top_k_rules", 0),
        ("min_precision", 0.0),
        ("min_precision", 1.0),
        ("max_error_margin", 0.0),
        ("confidence", 1.0),
    ])
    def test_bad_blocker(self, field, value):
        with pytest.raises(ConfigurationError):
            CorleoneConfig(blocker=dataclasses.replace(BlockerConfig(),
                                                       **{field: value}))

    def test_even_smoothing_window_rejected(self):
        with pytest.raises(ConfigurationError):
            CorleoneConfig(
                matcher=dataclasses.replace(MatcherConfig(),
                                            smoothing_window=4)
            )

    def test_pool_smaller_than_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            CorleoneConfig(
                matcher=dataclasses.replace(MatcherConfig(),
                                            pool_size=5, batch_size=10)
            )

    def test_strong_majority_max_below_gap_rejected(self):
        with pytest.raises(ConfigurationError):
            CorleoneConfig(
                crowd=dataclasses.replace(CrowdConfig(),
                                          strong_majority_gap=5,
                                          strong_majority_max=3)
            )

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            CorleoneConfig(budget=-1.0)

    def test_zero_pipeline_iterations_rejected(self):
        with pytest.raises(ConfigurationError):
            CorleoneConfig(max_pipeline_iterations=0)


class TestScaledConfig:
    def test_overrides_t_b(self):
        cfg = scaled_config(t_b=12345, seed=9)
        assert cfg.blocker.t_b == 12345
        assert cfg.seed == 9

    def test_extra_changes_apply(self):
        cfg = scaled_config(budget=50.0)
        assert cfg.budget == 50.0

    def test_replace_preserves_frozen(self):
        cfg = DEFAULT_CONFIG.replace(seed=3)
        assert cfg.seed == 3
        assert DEFAULT_CONFIG.seed == 0
