"""Cost tracking and budgets."""

from __future__ import annotations

import pytest

from repro.crowd.cost import CostSnapshot, CostTracker
from repro.exceptions import BudgetExhaustedError


class TestTracker:
    def test_accumulation(self):
        tracker = CostTracker(price_per_question=0.02)
        tracker.record_answers(3)
        tracker.record_answers(2)
        tracker.record_pair()
        tracker.record_hits(1)
        assert tracker.answers == 5
        assert tracker.dollars == pytest.approx(0.10)
        assert tracker.pairs_labeled == 1
        assert tracker.hits == 1

    def test_no_budget_never_raises(self):
        tracker = CostTracker()
        tracker.record_answers(10**6)
        tracker.check_budget()  # must not raise

    def test_budget_enforced(self):
        tracker = CostTracker(price_per_question=1.0, budget=2.5)
        tracker.record_answers(2)
        tracker.check_budget()
        tracker.record_answers(1)
        with pytest.raises(BudgetExhaustedError) as excinfo:
            tracker.check_budget()
        assert excinfo.value.spent == pytest.approx(3.0)
        assert excinfo.value.budget == 2.5

    def test_remaining_budget(self):
        tracker = CostTracker(price_per_question=1.0, budget=5.0)
        assert tracker.remaining_budget == 5.0
        tracker.record_answers(3)
        assert tracker.remaining_budget == 2.0
        tracker.record_answers(9)
        assert tracker.remaining_budget == 0.0

    def test_remaining_none_without_budget(self):
        assert CostTracker().remaining_budget is None


class TestSnapshot:
    def test_delta(self):
        tracker = CostTracker(price_per_question=0.01)
        tracker.record_answers(4)
        before = tracker.snapshot()
        tracker.record_answers(6)
        tracker.record_pair()
        delta = tracker.snapshot().minus(before)
        assert delta.answers == 6
        assert delta.pairs_labeled == 1
        assert delta.dollars == pytest.approx(0.06)

    def test_snapshot_is_immutable_view(self):
        tracker = CostTracker()
        snap = tracker.snapshot()
        tracker.record_answers(5)
        assert snap.answers == 0

    def test_default_snapshot_zero(self):
        snap = CostSnapshot()
        assert (snap.dollars, snap.answers, snap.pairs_labeled,
                snap.hits) == (0.0, 0, 0, 0)
