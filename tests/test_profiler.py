"""Crowd profiling and adaptive voting (the §10 extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CrowdConfig
from repro.crowd.aggregation import VoteScheme
from repro.crowd.profiler import (
    AdaptivePolicy,
    ErrorRateEstimator,
    ProfilingLabelingService,
)
from repro.crowd.simulated import PerfectCrowd, SimulatedCrowd
from repro.data.pairs import Pair
from repro.exceptions import CrowdError

MATCHES = {Pair(f"a{i}", f"b{i}") for i in range(300)}


def pairs(n: int, matched: bool = True) -> list[Pair]:
    if matched:
        return [Pair(f"a{i}", f"b{i}") for i in range(n)]
    return [Pair(f"a{i}", f"b{i + 1}") for i in range(n)]


def make_service(error_rate: float, policy=None, min_questions=30,
                 seed=0) -> ProfilingLabelingService:
    crowd = SimulatedCrowd(MATCHES, error_rate=error_rate,
                           rng=np.random.default_rng(seed))
    return ProfilingLabelingService(crowd, CrowdConfig(), policy=policy,
                                    min_questions=min_questions)


class TestErrorRateEstimator:
    def test_no_estimate_until_min_questions(self):
        estimator = ErrorRateEstimator(min_questions=5)
        for _ in range(4):
            estimator.record(True, True)
        assert estimator.error_rate is None
        estimator.record(True, True)
        assert estimator.error_rate == 0.0

    def test_inversion_formula(self):
        # d = 2e(1-e); for e=0.1, d=0.18.
        estimator = ErrorRateEstimator(min_questions=1)
        for _ in range(82):
            estimator.record(True, True)
        for _ in range(18):
            estimator.record(True, False)
        assert estimator.error_rate == pytest.approx(0.1, abs=0.005)

    def test_saturated_disagreement_clipped(self):
        estimator = ErrorRateEstimator(min_questions=1)
        for _ in range(10):
            estimator.record(True, False)
        assert estimator.error_rate is not None
        assert estimator.error_rate <= 0.5

    def test_interval_brackets_point_estimate(self):
        estimator = ErrorRateEstimator(min_questions=1)
        for _ in range(50):
            estimator.record(True, True)
        for _ in range(10):
            estimator.record(False, True)
        low, high = estimator.error_rate_interval()
        assert low <= estimator.error_rate <= high

    def test_bad_min_questions(self):
        with pytest.raises(CrowdError):
            ErrorRateEstimator(min_questions=0)


class TestProfiling:
    @pytest.mark.parametrize("true_rate", [0.0, 0.1, 0.25])
    def test_recovers_true_error_rate(self, true_rate):
        service = make_service(true_rate, min_questions=50, seed=3)
        service.label_all(pairs(150) + pairs(150, matched=False))
        estimate = service.estimator.error_rate
        assert estimate is not None
        assert estimate == pytest.approx(true_rate, abs=0.05)

    def test_profile_snapshot(self):
        service = make_service(0.1, seed=1)
        service.label_all(pairs(60))
        profile = service.profile
        assert profile["questions_observed"] >= 60
        assert profile["error_rate"] is not None
        assert profile["error_rate_low"] <= profile["error_rate"]
        assert profile["error_rate"] <= profile["error_rate_high"]

    def test_exactly_one_observation_per_question(self):
        """Only the unconditional first two answers count — later answers
        exist because earlier ones disagreed (stopping-time bias)."""
        service = make_service(0.3, min_questions=1, seed=2)
        service.label_all(pairs(40), scheme=VoteScheme.STRONG_MAJORITY)
        assert service.estimator.n_questions == 40


class TestAdaptivePolicy:
    def test_threshold_validation(self):
        with pytest.raises(CrowdError):
            AdaptivePolicy(careful_below=0.2, sloppy_above=0.1)

    def test_adapt_matrix(self):
        policy = AdaptivePolicy(careful_below=0.05, sloppy_above=0.15)
        assert policy.adapt(VoteScheme.ASYMMETRIC, None) \
            is VoteScheme.ASYMMETRIC
        assert policy.adapt(VoteScheme.ASYMMETRIC, 0.01) \
            is VoteScheme.MAJORITY_2PLUS1
        assert policy.adapt(VoteScheme.ASYMMETRIC, 0.30) \
            is VoteScheme.STRONG_MAJORITY
        assert policy.adapt(VoteScheme.ASYMMETRIC, 0.10) \
            is VoteScheme.ASYMMETRIC

    def test_careful_crowd_gets_cheaper(self):
        """With a near-perfect crowd the adaptive service downgrades to
        2+1 and spends fewer answers than the fixed asymmetric scheme."""
        fixed = make_service(0.0, policy=None, seed=5)
        fixed.label_all(pairs(200))
        adaptive = make_service(0.0, policy=AdaptivePolicy(),
                                min_questions=20, seed=5)
        adaptive.label_all(pairs(200))
        assert adaptive.tracker.answers < fixed.tracker.answers

    def test_sloppy_crowd_gets_escalated(self):
        """With a noisy crowd the adaptive service escalates everything
        to strong majority.  The asymmetric scheme already guards
        against false positives, so the benefit shows on true matches:
        under asymmetric voting a unanimous wrong first pair (e^2)
        mislabels a match, while strong majority keeps asking."""
        def positive_accuracy(policy, seed):
            service = make_service(0.25, policy=policy, min_questions=20,
                                   seed=seed)
            # Warm-up on non-matches so the estimate forms, then measure
            # fresh true matches.
            service.label_all(pairs(60, matched=False))
            labels = service.label_all(pairs(240))
            return sum(1 for v in labels.values() if v) / 240

        seeds = range(5)
        fixed = np.mean([positive_accuracy(None, s) for s in seeds])
        adaptive = np.mean([
            positive_accuracy(AdaptivePolicy(), s) for s in seeds
        ])
        assert adaptive >= fixed


class TestDropInCompatibility:
    def test_cache_and_costs_still_work(self):
        service = make_service(0.0, seed=0)
        service.label_all(pairs(10))
        answers_before = service.tracker.answers
        service.label_all(pairs(10))  # cache hit
        assert service.tracker.answers == answers_before
        assert service.cache_size == 10

    def test_perfect_crowd_profile_is_zero(self):
        crowd = PerfectCrowd(MATCHES, rng=np.random.default_rng(0))
        service = ProfilingLabelingService(crowd, CrowdConfig(),
                                           min_questions=10)
        service.label_all(pairs(30))
        assert service.estimator.error_rate == 0.0
