"""The Blocker's density-aware sampling over A x B (Section 4.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.pairs import Pair
from repro.data.sampling import (
    blocker_sample,
    cartesian_size,
    iter_cartesian,
    random_pairs,
)
from repro.data.table import AttrType, Record, Schema, Table
from repro.exceptions import DataError

SCHEMA = Schema.from_pairs([("x", AttrType.STRING)])


def make_table(name: str, n: int) -> Table:
    return Table(name, SCHEMA,
                 [Record(f"{name}{i}", {"x": str(i)}) for i in range(n)])


class TestCartesian:
    def test_size(self):
        assert cartesian_size(make_table("a", 3), make_table("b", 4)) == 12

    def test_iter_covers_product_once(self):
        pairs = list(iter_cartesian(make_table("a", 3), make_table("b", 2)))
        assert len(pairs) == 6
        assert len(set(pairs)) == 6
        assert Pair("a2", "b1") in pairs


class TestBlockerSample:
    def test_sample_size_near_t_b(self, rng):
        table_a, table_b = make_table("a", 10), make_table("b", 100)
        sample = blocker_sample(table_a, table_b, t_b=200, rng=rng)
        # 20 rows of B x all 10 of A.
        assert len(sample) == 200

    def test_crosses_all_of_smaller_table(self, rng):
        table_a, table_b = make_table("a", 5), make_table("b", 50)
        sample = blocker_sample(table_a, table_b, t_b=100, rng=rng)
        a_ids = {pair.a_id for pair in sample}
        assert a_ids == {f"a{i}" for i in range(5)}

    def test_orientation_preserved_when_b_is_smaller(self, rng):
        table_a, table_b = make_table("a", 50), make_table("b", 5)
        sample = blocker_sample(table_a, table_b, t_b=100, rng=rng)
        for pair in sample:
            assert pair.a_id.startswith("a")
            assert pair.b_id.startswith("b")
        b_ids = {pair.b_id for pair in sample}
        assert b_ids == {f"b{i}" for i in range(5)}

    def test_seed_pairs_included(self, rng):
        table_a, table_b = make_table("a", 5), make_table("b", 50)
        seeds = [Pair("a0", "b49"), Pair("a4", "b48")]
        sample = blocker_sample(table_a, table_b, t_b=20, rng=rng,
                                seed_pairs=seeds)
        for seed in seeds:
            assert seed in sample

    def test_no_duplicate_seed_insertion(self, rng):
        table_a, table_b = make_table("a", 2), make_table("b", 2)
        sample = blocker_sample(table_a, table_b, t_b=4, rng=rng,
                                seed_pairs=[Pair("a0", "b0")])
        assert len(sample) == len(set(sample))

    def test_t_b_larger_than_product(self, rng):
        table_a, table_b = make_table("a", 3), make_table("b", 4)
        sample = blocker_sample(table_a, table_b, t_b=10_000, rng=rng)
        assert len(sample) == 12

    def test_empty_table_raises(self, rng):
        with pytest.raises(DataError):
            blocker_sample(make_table("a", 0), make_table("b", 5),
                           t_b=10, rng=rng)

    def test_bad_t_b_raises(self, rng):
        with pytest.raises(DataError):
            blocker_sample(make_table("a", 2), make_table("b", 2),
                           t_b=0, rng=rng)

    def test_deterministic_for_seed(self):
        table_a, table_b = make_table("a", 5), make_table("b", 50)
        s1 = blocker_sample(table_a, table_b, 50,
                            np.random.default_rng(3))
        s2 = blocker_sample(table_a, table_b, 50,
                            np.random.default_rng(3))
        assert s1 == s2


class TestRandomPairs:
    def test_unique_and_valid(self, rng):
        table_a, table_b = make_table("a", 6), make_table("b", 7)
        pairs = random_pairs(table_a, table_b, 30, rng)
        assert len(pairs) == 30
        assert len(set(pairs)) == 30
        for pair in pairs:
            assert pair.a_id in table_a and pair.b_id in table_b

    def test_n_capped_at_product(self, rng):
        pairs = random_pairs(make_table("a", 2), make_table("b", 3),
                             999, rng)
        assert len(pairs) == 6
