"""Deeper integration tests: multi-iteration behaviour and rule reuse."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    BlockerConfig,
    CorleoneConfig,
    EstimatorConfig,
    ForestConfig,
    LocatorConfig,
    MatcherConfig,
)
from repro.core.pipeline import Corleone
from repro.crowd.simulated import PerfectCrowd
from repro.synth.products import generate_products


@pytest.fixture(scope="module")
def iterating_run():
    """A products run configured to iterate (hard data, loose locator)."""
    dataset = generate_products(n_a=80, n_b=400, n_matches=30, seed=17)
    config = CorleoneConfig(
        forest=ForestConfig(n_trees=5),
        blocker=BlockerConfig(t_b=6000, top_k_rules=10,
                              max_labels_per_rule=60),
        matcher=MatcherConfig(batch_size=10, pool_size=40,
                              n_converged=8, n_degrade=6,
                              max_iterations=20),
        estimator=EstimatorConfig(probe_size=25, max_probes=40),
        locator=LocatorConfig(min_difficult_pairs=20),
        max_pipeline_iterations=3,
    )
    crowd = PerfectCrowd(dataset.matches, rng=np.random.default_rng(8))
    pipeline = Corleone(config, crowd, rng=np.random.default_rng(9))
    result = pipeline.run(dataset.table_a, dataset.table_b,
                          dataset.seed_labels)
    return dataset, result


class TestIterationMechanics:
    def test_working_sets_shrink(self, iterating_run):
        _, result = iterating_run
        sizes = [
            record.difficult_size
            for record in result.iterations
            if record.difficult_size is not None
        ]
        previous = len(result.candidates)
        for size in sizes:
            assert size < previous
            previous = size

    def test_kept_predictions_are_best_estimate(self, iterating_run):
        _, result = iterating_run
        estimates = [
            record.estimate.f1
            for record in result.iterations
            if record.estimate is not None
        ]
        if result.stop_reason == "no_improvement":
            # The final (worse) estimate was rejected: the kept
            # prediction corresponds to the best estimate seen.
            assert result.estimate.f1 == pytest.approx(max(estimates))

    def test_certified_rules_carry_across_iterations(self, iterating_run):
        _, result = iterating_run
        if len(result.iterations) < 2:
            pytest.skip("run converged in one iteration")
        first = result.iterations[0].estimate
        second = result.iterations[1].estimate
        if first is None or second is None or not first.applied_rules:
            pytest.skip("no rules to carry over")
        # Iteration 2 re-applies iteration 1's certified rules for free,
        # so its applied set includes them.
        assert set(first.applied_rules) <= set(second.applied_rules)

    def test_every_iteration_has_monotone_cost(self, iterating_run):
        _, result = iterating_run
        assert result.cost.dollars > 0
        total_attributed = result.blocker.pairs_labeled + sum(
            record.matcher_pairs_labeled
            + record.estimation_pairs_labeled
            + record.reduction_pairs_labeled
            for record in result.iterations
        )
        # Per-step attribution must not exceed the global meter (cache
        # hits make it strictly less than or equal).
        assert total_attributed <= result.cost.pairs_labeled + 4  # seeds

    def test_final_quality(self, iterating_run):
        dataset, result = iterating_run
        predicted = result.predicted_matches
        tp = len(predicted & dataset.matches)
        assert tp >= 0.7 * len(dataset.matches)
