"""The weighted blocking sampler (the §10 "better sampling" extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.pairs import Pair
from repro.data.sampling import blocker_sample, weighted_blocker_sample
from repro.data.table import AttrType, Record, Schema, Table
from repro.exceptions import DataError

SCHEMA = Schema.from_pairs([
    ("name", AttrType.STRING), ("value", AttrType.NUMERIC),
])


def clustered_tables(n_a=20, n_b=400, n_matched_rows=30, seed=0):
    """Matches concentrated in one corner of B (non-uniform placement).

    Matched B rows share a rare token ('zyzzyx<k>') with an A row; the
    rest of B uses common vocabulary.
    """
    rng = np.random.default_rng(seed)
    table_a = Table("a", SCHEMA)
    for i in range(n_a):
        table_a.add(Record(f"a{i}", {
            "name": f"zyzzyx{i} common words here", "value": float(i),
        }))
    table_b = Table("b", SCHEMA)
    matches = set()
    # Matched rows live at the very end of B (worst case for uniform
    # sampling assumptions about placement... placement doesn't matter
    # for uniform draws, but scarcity does).
    for j in range(n_b - n_matched_rows):
        table_b.add(Record(f"b{j}", {
            "name": "common words here again", "value": float(j),
        }))
    for k in range(n_matched_rows):
        j = n_b - n_matched_rows + k
        a_index = k % n_a
        table_b.add(Record(f"b{j}", {
            "name": f"zyzzyx{a_index} common words", "value": float(j),
        }))
        matches.add(Pair(f"a{a_index}", f"b{j}"))
    return table_a, table_b, matches


class TestWeightedSampler:
    def test_boosts_positive_density(self):
        table_a, table_b, matches = clustered_tables()
        t_b = 20 * 40  # 40 B rows of 400

        def density(sampler, seed):
            rng = np.random.default_rng(seed)
            sample = sampler(table_a, table_b, t_b, rng)
            positives = sum(1 for pair in sample if pair in matches)
            return positives / len(sample)

        uniform = np.mean([density(blocker_sample, s) for s in range(5)])
        weighted = np.mean([
            density(weighted_blocker_sample, s) for s in range(5)
        ])
        assert weighted > uniform * 1.5

    def test_sample_size_matches_uniform_sampler(self):
        table_a, table_b, _ = clustered_tables()
        rng = np.random.default_rng(1)
        sample = weighted_blocker_sample(table_a, table_b, 200, rng)
        # ceil(200 / 20) = 10 B rows x 20 A rows.
        assert len(sample) == 200

    def test_includes_seed_pairs(self):
        table_a, table_b, matches = clustered_tables()
        seeds = sorted(matches)[:2]
        rng = np.random.default_rng(1)
        sample = weighted_blocker_sample(table_a, table_b, 100, rng,
                                         seed_pairs=seeds)
        for seed in seeds:
            assert seed in sample

    def test_no_duplicates(self):
        table_a, table_b, _ = clustered_tables()
        rng = np.random.default_rng(2)
        sample = weighted_blocker_sample(table_a, table_b, 300, rng)
        assert len(sample) == len(set(sample))

    def test_explicit_attribute(self):
        table_a, table_b, _ = clustered_tables()
        rng = np.random.default_rng(3)
        sample = weighted_blocker_sample(table_a, table_b, 100, rng,
                                         attribute="name")
        assert sample

    def test_numeric_only_schema_rejected(self):
        schema = Schema.from_pairs([("x", AttrType.NUMERIC)])
        table_a = Table("a", schema, [Record("a0", {"x": 1.0})])
        table_b = Table("b", schema, [Record("b0", {"x": 2.0})])
        with pytest.raises(DataError):
            weighted_blocker_sample(table_a, table_b, 10,
                                    np.random.default_rng(0))

    def test_empty_table_rejected(self):
        table_a, table_b, _ = clustered_tables()
        empty = Table("e", SCHEMA)
        with pytest.raises(DataError):
            weighted_blocker_sample(empty, table_b, 10,
                                    np.random.default_rng(0))

    def test_orientation_preserved_when_swapped(self):
        table_a, table_b, _ = clustered_tables()
        # Pass the big table as A: pairs must still be (a_id from A, ...).
        rng = np.random.default_rng(4)
        sample = weighted_blocker_sample(table_b, table_a, 100, rng)
        for pair in sample[:20]:
            assert pair.a_id.startswith("b")
            assert pair.b_id.startswith("a")
