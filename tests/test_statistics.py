"""Sampling statistics: z-values, FPC margins, sample sizes."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st
from scipy import stats as scipy_stats

from repro.exceptions import EstimationError
from repro.rules.statistics import (
    fpc_error_margin,
    proportion_interval,
    required_sample_size,
    z_value,
)


class TestZValue:
    @pytest.mark.parametrize("confidence", [0.5, 0.8, 0.9, 0.95, 0.99, 0.999])
    def test_matches_scipy(self, confidence):
        expected = scipy_stats.norm.ppf(1 - (1 - confidence) / 2)
        assert z_value(confidence) == pytest.approx(expected, abs=1e-9)

    def test_95_is_1_96(self):
        assert z_value(0.95) == pytest.approx(1.959964, abs=1e-5)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 1.5])
    def test_out_of_range(self, bad):
        with pytest.raises(EstimationError):
            z_value(bad)

    @given(st.floats(0.01, 0.999))
    def test_monotone(self, confidence):
        assert z_value(confidence + 0.0005) >= z_value(confidence)


class TestErrorMargin:
    def test_paper_example(self):
        """Section 6.1: R*=0.8, margin 0.025 needs n_ap >= 984."""
        # At n = 984 the infinite-population margin dips below 0.025.
        margin = fpc_error_margin(0.8, 984, population=10**9)
        assert margin <= 0.025
        margin_983 = fpc_error_margin(0.8, 983, population=10**9)
        assert margin_983 > 0.0249

    def test_full_sample_zero_margin(self):
        assert fpc_error_margin(0.5, 10, population=10) == 0.0

    def test_single_member_population(self):
        assert fpc_error_margin(1.0, 1, population=1) == 0.0

    def test_fpc_shrinks_margin(self):
        infinite = fpc_error_margin(0.5, 50, population=10**9)
        finite = fpc_error_margin(0.5, 50, population=100)
        assert finite < infinite

    def test_degenerate_proportion(self):
        assert fpc_error_margin(0.0, 10, population=100) == 0.0
        assert fpc_error_margin(1.0, 10, population=100) == 0.0

    @pytest.mark.parametrize("kwargs", [
        dict(p=0.5, n=0, population=10),
        dict(p=0.5, n=11, population=10),
        dict(p=1.5, n=5, population=10),
    ])
    def test_invalid_inputs(self, kwargs):
        with pytest.raises(EstimationError):
            fpc_error_margin(**kwargs)

    @given(p=st.floats(0, 1), n=st.integers(1, 500),
           extra=st.integers(0, 10_000))
    def test_margin_nonnegative_and_decreasing_in_n(self, p, n, extra):
        population = n + extra
        margin = fpc_error_margin(p, n, population)
        assert margin >= 0.0
        if n + 1 <= population:
            assert fpc_error_margin(p, n + 1, population) <= margin + 1e-12


class TestInterval:
    def test_clipping(self):
        low, high = proportion_interval(0.99, 5, population=10**6)
        assert 0.0 <= low <= 0.99 <= high <= 1.0

    def test_width_is_twice_margin_when_interior(self):
        margin = fpc_error_margin(0.5, 100, 10**6)
        low, high = proportion_interval(0.5, 100, 10**6)
        assert high - low == pytest.approx(2 * margin)


class TestRequiredSampleSize:
    def test_inverts_margin(self):
        population = 50_000
        n = required_sample_size(0.5, 0.05, population)
        assert fpc_error_margin(0.5, n, population) <= 0.05
        if n > 1:
            assert fpc_error_margin(0.5, n - 1, population) > 0.05

    def test_capped_at_population(self):
        assert required_sample_size(0.5, 0.001, population=30) == 30

    def test_zero_variance(self):
        assert required_sample_size(0.0, 0.05, population=100) == 1
        assert required_sample_size(1.0, 0.05, population=100) == 1

    def test_worst_case_at_half(self):
        n_half = required_sample_size(0.5, 0.05, 10**6)
        n_point9 = required_sample_size(0.9, 0.05, 10**6)
        assert n_half >= n_point9

    @pytest.mark.parametrize("kwargs", [
        dict(p=0.5, epsilon=0.0, population=10),
        dict(p=0.5, epsilon=0.05, population=0),
        dict(p=-0.1, epsilon=0.05, population=10),
    ])
    def test_invalid_inputs(self, kwargs):
        with pytest.raises(EstimationError):
            required_sample_size(**kwargs)

    @given(p=st.floats(0.05, 0.95), eps=st.floats(0.01, 0.2),
           population=st.integers(10, 10**6))
    def test_returned_size_always_sufficient(self, p, eps, population):
        n = required_sample_size(p, eps, population)
        assert 1 <= n <= population
        assert fpc_error_margin(p, n, population) <= eps + 1e-9
