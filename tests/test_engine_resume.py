"""Crash/resume: a killed run continues to a bit-identical result.

The sweep kills a checkpointed run at *every* checkpoint boundary —
stage boundaries and mid-matcher-iteration checkpoints alike — by
subscribing a sink that raises on ``checkpoint_written``, then resumes
from the directory and demands the exact golden result (compared as
:func:`repro.persistence.result_report` documents, which cover
predictions, iteration records and the cost snapshot).  Runs on the
restaurants and products synthetic datasets; a separate test injects
``BudgetExhaustedError`` mid-run and resumes past it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import persistence
from repro.config import (
    BlockerConfig,
    CorleoneConfig,
    EstimatorConfig,
    ForestConfig,
    LocatorConfig,
    MatcherConfig,
)
from repro.core.dedup import Deduplicator
from repro.core.pipeline import Corleone
from repro.crowd.simulated import PerfectCrowd, SimulatedCrowd
from repro.engine import EVENT_CHECKPOINT_WRITTEN, load_checkpoint
from repro.exceptions import BudgetExhaustedError
from repro.synth.products import generate_products
from repro.synth.restaurants import generate_restaurants


class _Killed(Exception):
    """Raised by the killer sink to simulate a crash at a checkpoint."""


def _killer_sink(surviving_checkpoints: int):
    """A bus sink that raises after ``surviving_checkpoints`` writes.

    The checkpoint file is written *before* the event is emitted, so the
    simulated crash always leaves a complete checkpoint behind — exactly
    the guarantee a real kill between write and return would have.
    """
    seen = [0]

    def sink(event):
        if event.name == EVENT_CHECKPOINT_WRITTEN:
            seen[0] += 1
            if seen[0] > surviving_checkpoints:
                raise _Killed()

    return sink


def _engine_config(max_pipeline_iterations: int, t_b: int) -> CorleoneConfig:
    """A fast full-pipeline configuration for the resume sweeps."""
    return CorleoneConfig(
        forest=ForestConfig(n_trees=5),
        blocker=BlockerConfig(t_b=t_b, top_k_rules=10,
                              max_labels_per_rule=60),
        matcher=MatcherConfig(batch_size=10, pool_size=40,
                              n_converged=8, n_degrade=6,
                              max_iterations=12),
        estimator=EstimatorConfig(probe_size=25, max_probes=30),
        locator=LocatorConfig(min_difficult_pairs=30),
        max_pipeline_iterations=max_pipeline_iterations,
        seed=0,
    )


_SCENARIOS = {
    # name -> (dataset factory, config, crowd error rate)
    "restaurants": (
        lambda: generate_restaurants(n_a=60, n_b=40, n_matches=15, seed=7),
        _engine_config(max_pipeline_iterations=2, t_b=1500),
        0.05,
    ),
    "products": (
        lambda: generate_products(n_a=40, n_b=120, n_matches=18, seed=17),
        _engine_config(max_pipeline_iterations=2, t_b=3000),
        0.0,
    ),
}


@pytest.fixture(scope="module", params=sorted(_SCENARIOS))
def scenario(request):
    """(name, dataset, config, crowd factory, golden report) per dataset."""
    name = request.param
    make_dataset, config, error_rate = _SCENARIOS[name]
    dataset = make_dataset()

    def crowd():
        if error_rate:
            return SimulatedCrowd(dataset.matches, error_rate=error_rate,
                                  rng=np.random.default_rng(11))
        return PerfectCrowd(dataset.matches, rng=np.random.default_rng(11))

    golden = Corleone(config, crowd(), seed=123).run(
        dataset.table_a, dataset.table_b, dataset.seed_labels)
    return name, dataset, config, crowd, persistence.result_report(golden)


class TestResumeSweep:
    def test_uninterrupted_checkpointed_run_matches_golden(
            self, scenario, tmp_path):
        """Checkpointing itself must not perturb the run."""
        _, dataset, config, crowd, golden_report = scenario
        run_dir = tmp_path / "run"
        result = Corleone(config, crowd(), seed=123, run_dir=run_dir).run(
            dataset.table_a, dataset.table_b, dataset.seed_labels)
        assert persistence.result_report(result) == golden_report

    def test_resume_is_bit_identical_at_every_checkpoint(
            self, scenario, tmp_path):
        """Kill at checkpoint k, resume, compare — for every k."""
        _, dataset, config, crowd, golden_report = scenario
        # First, count the checkpoints of an uninterrupted run.
        probe_dir = tmp_path / "probe"
        Corleone(config, crowd(), seed=123, run_dir=probe_dir).run(
            dataset.table_a, dataset.table_b, dataset.seed_labels)
        n_checkpoints = load_checkpoint(probe_dir)["index"] + 1
        assert n_checkpoints >= 5  # at least one per stage

        for kill_at in range(n_checkpoints):
            run_dir = tmp_path / f"kill{kill_at}"
            pipeline = Corleone(config, crowd(), seed=123, run_dir=run_dir)
            pipeline.bus.subscribe(_killer_sink(kill_at))
            with pytest.raises(_Killed):
                pipeline.run(dataset.table_a, dataset.table_b,
                             dataset.seed_labels)
            resumed = Corleone.resume(run_dir, crowd())
            assert persistence.result_report(resumed) == golden_report, (
                f"resume after checkpoint {kill_at} diverged"
            )

    def test_resumed_trace_appends_to_the_original(self, scenario,
                                                   tmp_path):
        """The trace survives the crash and grows on resume."""
        from repro.engine.events import read_trace
        _, dataset, config, crowd, _ = scenario
        run_dir = tmp_path / "run"
        pipeline = Corleone(config, crowd(), seed=123, run_dir=run_dir)
        pipeline.bus.subscribe(_killer_sink(2))
        with pytest.raises(_Killed):
            pipeline.run(dataset.table_a, dataset.table_b,
                         dataset.seed_labels)
        before = len(read_trace(run_dir / "trace.jsonl"))
        Corleone.resume(run_dir, crowd())
        assert len(read_trace(run_dir / "trace.jsonl")) > before


class TestBudgetExhaustionResume:
    def test_injected_exhaustion_then_resume_reaches_golden(
            self, scenario, tmp_path, monkeypatch):
        """A run aborted by ``BudgetExhaustedError`` resumes to golden.

        The injected error hits on entry to the train-matcher stage —
        after the block-stage checkpoint — so the run returns a graceful
        partial result, and the directory still resumes to the
        uninterrupted result.
        """
        from repro.engine.stages import TrainMatcherStage
        _, dataset, config, crowd, golden_report = scenario
        run_dir = tmp_path / "run"
        original = TrainMatcherStage.run

        def exhausted(self, state, ctx):
            raise BudgetExhaustedError(1.0, 1.0)

        monkeypatch.setattr(TrainMatcherStage, "run", exhausted)
        partial = Corleone(config, crowd(), seed=123, run_dir=run_dir).run(
            dataset.table_a, dataset.table_b, dataset.seed_labels)
        assert partial.stop_reason == "budget_exhausted"

        monkeypatch.setattr(TrainMatcherStage, "run", original)
        resumed = Corleone.resume(run_dir, crowd())
        assert persistence.result_report(resumed) == golden_report


class TestDeduplicatorOnTheEngine:
    def test_dedup_run_checkpoints_and_stays_identical(self, tmp_path):
        """The dedup reduction rides the same engine and run layout."""
        from repro.core.dedup import canonical_pair
        from repro.data.table import Record, Table
        from repro.synth.restaurants import RESTAURANT_SCHEMA

        dataset = generate_restaurants(n_a=40, n_b=30, n_matches=12,
                                       seed=13)
        table = Table("dirty", RESTAURANT_SCHEMA)
        for source in (dataset.table_a, dataset.table_b):
            for record in source:
                table.add(Record(f"{source.name}_{record.record_id}",
                                 record.values))
        duplicates = {
            canonical_pair(f"fodors_{pair.a_id}", f"zagat_{pair.b_id}")
            for pair in dataset.matches
        }
        seeds = dict.fromkeys(sorted(duplicates)[:2], True)
        seeds[canonical_pair(table.at(0).record_id,
                             table.at(1).record_id)] = False
        seeds[canonical_pair(table.at(0).record_id,
                             table.at(2).record_id)] = False
        config = _engine_config(max_pipeline_iterations=1, t_b=10_000)

        def crowd():
            return PerfectCrowd(duplicates, rng=np.random.default_rng(2))

        run_dir = tmp_path / "dedup"
        golden = Deduplicator(config, crowd(), seed=9).run(table, seeds)
        checkpointed = Deduplicator(config, crowd(), seed=9,
                                    run_dir=run_dir).run(table, seeds)
        assert (run_dir / "checkpoint.json").is_file()
        assert (run_dir / "trace.jsonl").is_file()
        assert checkpointed.duplicate_pairs == golden.duplicate_pairs
        assert checkpointed.clusters == golden.clusters
