"""Shared fixtures: small tables, feature libraries and crowds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    BlockerConfig,
    CorleoneConfig,
    EstimatorConfig,
    ForestConfig,
    LocatorConfig,
    MatcherConfig,
)
from repro.crowd.simulated import PerfectCrowd, SimulatedCrowd
from repro.crowd.service import LabelingService
from repro.data.pairs import Pair
from repro.data.table import AttrType, Record, Schema, Table
from repro.features.library import build_feature_library
from repro.features.vectorize import vectorize_pairs
from repro.synth.restaurants import generate_restaurants


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture
def book_schema() -> Schema:
    return Schema.from_pairs([
        ("title", AttrType.STRING),
        ("author", AttrType.STRING),
        ("pages", AttrType.NUMERIC),
    ])


@pytest.fixture
def book_tables(book_schema: Schema) -> tuple[Table, Table]:
    """Two tiny aligned book tables with obvious matches a0-b0, a1-b1."""
    table_a = Table("a", book_schema, [
        Record("a0", {"title": "data mining", "author": "joe smith",
                      "pages": 234.0}),
        Record("a1", {"title": "database systems", "author": "ann lee",
                      "pages": 512.0}),
        Record("a2", {"title": "machine learning", "author": "bo chen",
                      "pages": 310.0}),
    ])
    table_b = Table("b", book_schema, [
        Record("b0", {"title": "data mining", "author": "joseph smith",
                      "pages": 234.0}),
        Record("b1", {"title": "database systems", "author": "a. lee",
                      "pages": 512.0}),
        Record("b2", {"title": "operating systems", "author": "cy wu",
                      "pages": 410.0}),
    ])
    return table_a, table_b


@pytest.fixture
def book_matches() -> frozenset[Pair]:
    return frozenset({Pair("a0", "b0"), Pair("a1", "b1")})


@pytest.fixture
def book_candidates(book_tables):
    """All 9 pairs of the book tables, vectorized."""
    table_a, table_b = book_tables
    library = build_feature_library(table_a, table_b)
    pairs = [
        Pair(a.record_id, b.record_id)
        for a in table_a for b in table_b
    ]
    return vectorize_pairs(table_a, table_b, pairs, library), library


@pytest.fixture
def tiny_dataset():
    """A small restaurants dataset for integration-style tests."""
    return generate_restaurants(n_a=60, n_b=40, n_matches=16, seed=7)


@pytest.fixture
def fast_config() -> CorleoneConfig:
    """A configuration tuned so full pipeline tests run in seconds."""
    return CorleoneConfig(
        forest=ForestConfig(n_trees=5),
        blocker=BlockerConfig(t_b=3000, top_k_rules=10,
                              max_labels_per_rule=60),
        matcher=MatcherConfig(batch_size=10, pool_size=40,
                              n_converged=8, n_degrade=6,
                              max_iterations=25),
        estimator=EstimatorConfig(probe_size=25, max_probes=40),
        locator=LocatorConfig(min_difficult_pairs=30),
        max_pipeline_iterations=2,
        seed=0,
    )


@pytest.fixture
def perfect_service(tiny_dataset, fast_config) -> LabelingService:
    crowd = PerfectCrowd(tiny_dataset.matches,
                         rng=np.random.default_rng(5))
    return LabelingService(crowd, fast_config.crowd)


@pytest.fixture
def noisy_service(tiny_dataset, fast_config) -> LabelingService:
    crowd = SimulatedCrowd(tiny_dataset.matches, error_rate=0.1,
                           rng=np.random.default_rng(5))
    return LabelingService(crowd, fast_config.crowd)
