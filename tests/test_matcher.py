"""The crowdsourced active-learning matcher (Section 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CorleoneConfig, ForestConfig, MatcherConfig
from repro.core.matcher import ActiveLearningMatcher
from repro.crowd.service import LabelingService
from repro.crowd.simulated import PerfectCrowd
from repro.data.pairs import CandidateSet, Pair
from repro.exceptions import DataError


def synthetic_candidates(n: int = 400, seed: int = 0):
    """A linearly separable EM-like candidate set with 10% positives."""
    rng = np.random.default_rng(seed)
    features = rng.random((n, 4))
    labels = (features[:, 0] > 0.75) & (features[:, 1] > 0.6)
    pairs = [Pair(f"a{i}", f"b{i}") for i in range(n)]
    matches = {pairs[i] for i in np.flatnonzero(labels)}
    candidates = CandidateSet(pairs, features,
                              ["f0", "f1", "f2", "f3"])
    return candidates, matches, labels


@pytest.fixture
def matcher_setup():
    candidates, matches, labels = synthetic_candidates()
    config = CorleoneConfig(
        forest=ForestConfig(n_trees=5),
        matcher=MatcherConfig(batch_size=10, pool_size=50, n_converged=8,
                              n_degrade=6, max_iterations=30),
    )
    crowd = PerfectCrowd(matches, rng=np.random.default_rng(1))
    service = LabelingService(crowd, config.crowd)
    rng = np.random.default_rng(2)
    matcher = ActiveLearningMatcher(config, service, rng)
    # Two seed positives, two seed negatives.
    positive = sorted(matches)[:2]
    negative = [p for p in candidates.pairs if p not in matches][:2]
    seeds = {p: True for p in positive} | {p: False for p in negative}
    return matcher, candidates, matches, labels, seeds, service


class TestTraining:
    def test_learns_the_concept(self, matcher_setup):
        matcher, candidates, _, labels, seeds, _ = matcher_setup
        result = matcher.train(candidates, seeds)
        accuracy = (result.predictions == labels).mean()
        assert accuracy >= 0.95

    def test_stops_before_max_iterations(self, matcher_setup):
        matcher, candidates, _, _, seeds, _ = matcher_setup
        result = matcher.train(candidates, seeds)
        assert result.stop_reason in (
            "near_absolute", "converged", "degrading"
        )
        assert result.n_iterations < 30

    def test_labels_far_fewer_than_pool(self, matcher_setup):
        matcher, candidates, _, _, seeds, _ = matcher_setup
        result = matcher.train(candidates, seeds)
        assert result.pairs_labeled < len(candidates) // 2

    def test_confidence_history_recorded(self, matcher_setup):
        matcher, candidates, _, _, seeds, _ = matcher_setup
        result = matcher.train(candidates, seeds)
        assert len(result.confidence_history) == result.n_iterations
        assert all(0.0 <= c <= 1.0 + 1e-9
                   for c in result.confidence_history)

    def test_forest_mostly_agrees_with_clean_labels(self, matcher_setup):
        """Predictions come from the forest (noise smoothing), but with a
        perfect crowd on separable data they should echo the labels."""
        matcher, candidates, matches, _, seeds, _ = matcher_setup
        result = matcher.train(candidates, seeds)
        agree = sum(
            1 for row, label in result.labeled_rows.items()
            if result.predictions[row] == label
        )
        assert agree / len(result.labeled_rows) >= 0.95

    def test_empty_candidates_rejected(self, matcher_setup):
        matcher, candidates, _, _, seeds, _ = matcher_setup
        empty = CandidateSet.empty(candidates.feature_names)
        with pytest.raises(DataError):
            matcher.train(empty, seeds)

    def test_no_labels_at_all_rejected(self, matcher_setup):
        matcher, candidates, _, _, _, _ = matcher_setup
        with pytest.raises(DataError):
            matcher.train(candidates, {})

    def test_extra_vectors_used_for_training(self, matcher_setup):
        """Seeds living outside the candidate set still train the model."""
        matcher, candidates, _, labels, _, _ = matcher_setup
        extra_x = np.array([
            [0.9, 0.9, 0.5, 0.5],
            [0.95, 0.8, 0.1, 0.2],
            [0.1, 0.1, 0.5, 0.5],
            [0.2, 0.3, 0.9, 0.9],
        ])
        extra_y = np.array([True, True, False, False])
        result = matcher.train(candidates, {}, extra_vectors=extra_x,
                               extra_labels=extra_y)
        assert (result.predictions == labels).mean() >= 0.9

    def test_predicted_pairs_helper(self, matcher_setup):
        matcher, candidates, matches, _, seeds, _ = matcher_setup
        result = matcher.train(candidates, seeds)
        predicted = result.predicted_pairs(candidates)
        assert predicted  # finds something
        hits = len(predicted & matches) / len(predicted)
        assert hits >= 0.9


class TestBatchSelection:
    def test_batch_prefers_uncertain_examples(self, matcher_setup):
        """The entropy-weighted batch should skew toward the decision
        boundary rather than random rows."""
        matcher, candidates, matches, labels, seeds, service = matcher_setup
        result = matcher.train(candidates, seeds)
        labeled = set(result.labeled_rows) - {
            candidates.index_of(p) for p in seeds if p in candidates
        }
        if not labeled:
            pytest.skip("matcher stopped before labelling anything")
        # Boundary band: f0 in (0.6, 0.9) — where the concept flips.
        in_band = [
            row for row in labeled
            if 0.55 <= candidates.features[row, 0] <= 0.95
        ]
        base_rate = np.mean(
            (candidates.features[:, 0] >= 0.55)
            & (candidates.features[:, 0] <= 0.95)
        )
        assert len(in_band) / len(labeled) > base_rate

    def test_max_iterations_respected(self):
        candidates, matches, _ = synthetic_candidates(seed=5)
        config = CorleoneConfig(
            forest=ForestConfig(n_trees=3),
            matcher=MatcherConfig(batch_size=5, pool_size=20,
                                  n_converged=1000, n_high=1000,
                                  n_degrade=1000, max_iterations=4),
        )
        crowd = PerfectCrowd(matches, rng=np.random.default_rng(1))
        service = LabelingService(crowd, config.crowd)
        matcher = ActiveLearningMatcher(config, service,
                                        np.random.default_rng(2))
        seeds = dict.fromkeys(sorted(matches)[:2], True)
        seeds.update(dict.fromkeys(
            [p for p in candidates.pairs if p not in matches][:2], False
        ))
        result = matcher.train(candidates, seeds)
        assert result.n_iterations == 4
        assert result.stop_reason == "max_iterations"


class TestDeterminism:
    def test_same_seed_same_result(self):
        def run():
            candidates, matches, _ = synthetic_candidates(seed=3)
            config = CorleoneConfig(
                forest=ForestConfig(n_trees=5),
                matcher=MatcherConfig(batch_size=10, pool_size=40,
                                      n_converged=6, max_iterations=15),
            )
            crowd = PerfectCrowd(matches, rng=np.random.default_rng(1))
            service = LabelingService(crowd, config.crowd)
            matcher = ActiveLearningMatcher(config, service,
                                            np.random.default_rng(2))
            seeds = dict.fromkeys(sorted(matches)[:2], True)
            seeds.update(dict.fromkeys(
                [p for p in candidates.pairs if p not in matches][:2],
                False,
            ))
            return matcher.train(candidates, seeds)

        r1, r2 = run(), run()
        np.testing.assert_array_equal(r1.predictions, r2.predictions)
        assert r1.confidence_history == r2.confidence_history


class TestSelectionStrategies:
    def _run(self, strategy, seed=6):
        candidates, matches, labels = synthetic_candidates(seed=seed)
        config = CorleoneConfig(
            forest=ForestConfig(n_trees=5),
            matcher=MatcherConfig(batch_size=10, pool_size=50,
                                  n_converged=8, n_degrade=6,
                                  max_iterations=20,
                                  selection_strategy=strategy),
        )
        crowd = PerfectCrowd(matches, rng=np.random.default_rng(1))
        service = LabelingService(crowd, config.crowd)
        matcher = ActiveLearningMatcher(config, service,
                                        np.random.default_rng(2))
        seeds = dict.fromkeys(sorted(matches)[:2], True)
        seeds.update(dict.fromkeys(
            [p for p in candidates.pairs if p not in matches][:2], False
        ))
        result = matcher.train(candidates, seeds)
        accuracy = (result.predictions == labels).mean()
        return accuracy, result

    @pytest.mark.parametrize("strategy",
                             ["entropy_weighted", "top_entropy", "random"])
    def test_all_strategies_learn(self, strategy):
        accuracy, _ = self._run(strategy)
        assert accuracy >= 0.85

    def test_active_beats_random_on_skewed_data(self):
        """With rare positives, entropy selection finds the boundary
        faster than passive sampling (the Baseline-1 story)."""
        active = np.mean([self._run("entropy_weighted", seed=s)[0]
                          for s in (6, 7)])
        passive = np.mean([self._run("random", seed=s)[0]
                           for s in (6, 7)])
        assert active >= passive - 0.01

    def test_unknown_strategy_rejected(self):
        from repro.exceptions import ConfigurationError
        with pytest.raises(ConfigurationError):
            CorleoneConfig(
                matcher=MatcherConfig(selection_strategy="psychic")
            )
