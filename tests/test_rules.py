"""Predicates and rules: evaluation, coverage, simplification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import RuleError
from repro.rules.predicates import Predicate
from repro.rules.rule import Rule, simplify_predicates


def pred(index: int, le: bool, threshold: float,
         nan_ok: bool = False) -> Predicate:
    return Predicate(index, f"f{index}", le, threshold,
                     nan_satisfies=nan_ok)


class TestPredicate:
    def test_le_evaluation(self):
        matrix = np.array([[0.2], [0.8], [np.nan]])
        np.testing.assert_array_equal(
            pred(0, True, 0.5).evaluate(matrix), [True, False, False]
        )

    def test_gt_evaluation(self):
        matrix = np.array([[0.2], [0.8], [np.nan]])
        np.testing.assert_array_equal(
            pred(0, False, 0.5).evaluate(matrix), [False, True, False]
        )

    def test_nan_satisfies(self):
        matrix = np.array([[np.nan]])
        assert pred(0, True, 0.5, nan_ok=True).evaluate(matrix)[0]

    def test_out_of_range_feature(self):
        with pytest.raises(RuleError):
            pred(3, True, 0.5).evaluate(np.zeros((2, 2)))

    def test_one_dim_matrix_rejected(self):
        with pytest.raises(RuleError):
            pred(0, True, 0.5).evaluate(np.zeros(3))

    def test_negative_index_rejected(self):
        with pytest.raises(RuleError):
            Predicate(-1, "f", True, 0.5)

    def test_nonfinite_threshold_rejected(self):
        with pytest.raises(RuleError):
            Predicate(0, "f", True, float("inf"))

    def test_implies(self):
        assert pred(0, True, 0.3).implies(pred(0, True, 0.5))
        assert not pred(0, True, 0.5).implies(pred(0, True, 0.3))
        assert pred(0, False, 0.5).implies(pred(0, False, 0.3))
        assert not pred(0, True, 0.3).implies(pred(1, True, 0.5))
        assert not pred(0, True, 0.3).implies(pred(0, False, 0.5))

    def test_str(self):
        assert str(pred(0, True, 0.25)) == "f0 <= 0.25"
        assert str(pred(1, False, 0.5)) == "f1 > 0.5"


class TestRule:
    def test_conjunction(self):
        rule = Rule([pred(0, True, 0.5), pred(1, False, 0.5)],
                    predicts_match=False)
        matrix = np.array([
            [0.2, 0.8],   # both satisfied -> covered
            [0.2, 0.2],   # second fails
            [0.8, 0.8],   # first fails
        ])
        np.testing.assert_array_equal(
            rule.applies(matrix), [True, False, False]
        )
        np.testing.assert_array_equal(rule.coverage_indices(matrix), [0])

    def test_empty_rule_rejected(self):
        with pytest.raises(RuleError):
            Rule([], predicts_match=False)

    def test_is_negative(self):
        assert Rule([pred(0, True, 1)], predicts_match=False).is_negative
        assert not Rule([pred(0, True, 1)], predicts_match=True).is_negative

    def test_equality_ignores_predicate_order(self):
        r1 = Rule([pred(0, True, 0.5), pred(1, False, 0.2)], False)
        r2 = Rule([pred(1, False, 0.2), pred(0, True, 0.5)], False)
        assert r1 == r2
        assert hash(r1) == hash(r2)

    def test_polarity_distinguishes_rules(self):
        r1 = Rule([pred(0, True, 0.5)], False)
        r2 = Rule([pred(0, True, 0.5)], True)
        assert r1 != r2

    def test_feature_indices(self):
        rule = Rule([pred(0, True, 0.5), pred(0, False, 0.1),
                     pred(2, True, 0.9)], False)
        assert rule.feature_indices == frozenset({0, 2})

    def test_stats_precision_upper_bound(self):
        rule = Rule([pred(0, True, 0.5)], predicts_match=False)
        matrix = np.array([[0.1], [0.2], [0.3], [0.9]])
        # Rows 0-2 covered; row 1 is a known positive (contrary).
        stats = rule.stats(matrix, contrary_rows=[1, 3])
        assert stats.coverage == 3
        assert stats.precision_upper_bound == pytest.approx(2 / 3)

    def test_stats_empty_coverage(self):
        rule = Rule([pred(0, True, -1.0)], predicts_match=False)
        stats = rule.stats(np.array([[0.5]]), contrary_rows=[])
        assert stats.coverage == 0
        assert stats.precision_upper_bound == 0.0

    def test_str_mentions_verdict(self):
        rule = Rule([pred(0, True, 0.5)], predicts_match=False)
        assert "NO MATCH" in str(rule)
        rule = Rule([pred(0, True, 0.5)], predicts_match=True)
        assert str(rule).endswith("MATCH")


class TestSimplify:
    def test_merges_same_direction(self):
        merged = simplify_predicates([
            pred(0, True, 0.8), pred(0, True, 0.5), pred(0, True, 0.6),
        ])
        assert len(merged) == 1
        assert merged[0].threshold == 0.5

    def test_gt_takes_max(self):
        merged = simplify_predicates([
            pred(0, False, 0.1), pred(0, False, 0.4),
        ])
        assert merged[0].threshold == 0.4

    def test_different_directions_kept(self):
        merged = simplify_predicates([
            pred(0, True, 0.8), pred(0, False, 0.2),
        ])
        assert len(merged) == 2

    def test_nan_flag_anded(self):
        merged = simplify_predicates([
            pred(0, True, 0.8, nan_ok=True), pred(0, True, 0.5, nan_ok=False),
        ])
        assert merged[0].nan_satisfies is False

    def test_preserves_first_seen_order(self):
        merged = simplify_predicates([
            pred(1, True, 0.5), pred(0, False, 0.5), pred(1, True, 0.2),
        ])
        assert [p.feature_index for p in merged] == [1, 0]

    def test_simplified_rule_equivalent(self, rng):
        """A simplified conjunction covers exactly the same rows."""
        raw = [pred(0, True, 0.9), pred(0, True, 0.6),
               pred(1, False, 0.1), pred(1, False, 0.3)]
        matrix = rng.random((200, 2))
        rule_raw = Rule(raw, False)
        rule_simple = Rule(simplify_predicates(raw), False)
        np.testing.assert_array_equal(
            rule_raw.applies(matrix), rule_simple.applies(matrix)
        )
