"""Developer blocking and the two traditional baselines (Section 9.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CorleoneConfig, ForestConfig
from repro.core.baselines import (
    build_baseline_candidates,
    developer_blocking,
    run_baseline,
)
from repro.data.pairs import Pair
from repro.metrics import blocking_recall
from repro.synth.citations import generate_citations
from repro.synth.products import generate_products
from repro.synth.restaurants import generate_restaurants

CONFIG = CorleoneConfig(forest=ForestConfig(n_trees=5))


@pytest.fixture(scope="module")
def small_citations():
    return generate_citations(n_a=60, n_b=400, n_matches=100, seed=5)


@pytest.fixture(scope="module")
def small_products():
    return generate_products(n_a=60, n_b=300, n_matches=25, seed=5)


class TestDeveloperBlocking:
    def test_restaurants_no_blocking(self):
        dataset = generate_restaurants(n_a=30, n_b=20, n_matches=8, seed=1)
        pairs = developer_blocking(dataset)
        assert len(pairs) == 600

    def test_citations_blocking_reduces_and_keeps_matches(
            self, small_citations):
        pairs = developer_blocking(small_citations)
        assert len(pairs) < 60 * 400
        recall = blocking_recall(pairs, small_citations.matches)
        assert recall >= 0.9

    def test_products_blocking_requires_same_brand(self, small_products):
        pairs = developer_blocking(small_products)
        for pair in pairs[:200]:
            brand_a = small_products.table_a[pair.a_id].get("brand")
            brand_b = small_products.table_b[pair.b_id].get("brand")
            assert brand_a.lower() == brand_b.lower()

    def test_products_blocking_recall(self, small_products):
        pairs = developer_blocking(small_products)
        assert blocking_recall(pairs, small_products.matches) >= 0.9

    def test_no_duplicate_pairs(self, small_citations):
        pairs = developer_blocking(small_citations)
        assert len(pairs) == len(set(pairs))


class TestRunBaseline:
    def test_small_training_set_underperforms(self, small_citations):
        candidates = build_baseline_candidates(small_citations)
        tiny = run_baseline(small_citations, n_train=20, config=CONFIG,
                            candidates=candidates, seed=1,
                            name="baseline1")
        large = run_baseline(small_citations, n_train=len(candidates) // 5,
                             config=CONFIG, candidates=candidates, seed=1,
                             name="baseline2")
        assert large.f1 >= tiny.f1

    def test_result_fields(self, small_citations):
        candidates = build_baseline_candidates(small_citations)
        result = run_baseline(small_citations, n_train=50, config=CONFIG,
                              candidates=candidates, name="b1")
        assert result.name == "b1"
        assert result.n_train == 50
        assert result.n_candidates == len(candidates)
        assert 0.0 <= result.f1 <= 1.0

    def test_n_train_capped(self, small_citations):
        candidates = build_baseline_candidates(small_citations)
        result = run_baseline(small_citations, n_train=10**9,
                              config=CONFIG, candidates=candidates)
        assert result.n_train == len(candidates)

    def test_blocked_out_matches_count_as_misses(self, small_citations):
        """Recall is against all gold matches, not just candidates."""
        candidates = build_baseline_candidates(small_citations)
        survivors = set(candidates.pairs)
        lost = [p for p in small_citations.matches if p not in survivors]
        result = run_baseline(small_citations,
                              n_train=len(candidates) // 5,
                              config=CONFIG, candidates=candidates)
        max_recall = 1.0 - len(lost) / len(small_citations.matches)
        assert result.recall <= max_recall + 1e-9

    def test_deterministic(self, small_citations):
        candidates = build_baseline_candidates(small_citations)
        r1 = run_baseline(small_citations, 100, CONFIG,
                          candidates=candidates, seed=7)
        r2 = run_baseline(small_citations, 100, CONFIG,
                          candidates=candidates, seed=7)
        assert r1.confusion == r2.confusion
