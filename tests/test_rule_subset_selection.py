"""The Blocker's greedy rule-subset selection (§4.3), in isolation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import BlockerConfig, CorleoneConfig
from repro.core.blocker import Blocker
from repro.crowd.service import LabelingService
from repro.crowd.simulated import PerfectCrowd
from repro.data.pairs import CandidateSet, Pair
from repro.rules.predicates import Predicate
from repro.rules.rule import Rule


def neg_rule(index: int, threshold: float, cost: float = 1.0) -> Rule:
    return Rule([Predicate(index, f"f{index}", True, threshold)],
                predicts_match=False, cost=cost)


def make_blocker(t_b: int) -> Blocker:
    config = CorleoneConfig(blocker=BlockerConfig(t_b=t_b))
    crowd = PerfectCrowd(set(), rng=np.random.default_rng(0))
    service = LabelingService(crowd, config.crowd)
    return Blocker(config, service, np.random.default_rng(1))


@pytest.fixture
def sample():
    """100 rows; f0 and f1 uniform in [0, 1)."""
    rng = np.random.default_rng(5)
    features = rng.random((100, 2))
    pairs = [Pair(f"a{i}", f"b{i}") for i in range(100)]
    return CandidateSet(pairs, features, ["f0", "f1"])


class TestGreedySelection:
    def test_stops_at_target(self, sample):
        # Target: reduce the 100-row sample to 100 * t_b / cartesian.
        blocker = make_blocker(t_b=1000)
        cartesian = 2000  # -> target 50 rows
        rules = [neg_rule(0, 0.3), neg_rule(0, 0.6), neg_rule(0, 0.9)]
        chosen = blocker.select_rule_subset(rules, sample, cartesian)
        survivors = np.ones(len(sample), dtype=bool)
        for rule in chosen:
            survivors &= ~rule.applies(sample.features)
        assert survivors.sum() <= 50
        # And it did not apply more rules than needed: dropping the last
        # chosen rule leaves the sample above target.
        if len(chosen) > 1:
            survivors_without_last = np.ones(len(sample), dtype=bool)
            for rule in chosen[:-1]:
                survivors_without_last &= ~rule.applies(sample.features)
            assert survivors_without_last.sum() > 50

    def test_empty_rule_list(self, sample):
        blocker = make_blocker(t_b=10)
        assert blocker.select_rule_subset([], sample, 10**6) == []

    def test_target_already_met_selects_nothing(self, sample):
        # cartesian small enough that |sample| is already under target.
        blocker = make_blocker(t_b=10**6)
        rules = [neg_rule(0, 0.5)]
        assert blocker.select_rule_subset(rules, sample, 10**6) == []

    def test_prefers_precise_rules(self, sample):
        """A rule covering crowd-positive rows ranks below a clean one."""
        blocker = make_blocker(t_b=1)
        # Mark rows with f1 > 0.9 as crowd-certified positives.
        positives = [
            sample.pairs[i]
            for i in np.flatnonzero(sample.features[:, 1] > 0.9)
        ]
        blocker.service.seed(dict.fromkeys(positives, True))
        dirty = neg_rule(1, 0.95)   # covers most rows incl. positives
        clean = neg_rule(1, 0.88)   # covers many rows, no positives
        chosen = blocker.select_rule_subset([dirty, clean], sample, 10**9)
        assert chosen[0] == clean

    def test_cost_breaks_ties(self, sample):
        blocker = make_blocker(t_b=1)
        cheap = neg_rule(0, 0.5, cost=1.0)
        pricey = Rule(
            [Predicate(1, "f1", True, 0.5)], predicts_match=False,
            cost=50.0,
        )
        # Both cover ~50 disjoint-ish rows with no known positives; the
        # greedy ranker must take the cheaper one first when precision
        # and coverage tie.  Force exact ties by using identical columns.
        features = np.column_stack([
            sample.features[:, 0], sample.features[:, 0],
        ])
        tied = CandidateSet(sample.pairs, features, ["f0", "f1"])
        chosen = blocker.select_rule_subset([pricey, cheap], tied, 10**9)
        assert chosen[0] == cheap

    def test_zero_coverage_rules_ignored(self, sample):
        blocker = make_blocker(t_b=1)
        useless = neg_rule(0, -5.0)
        useful = neg_rule(0, 0.7)
        chosen = blocker.select_rule_subset([useless, useful], sample,
                                            10**9)
        assert useless not in chosen
        assert useful in chosen
